//! Transient analysis.
//!
//! Two stepping modes share the same companion models (trapezoidal or
//! backward-Euler) and warm-started Newton solves:
//!
//! * **Fixed** (default): the nominal timestep everywhere, with automatic
//!   step halving on Newton failure up to a retry budget.
//! * **Adaptive** ([`TranConfig::adaptive`]): local-truncation-error
//!   control. Each accepted solution is compared against a polynomial
//!   predictor extrapolated from the previous accepted points; steps
//!   whose deviation exceeds the error band are rejected and halved,
//!   and quiet stretches grow the step back up to a cap. Source corners
//!   (PWL knots, pulse edges) are breakpoints: the controller lands a
//!   step exactly on each one and restarts small, so edges are never
//!   straddled. See DESIGN.md §8.
//!
//! Both modes **stream**: accepted samples flow through a
//! [`super::sink::WaveSink`] in fixed-size columnar chunks
//! ([`run_streaming`]), so memory stays O(chunk) for million-point runs.
//! The classic dense API ([`run`] → [`TranResult`]) survives unchanged
//! as a [`super::sink::DenseSink`] over the full state. See DESIGN.md
//! §12 for the sink architecture and memory model.
//!
//! The initial condition is the operating point with sources evaluated
//! at `t = 0`.

use super::op::solve_system;
use super::sink::{ChunkEmitter, DenseSink, TranProbes, TranStats, WaveSink};
use super::{NewtonOptions, NewtonWorkspace, System};
use crate::circuit::{Circuit, NodeId};
use crate::element::{Integration, StampMode};
use crate::SpiceError;
use cml_telemetry::{EventKind, Phase, Telemetry};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Configuration for a transient run.
#[derive(Debug, Clone)]
pub struct TranConfig {
    /// Stop time, seconds.
    pub t_stop: f64,
    /// Nominal timestep, seconds.
    pub dt: f64,
    /// Integration method for companion models.
    pub method: Integration,
    /// Newton options per step.
    pub newton: NewtonOptions,
    /// Maximum consecutive step halvings before giving up.
    pub max_halvings: u32,
    /// Local-truncation-error control: when `true`, each step's solution
    /// is compared against a polynomial predictor (quadratic through the
    /// three previous accepted points once available, linear before
    /// that). Steps whose normalized deviation exceeds `lte_factor`
    /// tolerance bands are rejected and retried at half the step, down
    /// to `dt / 4096`; comfortably accurate steps grow back by doubling,
    /// up to `max(dt, t_stop / 50)`. Source-waveform corners become
    /// breakpoints the controller lands on exactly, restarting with a
    /// small step (`dt / 64`) and a cleared predictor history on the far
    /// side. `dt` remains the first-step size and the scale all limits
    /// derive from.
    pub adaptive: bool,
    /// Rejection threshold for adaptive mode, in units of the Newton
    /// tolerance band (`reltol·|x| + vntol`).
    pub lte_factor: f64,
    /// Reuse cached linear-element stamps and (on linear circuits) the
    /// LU factorization across timesteps sharing a step size; see
    /// [`crate::element::Element::is_nonlinear`] and DESIGN.md. Disable
    /// to force the historical assemble-and-factor-every-iteration path
    /// (bit-identical to it on linear circuits either way).
    pub reuse_factorization: bool,
    /// Samples per streamed waveform chunk. Defaults to the
    /// `CML_TRAN_CHUNK` environment variable (clamped to 16..=2²⁰) or
    /// 1024. Accumulators downstream are chunk-invariant, so this only
    /// trades sink-call overhead against staging-buffer size; it never
    /// changes results.
    pub chunk_size: usize,
}

/// Resolves the process-wide default chunk size, honouring the
/// `CML_TRAN_CHUNK` environment variable (read once).
fn default_chunk_size() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("CML_TRAN_CHUNK")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map_or(1024, |n| n.clamp(16, 1 << 20))
    })
}

impl TranConfig {
    /// Creates a config with default Newton options and trapezoidal
    /// integration.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt` is not strictly positive, or `dt > t_stop`.
    #[must_use]
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(t_stop > 0.0 && dt > 0.0, "times must be positive");
        assert!(dt <= t_stop, "dt must not exceed t_stop");
        TranConfig {
            t_stop,
            dt,
            method: Integration::Trapezoidal,
            newton: NewtonOptions::default(),
            max_halvings: 10,
            adaptive: false,
            lte_factor: 10.0,
            reuse_factorization: true,
            chunk_size: default_chunk_size(),
        }
    }

    /// Enables predictor-corrector local-truncation-error control.
    #[must_use]
    pub fn adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Disables cross-timestep stamp/factorization caching (reference
    /// path for equivalence testing and benchmarking).
    #[must_use]
    pub fn without_factor_reuse(mut self) -> Self {
        self.reuse_factorization = false;
        self
    }

    /// Switches to backward-Euler integration.
    #[must_use]
    pub fn backward_euler(mut self) -> Self {
        self.method = Integration::BackwardEuler;
        self
    }

    /// Overrides the streamed-chunk size (clamped to at least 1).
    #[must_use]
    pub fn with_chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = n.max(1);
        self
    }
}

/// Hard cap on up-front step preallocation. A config with a tiny `dt`
/// and a long `t_stop` (think `dt = 1 fs`, `t_stop = 1 s`: 10¹⁵ steps)
/// must not translate into a 10¹⁵-element `Vec::with_capacity` — the
/// estimate is a *hint*, so past this cap the buffers just grow
/// organically.
pub(crate) const MAX_STEP_PREALLOC: usize = 1 << 20;

/// Expected accepted-point count for preallocation, clamped to
/// [`MAX_STEP_PREALLOC`] and hardened against the non-finite or
/// overflowing ratios that `(t_stop / dt).ceil() as usize` produced for
/// extreme configs.
pub(crate) fn clamped_step_estimate(t_stop: f64, dt: f64) -> usize {
    // Truncate rather than ceil: fp noise on an exact ratio (1e-9/1e-12
    // = 1000.0000000000002) must not inflate the hint, and a 1-off
    // undershoot only costs one amortized regrow.
    let ratio = t_stop / dt;
    if !ratio.is_finite() || ratio < 0.0 || ratio >= MAX_STEP_PREALLOC as f64 {
        return MAX_STEP_PREALLOC;
    }
    (ratio as usize).saturating_add(1).min(MAX_STEP_PREALLOC)
}

/// Result of a dense transient run: the full solution vector at every
/// accepted timestep, stored columnar (one contiguous waveform per MNA
/// unknown).
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    cols: Vec<Vec<f64>>,
    branch_names: HashMap<String, usize>,
}

impl TranResult {
    /// Accepted time points (seconds), starting at 0.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of accepted points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the run produced no points (cannot happen for a successful
    /// run, which always records `t = 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage waveform of `node` across the run.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Vec<f64> {
        match node.index() {
            Some(i) => self.cols[i].clone(),
            None => vec![0.0; self.times.len()],
        }
    }

    /// Differential waveform `v(p) − v(n)`.
    #[must_use]
    pub fn differential(&self, p: NodeId, n: NodeId) -> Vec<f64> {
        let vp = self.voltage(p);
        let vn = self.voltage(n);
        vp.iter().zip(&vn).map(|(a, b)| a - b).collect()
    }

    /// Branch-current waveform of a named voltage-defined element.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NotFound`] if no such branch exists.
    pub fn current(&self, element: &str) -> Result<Vec<f64>, SpiceError> {
        let idx = *self
            .branch_names
            .get(element)
            .ok_or_else(|| SpiceError::NotFound {
                what: "branch element",
                name: element.to_string(),
            })?;
        Ok(self.cols[idx].clone())
    }
}

/// Runs transient analysis, buffering the full dense result.
///
/// # Errors
///
/// Propagates initial-OP failures; [`SpiceError::NoConvergence`] if a step
/// cannot be completed even at `dt / 2^max_halvings`.
pub fn run(ckt: &Circuit, config: &TranConfig) -> Result<TranResult, SpiceError> {
    run_traced(ckt, config, &Telemetry::disabled())
}

/// [`run`] recording solver telemetry into `tel`: a span tree for the
/// run's phases (initial operating point, stepping loop) plus the step,
/// LTE, chunk and factorization-reuse counters.
///
/// # Errors
///
/// See [`run`].
pub fn run_traced(
    ckt: &Circuit,
    config: &TranConfig,
    tel: &Telemetry,
) -> Result<TranResult, SpiceError> {
    let mut sink = DenseSink::new();
    let (_, branch_names) =
        run_streaming_inner(ckt, config, &TranProbes::full_state(), &mut sink, tel)?;
    let (times, cols) = sink.into_parts();
    Ok(TranResult {
        times,
        cols,
        branch_names,
    })
}

/// Runs transient analysis streaming the selected probes into `sink`
/// in fixed-size columnar chunks, holding only O(chunk) waveform data.
///
/// # Errors
///
/// See [`run`]; additionally [`SpiceError::NotFound`] for a current
/// probe naming no branch, and any error the sink returns.
pub fn run_streaming(
    ckt: &Circuit,
    config: &TranConfig,
    probes: &TranProbes,
    sink: &mut dyn WaveSink,
) -> Result<TranStats, SpiceError> {
    run_streaming_traced(ckt, config, probes, sink, &Telemetry::disabled())
}

/// [`run_streaming`] recording solver telemetry into `tel`.
///
/// # Errors
///
/// See [`run_streaming`].
pub fn run_streaming_traced(
    ckt: &Circuit,
    config: &TranConfig,
    probes: &TranProbes,
    sink: &mut dyn WaveSink,
    tel: &Telemetry,
) -> Result<TranStats, SpiceError> {
    run_streaming_inner(ckt, config, probes, sink, tel).map(|(stats, _)| stats)
}

/// Shared driver behind the dense and streaming entry points; returns
/// the branch-name map alongside the stats so [`run_traced`] can build a
/// [`TranResult`] without assembling the system twice. Any failure
/// dumps a `"tran"` forensic flight bundle (see [`crate::flight`]).
fn run_streaming_inner(
    ckt: &Circuit,
    config: &TranConfig,
    probes: &TranProbes,
    sink: &mut dyn WaveSink,
    tel: &Telemetry,
) -> Result<(TranStats, HashMap<String, usize>), SpiceError> {
    let res = run_streaming_impl(ckt, config, probes, sink, tel);
    if let Err(e) = &res {
        crate::flight::record_failure(ckt, &config.newton, "tran", e, tel);
    }
    res
}

fn run_streaming_impl(
    ckt: &Circuit,
    config: &TranConfig,
    probes: &TranProbes,
    sink: &mut dyn WaveSink,
    tel: &Telemetry,
) -> Result<(TranStats, HashMap<String, usize>), SpiceError> {
    let _span = tel.span("analysis", "tran");
    if !(config.t_stop > 0.0 && config.dt > 0.0) {
        return Err(SpiceError::InvalidConfig {
            message: "t_stop and dt must be positive".into(),
        });
    }
    {
        let _t = tel.timer(Phase::LintPrecheck);
        super::cache::lint_precheck_cached(ckt, config.newton.cache_enabled(), tel)?;
    }
    tel.count(|c| c.lint_prechecks += 1);
    let sys = System::new(ckt);

    // Initial condition: DC solve with waveforms evaluated at t = 0.
    let x0 = {
        let _span = tel.span("phase", "tran_init");
        solve_system(&sys, &config.newton, Some(0.0), tel)?
    };
    let state = sys.init_state(&x0);

    let mut emit = ChunkEmitter::new(
        &sys,
        probes,
        config.chunk_size,
        config.t_stop,
        config.dt,
        sink,
    )?;

    let _stepping = tel.span("phase", "tran_stepping");
    if config.adaptive {
        adaptive_loop(ckt, &sys, config, x0, state, &mut emit, tel)?;
    } else {
        fixed_loop(&sys, config, x0, state, &mut emit, tel)?;
    }
    let stats = emit.finish(tel)?;
    Ok((stats, sys.branch_names().clone()))
}

/// Fixed-step transient loop: the nominal `dt` everywhere, halving only
/// on Newton failure.
fn fixed_loop(
    sys: &System<'_>,
    config: &TranConfig,
    x0: Vec<f64>,
    mut state: Vec<f64>,
    emit: &mut ChunkEmitter<'_>,
    tel: &Telemetry,
) -> Result<(), SpiceError> {
    let mut state_next = vec![0.0; sys.state_len()];
    emit.push(0.0, &x0, tel)?;

    let mut t = 0.0;
    let mut x = x0;
    // One workspace for the whole run: matrices, LU factors and cached
    // linear stamps survive from step to step.
    let mut ws = NewtonWorkspace::new();
    while t < config.t_stop - 1e-18 {
        let mut dt = config.dt.min(config.t_stop - t);
        let mut halvings = 0;
        loop {
            let mode = StampMode::Tran {
                time: t + dt,
                dt,
                method: config.method,
            };
            match sys.newton_with(
                mode,
                &x,
                &state,
                &config.newton,
                "tran",
                &mut ws,
                config.reuse_factorization,
                tel,
            ) {
                Ok(x_new) => {
                    sys.update_state(&x_new, &state, mode, &mut state_next);
                    std::mem::swap(&mut state, &mut state_next);
                    x = x_new;
                    t += dt;
                    emit.push(t, &x, tel)?;
                    tel.count(|c| {
                        c.tran_steps += 1;
                        c.record_dt(dt, config.dt);
                    });
                    break;
                }
                Err(e) => {
                    halvings += 1;
                    if halvings > config.max_halvings {
                        return Err(e);
                    }
                    tel.count(|c| c.newton_retries += 1);
                    tel.event(|| EventKind::NewtonRetry { t, dt });
                    dt /= 2.0;
                }
            }
        }
    }
    Ok(())
}

/// Smallest step the LTE controller will shrink to, as a divisor of the
/// nominal `dt`.
const MAX_SHRINK: f64 = 4096.0;

/// Step divisor used to restart integration just after a breakpoint.
const BP_RESTART_DIV: f64 = 64.0;

/// Collects, sorts and deduplicates source-waveform breakpoints in
/// `(0, t_stop)`. Coincident or *near*-coincident corners (two PWL
/// sources sharing an edge, rendered complements, clock trees) merge
/// into one breakpoint: each survivor costs the controller a `dt/64`
/// restart with a cleared predictor history, so duplicates within
/// [`breakpoint_merge_eps`] would silently multiply step counts.
pub(crate) fn merged_breakpoints(ckt: &Circuit, t_stop: f64) -> Vec<f64> {
    let mut bps: Vec<f64> = Vec::new();
    for e in ckt.elements() {
        e.breakpoints(t_stop, &mut bps);
    }
    bps.sort_by(f64::total_cmp);
    bps.dedup_by(|a, b| (*a - *b).abs() <= breakpoint_merge_eps(*a, *b));
    bps.retain(|&b| b > 0.0 && b < t_stop);
    bps
}

/// Two breakpoints within 1 ppb of the larger time (sub-femtosecond at
/// nanosecond scale) count as the same source corner; the tiny absolute
/// floor lets duplicates of `t = 0` merge too.
fn breakpoint_merge_eps(a: f64, b: f64) -> f64 {
    1e-9 * a.abs().max(b.abs()) + 1e-21
}

/// Ring of the up-to-three most recent accepted points feeding the LTE
/// predictor. Replaces indexing into the dense solution history (which
/// the streaming engine no longer keeps): O(3·dim) memory regardless of
/// run length.
struct History {
    t: Vec<f64>,
    x: Vec<Vec<f64>>,
}

impl History {
    fn new(t0: f64, x0: &[f64]) -> Self {
        History {
            t: vec![t0],
            x: vec![x0.to_vec()],
        }
    }

    /// Valid trailing points (1..=3).
    fn len(&self) -> usize {
        self.t.len()
    }

    /// Records an accepted point, evicting the oldest beyond three.
    fn push(&mut self, t: f64, x: &[f64]) {
        if self.t.len() == 3 {
            self.t.rotate_left(1);
            self.x.rotate_left(1);
            self.t[2] = t;
            let slot = &mut self.x[2];
            slot.clear();
            slot.extend_from_slice(x);
        } else {
            self.t.push(t);
            self.x.push(x.to_vec());
        }
    }

    /// Keeps only the newest point: called at breakpoints, where older
    /// points sit on the wrong side of a slope discontinuity.
    fn restart(&mut self) {
        let n = self.t.len();
        if n > 1 {
            self.t[0] = self.t[n - 1];
            self.t.truncate(1);
            self.x.swap(0, n - 1);
            self.x.truncate(1);
        }
    }
}

/// LTE-controlled adaptive transient loop.
///
/// The controller keeps a working step `dt` that it halves on rejection
/// (solution too far from the polynomial predictor) and doubles on
/// comfortably accurate steps. Source-waveform corners are collected up
/// front as breakpoints; a step that would cross one is truncated to
/// land exactly on it, and the predictor history is cleared on the far
/// side since the derivative is discontinuous there.
fn adaptive_loop(
    ckt: &Circuit,
    sys: &System<'_>,
    config: &TranConfig,
    x0: Vec<f64>,
    mut state: Vec<f64>,
    emit: &mut ChunkEmitter<'_>,
    tel: &Telemetry,
) -> Result<(), SpiceError> {
    let t_stop = config.t_stop;
    let breakpoints = merged_breakpoints(ckt, t_stop);
    let mut bp_idx = 0usize;

    let dt_min = config.dt / MAX_SHRINK;
    let dt_max = config.dt.max(t_stop / 50.0);
    let dt_bp_restart = (config.dt / BP_RESTART_DIV).max(dt_min);

    let mut state_next = vec![0.0; sys.state_len()];
    emit.push(0.0, &x0, tel)?;
    let mut t = 0.0;
    let mut hist = History::new(0.0, &x0);
    let mut x = x0;
    let mut ws = NewtonWorkspace::new();
    let mut dt = config.dt;

    while t < t_stop - 1e-18 {
        while bp_idx < breakpoints.len() && breakpoints[bp_idx] <= t + 1e-18 {
            bp_idx += 1;
        }
        let mut dt_step = dt.min(t_stop - t);
        let mut lands_on_bp = false;
        if let Some(&bp) = breakpoints.get(bp_idx) {
            if t + dt_step >= bp - 1e-18 {
                dt_step = bp - t;
                lands_on_bp = true;
            }
        }
        let mut halvings = 0;
        let mut rejected = false;
        loop {
            let mode = StampMode::Tran {
                time: t + dt_step,
                dt: dt_step,
                method: config.method,
            };
            match sys.newton_with(
                mode,
                &x,
                &state,
                &config.newton,
                "tran",
                &mut ws,
                config.reuse_factorization,
                tel,
            ) {
                Ok(x_new) => {
                    let mut worst = 0.0f64;
                    if hist.len() >= 2 {
                        worst =
                            predictor_deviation(sys, &hist, t + dt_step, &x_new, &config.newton);
                        if worst > config.lte_factor
                            && dt_step > dt_min * (1.0 + 1e-9)
                            && halvings < config.max_halvings
                        {
                            halvings += 1;
                            rejected = true;
                            lands_on_bp = false;
                            tel.count(|c| c.lte_rejects += 1);
                            tel.event(|| EventKind::LteReject { t, dt: dt_step });
                            dt_step = (dt_step / 2.0).max(dt_min);
                            continue;
                        }
                    }
                    sys.update_state(&x_new, &state, mode, &mut state_next);
                    std::mem::swap(&mut state, &mut state_next);
                    x = x_new;
                    t += dt_step;
                    emit.push(t, &x, tel)?;
                    hist.push(t, &x);
                    tel.count(|c| {
                        c.tran_steps += 1;
                        c.lte_accepts += 1;
                        c.record_dt(dt_step, config.dt);
                        if lands_on_bp {
                            c.breakpoint_restarts += 1;
                        }
                    });
                    if lands_on_bp {
                        hist.restart();
                        dt = dt_bp_restart;
                    } else if rejected {
                        // Continue at the scale the rejection found;
                        // quiet steps will grow it back.
                        dt = dt_step;
                    } else if worst < config.lte_factor / 4.0 {
                        dt = (dt * 2.0).min(dt_max);
                    }
                    break;
                }
                Err(e) => {
                    halvings += 1;
                    if halvings > config.max_halvings {
                        return Err(e);
                    }
                    tel.count(|c| c.newton_retries += 1);
                    tel.event(|| EventKind::NewtonRetry { t, dt: dt_step });
                    rejected = true;
                    lands_on_bp = false;
                    dt_step /= 2.0;
                }
            }
        }
    }
    Ok(())
}

/// Worst normalized deviation of `x_new` from the polynomial predictor
/// extrapolated to `t_new`: quadratic through the last three accepted
/// points when the history allows, linear through the last two otherwise.
/// Only node voltages participate (branch currents scale too wildly for
/// the voltage band). The unit is Newton tolerance bands, so `1.0` means
/// "off by exactly `reltol·|v| + vntol`".
fn predictor_deviation(
    sys: &System<'_>,
    hist: &History,
    t_new: f64,
    x_new: &[f64],
    newton: &NewtonOptions,
) -> f64 {
    let n = hist.len();
    let (t2, x2) = (hist.t[n - 1], &hist.x[n - 1]);
    let (t1, x1) = (hist.t[n - 2], &hist.x[n - 2]);
    let mut worst = 0.0f64;
    if n >= 3 {
        let (t0, x0) = (hist.t[n - 3], &hist.x[n - 3]);
        // Lagrange extrapolation of the quadratic through the three
        // trailing points.
        let l0 = ((t_new - t1) * (t_new - t2)) / ((t0 - t1) * (t0 - t2));
        let l1 = ((t_new - t0) * (t_new - t2)) / ((t1 - t0) * (t1 - t2));
        let l2 = ((t_new - t0) * (t_new - t1)) / ((t2 - t0) * (t2 - t1));
        for i in 0..sys.n_nodes() {
            let pred = l0 * x0[i] + l1 * x1[i] + l2 * x2[i];
            let band = newton.reltol * x_new[i].abs() + newton.vntol;
            worst = worst.max((x_new[i] - pred).abs() / band);
        }
    } else {
        let ratio = (t_new - t2) / (t2 - t1);
        for i in 0..sys.n_nodes() {
            let pred = x2[i] + (x2[i] - x1[i]) * ratio;
            let band = newton.reltol * x_new[i].abs() + newton.vntol;
            worst = worst.max((x_new[i] - pred).abs() / band);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn rc_charging_curve() {
        // Step into RC: v(t) = 1 − e^{−t/RC}, RC = 1 ns.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.0, 1e-12),
        ));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12));
        let res = run(&ckt, &TranConfig::new(5e-9, 5e-12)).unwrap();
        let v = res.voltage(out);
        let times = res.times();
        // Compare against the analytic curve away from the ramp.
        for (i, &t) in times.iter().enumerate() {
            if t > 0.1e-9 {
                let want = 1.0 - (-(t - 1e-12) / 1e-9).exp();
                assert!(
                    (v[i] - want).abs() < 5e-3,
                    "t={t:.3e}: got {} want {want}",
                    v[i]
                );
            }
        }
        // Fully settled at the end.
        assert!((v.last().unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn lc_oscillation_period() {
        // Charged C discharging into L: period 2π√(LC).
        let (l, c): (f64, f64) = (1e-9, 1e-12);
        let period = 2.0 * std::f64::consts::PI * (l * c).sqrt();
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        // Excite with a short current pulse, then let it ring.
        ckt.add(Isource::new(
            "I1",
            Circuit::GROUND,
            n1,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1e-3,
                delay: 0.0,
                rise: 1e-12,
                fall: 1e-12,
                width: 20e-12,
                period: 1.0,
            },
        ));
        ckt.add(Capacitor::new("C1", n1, Circuit::GROUND, c));
        ckt.add(Inductor::new("L1", n1, Circuit::GROUND, l));
        // Light damping so the oscillation persists.
        ckt.add(Resistor::new("R1", n1, Circuit::GROUND, 1e6));
        let res = run(&ckt, &TranConfig::new(4.0 * period, period / 400.0)).unwrap();
        let v = res.voltage(n1);
        let times = res.times();
        // Measure period between the last two rising zero crossings.
        let crossings = cml_numeric::interp::level_crossings(times, &v, 0.0).unwrap();
        assert!(crossings.len() >= 4, "expected several crossings");
        let last = crossings[crossings.len() - 1] - crossings[crossings.len() - 3];
        assert!(
            (last - period).abs() / period < 0.01,
            "period {last:.3e} vs expected {period:.3e}"
        );
    }

    #[test]
    fn backward_euler_decays_faster_than_trap() {
        // BE's numerical damping shows up on an LC tank: amplitude decays.
        let (l, c): (f64, f64) = (1e-9, 1e-12);
        let build = || {
            let mut ckt = Circuit::new();
            let n1 = ckt.node("n1");
            ckt.add(Isource::new(
                "I1",
                Circuit::GROUND,
                n1,
                Waveform::Pulse {
                    v1: 0.0,
                    v2: 1e-3,
                    delay: 0.0,
                    rise: 1e-12,
                    fall: 1e-12,
                    width: 20e-12,
                    period: 1.0,
                },
            ));
            ckt.add(Capacitor::new("C1", n1, Circuit::GROUND, c));
            ckt.add(Inductor::new("L1", n1, Circuit::GROUND, l));
            ckt.add(Resistor::new("R1", n1, Circuit::GROUND, 1e6));
            ckt
        };
        let period = 2.0 * std::f64::consts::PI * (l * c).sqrt();
        let cfg_trap = TranConfig::new(10.0 * period, period / 100.0);
        let cfg_be = cfg_trap.clone().backward_euler();
        let ckt = build();
        let amp = |res: &TranResult| {
            let v = res.voltage(res_node(res));
            v.iter()
                .skip(v.len() / 2)
                .fold(0.0f64, |m, &x| m.max(x.abs()))
        };
        fn res_node(_res: &TranResult) -> NodeId {
            NodeId::from_raw(1)
        }
        let a_trap = amp(&run(&ckt, &cfg_trap).unwrap());
        let a_be = amp(&run(&build(), &cfg_be).unwrap());
        assert!(
            a_be < a_trap * 0.8,
            "BE ({a_be}) should damp more than trapezoidal ({a_trap})"
        );
    }

    #[test]
    fn sine_source_passes_through_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Vsource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e9,
                delay: 0.0,
            },
        ));
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 50.0));
        let res = run(&ckt, &TranConfig::new(2e-9, 1e-11)).unwrap();
        let v = res.voltage(a);
        let peak = v.iter().cloned().fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 1e-2, "peak = {peak}");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 50.0));
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        let bad = TranConfig {
            t_stop: -1.0,
            ..TranConfig::new(1.0, 1e-12)
        };
        assert!(matches!(
            run(&ckt, &bad),
            Err(SpiceError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn result_accessors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 100.0));
        let res = run(&ckt, &TranConfig::new(1e-10, 1e-11)).unwrap();
        assert!(!res.is_empty());
        assert_eq!(res.times()[0], 0.0);
        let i = res.current("V1").unwrap();
        assert!((i[0] + 0.01).abs() < 1e-9);
        assert!(res.current("R1").is_err());
        let d = res.differential(a, Circuit::GROUND);
        assert!((d[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn step_estimate_is_clamped() {
        // Sane configs keep the exact estimate.
        assert_eq!(clamped_step_estimate(1e-9, 1e-12), 1001);
        assert_eq!(clamped_step_estimate(1.0, 1.0), 2);
        // Regression: dt = 1 fs over t_stop = 1 s used to request a
        // 10¹⁵-element preallocation.
        assert_eq!(clamped_step_estimate(1.0, 1e-15), MAX_STEP_PREALLOC);
        // Hardened against non-finite ratios from degenerate configs.
        assert_eq!(
            clamped_step_estimate(f64::INFINITY, 1e-12),
            MAX_STEP_PREALLOC
        );
        assert_eq!(clamped_step_estimate(1.0, 0.0), MAX_STEP_PREALLOC);
        assert_eq!(clamped_step_estimate(f64::NAN, 1.0), MAX_STEP_PREALLOC);
    }

    #[test]
    fn huge_step_count_config_does_not_overallocate() {
        // A config implying ~10¹² steps must start (and be droppable)
        // without a matching preallocation. Run is aborted immediately
        // by a sink error so only setup cost is paid.
        struct Abort;
        impl crate::analysis::sink::WaveSink for Abort {
            fn chunk(
                &mut self,
                _chunk: &crate::analysis::sink::WaveChunk<'_>,
            ) -> Result<(), SpiceError> {
                Err(SpiceError::Internal {
                    message: "abort for test".into(),
                })
            }
        }
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 100.0));
        let cfg = TranConfig::new(1.0, 1e-12).with_chunk_size(1);
        let probes = TranProbes::new().voltage("a", a);
        let err = super::run_streaming(&ckt, &cfg, &probes, &mut Abort).unwrap_err();
        assert!(matches!(err, SpiceError::Internal { .. }));
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::analysis::sink::DenseSink;
    use crate::prelude::*;

    fn rc_circuit() -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 1e-9, 1e-11),
        ));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12));
        (ckt, out)
    }

    #[test]
    fn streaming_matches_dense_bit_for_bit() {
        let (ckt, out) = rc_circuit();
        for cfg in [
            TranConfig::new(5e-9, 5e-12),
            TranConfig::new(5e-9, 0.2e-9).adaptive(),
        ] {
            let dense = run(&ckt, &cfg).unwrap();
            for chunk in [1, 7, 1024] {
                let mut sink = DenseSink::new();
                let probes = TranProbes::new().voltage("out", out).current("i(V1)", "V1");
                let stats = run_streaming(
                    &ckt,
                    &cfg.clone().with_chunk_size(chunk),
                    &probes,
                    &mut sink,
                )
                .unwrap();
                assert_eq!(stats.samples as usize, dense.len());
                assert_eq!(sink.times(), dense.times());
                let dv = dense.voltage(out);
                let di = dense.current("V1").unwrap();
                for i in 0..dense.len() {
                    assert_eq!(sink.cols()[0][i].to_bits(), dv[i].to_bits());
                    assert_eq!(sink.cols()[1][i].to_bits(), di[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn unknown_current_probe_is_rejected() {
        let (ckt, out) = rc_circuit();
        let cfg = TranConfig::new(1e-9, 1e-11);
        let probes = TranProbes::new().voltage("out", out).current("i", "NOPE");
        let mut sink = DenseSink::new();
        assert!(matches!(
            run_streaming(&ckt, &cfg, &probes, &mut sink),
            Err(SpiceError::NotFound { .. })
        ));
    }

    #[test]
    fn ground_and_differential_probes() {
        let (ckt, out) = rc_circuit();
        let cfg = TranConfig::new(1e-9, 1e-11);
        let probes = TranProbes::new()
            .voltage("gnd", Circuit::GROUND)
            .differential("d", out, Circuit::GROUND);
        let mut sink = DenseSink::new();
        run_streaming(&ckt, &cfg, &probes, &mut sink).unwrap();
        assert!(sink.cols()[0].iter().all(|&v| v == 0.0));
        let dense = run(&ckt, &cfg).unwrap();
        let dv = dense.voltage(out);
        for (streamed, reference) in sink.cols()[1].iter().zip(&dv) {
            assert_eq!(streamed.to_bits(), reference.to_bits());
        }
        assert_eq!(sink.cols()[1].len(), dv.len());
    }

    #[test]
    fn coincident_breakpoints_merge() {
        // Two sources sharing an edge at t = 2 ns, the second offset by
        // 1e-19 s (inside the 1 ppb merge epsilon): the merged list must
        // contain ONE corner, and the adaptive run must take exactly as
        // many steps as with exactly-coincident edges.
        let build = |offset: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add(Vsource::new(
                "V1",
                a,
                Circuit::GROUND,
                Waveform::step(0.0, 1.0, 2e-9, 1e-11),
            ));
            ckt.add(Vsource::new(
                "V2",
                b,
                Circuit::GROUND,
                Waveform::step(0.0, -1.0, 2e-9 + offset, 1e-11),
            ));
            ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
            ckt.add(Resistor::new("R2", b, Circuit::GROUND, 1e3));
            ckt
        };
        let exact = merged_breakpoints(&build(0.0), 8e-9);
        let near = merged_breakpoints(&build(1e-19), 8e-9);
        assert_eq!(exact.len(), near.len(), "near-coincident edges must merge");
        assert_eq!(exact.len(), 2, "one rising corner + one ramp end");

        let cfg = TranConfig::new(8e-9, 0.5e-9).adaptive();
        let r_exact = run(&build(0.0), &cfg).unwrap();
        let r_near = run(&build(1e-19), &cfg).unwrap();
        assert_eq!(
            r_exact.len(),
            r_near.len(),
            "duplicate breakpoints must not multiply restarts"
        );
        // Distinct edges (outside epsilon) still produce extra corners.
        let distinct = merged_breakpoints(&build(0.2e-9), 8e-9);
        assert_eq!(distinct.len(), 4);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::prelude::*;

    /// RC step response with a deliberately coarse nominal dt: adaptive
    /// LTE control must refine the edge and beat the fixed-step error.
    #[test]
    fn adaptive_refines_sharp_edges() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(Vsource::new(
                "V1",
                vin,
                Circuit::GROUND,
                Waveform::step(0.0, 1.0, 2e-9, 1e-11),
            ));
            ckt.add(Resistor::new("R1", vin, out, 1e3));
            ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12)); // τ = 1 ns
            ckt
        };
        // Coarse step: dt = τ/2.
        let coarse = TranConfig::new(8e-9, 0.5e-9);
        let adaptive = TranConfig::new(8e-9, 0.5e-9).adaptive();
        let run_err = |cfg: &TranConfig| {
            let ckt = build();
            let res = run(&ckt, cfg).unwrap();
            let out = ckt.find_node("out").unwrap();
            let v = res.voltage(out);
            let mut worst = 0.0f64;
            for (i, &t) in res.times().iter().enumerate() {
                if t > 2.1e-9 {
                    let want = 1.0 - (-(t - 2.01e-9) / 1e-9).exp();
                    worst = worst.max((v[i] - want).abs());
                }
            }
            (worst, res.len())
        };
        let (err_fixed, n_fixed) = run_err(&coarse);
        let (err_adaptive, n_adaptive) = run_err(&adaptive);
        assert!(
            n_adaptive > n_fixed,
            "adaptive must refine: {n_adaptive} vs {n_fixed} points"
        );
        assert!(
            err_adaptive < err_fixed,
            "adaptive error {err_adaptive:.4} vs fixed {err_fixed:.4}"
        );
    }

    /// On a smooth circuit the adaptive run matches the fixed run
    /// (no spurious rejections).
    #[test]
    fn adaptive_is_benign_on_smooth_signals() {
        let build = || {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            ckt.add(Vsource::new(
                "V1",
                a,
                Circuit::GROUND,
                Waveform::Sine {
                    offset: 0.0,
                    ampl: 1.0,
                    freq: 1e8,
                    delay: 0.0,
                },
            ));
            ckt.add(Resistor::new("R1", a, Circuit::GROUND, 50.0));
            ckt
        };
        let fixed = run(&build(), &TranConfig::new(20e-9, 0.1e-9)).unwrap();
        let adapt = run(&build(), &TranConfig::new(20e-9, 0.1e-9).adaptive()).unwrap();
        // Smooth waveform: at most a handful of extra refinement points
        // (a few percent), not wholesale rejection.
        assert!(
            adapt.len() < fixed.len() + fixed.len() / 10,
            "adaptive {0} vs fixed {1}",
            adapt.len(),
            fixed.len()
        );
    }

    /// The controller lands a step exactly on every source corner.
    #[test]
    fn adaptive_lands_on_source_breakpoints() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 2e-9, 1e-11),
        ));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12));
        let res = run(&ckt, &TranConfig::new(8e-9, 0.5e-9).adaptive()).unwrap();
        for corner in [2e-9, 2e-9 + 1e-11] {
            assert!(
                res.times().iter().any(|&t| (t - corner).abs() < 1e-15),
                "no accepted point at corner {corner:.3e}"
            );
        }
    }

    /// On a quiet circuit the step grows past the nominal dt, so the
    /// adaptive run takes far fewer points than the fixed grid.
    #[test]
    fn adaptive_grows_steps_when_quiet() {
        let build = || {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
            ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
            ckt.add(Capacitor::new("C1", a, Circuit::GROUND, 1e-12));
            ckt
        };
        let fixed = run(&build(), &TranConfig::new(100e-9, 0.1e-9)).unwrap();
        let adapt = run(&build(), &TranConfig::new(100e-9, 0.1e-9).adaptive()).unwrap();
        assert!(
            adapt.len() * 5 < fixed.len(),
            "adaptive {} should be far below fixed {}",
            adapt.len(),
            fixed.len()
        );
        // Same endpoint either way.
        assert!((adapt.times().last().unwrap() - 100e-9).abs() < 1e-15);
    }
}
