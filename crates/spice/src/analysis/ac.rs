//! AC small-signal analysis.
//!
//! Linearizes every element around a previously computed operating point
//! and solves one complex MNA system per frequency. The excitation is the
//! set of sources constructed `.with_ac(magnitude)` — conventionally one
//! source with magnitude 1, so node voltages *are* transfer functions.

use super::{NewtonOptions, System};
use crate::circuit::{Circuit, NodeId};
use crate::SpiceError;
use cml_numeric::Complex64;

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// One complex solution vector per frequency.
    sols: Vec<Vec<Complex64>>,
}

impl AcResult {
    /// Swept frequencies in Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage of `node` at sweep index `idx`.
    #[must_use]
    pub fn voltage(&self, node: NodeId, idx: usize) -> Complex64 {
        match node.index() {
            Some(i) => self.sols[idx][i],
            None => Complex64::ZERO,
        }
    }

    /// Complex voltage trace of `node` across the sweep.
    #[must_use]
    pub fn voltage_trace(&self, node: NodeId) -> Vec<Complex64> {
        (0..self.freqs.len())
            .map(|i| self.voltage(node, i))
            .collect()
    }

    /// Differential voltage trace `v(p) − v(n)` across the sweep.
    #[must_use]
    pub fn differential_trace(&self, p: NodeId, n: NodeId) -> Vec<Complex64> {
        (0..self.freqs.len())
            .map(|i| self.voltage(p, i) - self.voltage(n, i))
            .collect()
    }

    /// Gain magnitude of `node` in dB across the sweep.
    #[must_use]
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.voltage_trace(node).iter().map(|z| z.db()).collect()
    }

    /// Phase of `node` in degrees across the sweep.
    #[must_use]
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        self.voltage_trace(node)
            .iter()
            .map(|z| z.arg().to_degrees())
            .collect()
    }
}

/// Runs an AC sweep over `freqs` (Hz) using the operating point `x_op`
/// (the raw solution vector from [`super::op::OpResult::solution`]).
///
/// # Errors
///
/// [`SpiceError::Singular`] if the small-signal system is singular at some
/// frequency.
pub fn sweep(ckt: &Circuit, x_op: &[f64], freqs: &[f64]) -> Result<AcResult, SpiceError> {
    crate::lint::precheck(ckt)?;
    let sys = System::new(ckt);
    let gmin = NewtonOptions::default().gmin;
    let mut sols = Vec::with_capacity(freqs.len());
    // One matrix for the whole sweep, restamped (not reallocated) per
    // frequency and consumed by the in-place complex elimination.
    let mut matrix = cml_numeric::ComplexMatrix::zeros(sys.dim(), sys.dim());
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut x = Vec::new();
        sys.solve_ac_into(x_op, omega, gmin, &mut matrix, &mut x)?;
        sols.push(x);
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        sols,
    })
}

/// Convenience: solve the operating point, then sweep.
///
/// # Errors
///
/// Propagates operating-point and AC solve failures.
pub fn sweep_auto(ckt: &Circuit, freqs: &[f64]) -> Result<AcResult, SpiceError> {
    let op = super::op::solve(ckt)?;
    sweep(ckt, op.solution(), freqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use cml_numeric::logspace;

    #[test]
    fn rc_lowpass_pole() {
        // R = 1 kΩ, C = 1 nF → f3dB = 159.15 kHz.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-9));
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let ac = sweep_auto(&ckt, &[f3db / 100.0, f3db, f3db * 100.0]).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0].abs() < 0.01, "passband should be 0 dB");
        assert!((mags[1] + 3.0103).abs() < 0.01, "-3 dB at the pole");
        assert!((mags[2] + 40.0).abs() < 0.2, "-40 dB two decades up");
        // Phase at the pole is −45°.
        let ph = ac.phase_deg(out);
        assert!((ph[1] + 45.0).abs() < 0.5);
    }

    #[test]
    fn rlc_series_resonance() {
        // Series RLC driven by 1 V: at resonance the current is limited
        // only by R, so the resistor voltage equals the source.
        let (r, l, c): (f64, f64, f64) = (10.0, 1e-9, 1e-12);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let n1 = ckt.node("n1");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Inductor::new("L1", vin, n1, l));
        ckt.add(Capacitor::new("C1", n1, out, c));
        ckt.add(Resistor::new("R1", out, Circuit::GROUND, r));
        let ac = sweep_auto(&ckt, &[f0]).unwrap();
        let v_r = ac.voltage(out, 0);
        assert!((v_r.abs() - 1.0).abs() < 1e-6, "|v_R| = {}", v_r.abs());
    }

    #[test]
    fn vccs_gain_stage() {
        // gm = 10 mS into 1 kΩ → gain −10 (20 dB).
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Vccs::new(
            "G1",
            out,
            Circuit::GROUND,
            vin,
            Circuit::GROUND,
            10e-3,
        ));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3));
        let ac = sweep_auto(&ckt, &[1e6]).unwrap();
        let g = ac.voltage(out, 0);
        assert!((g.re + 10.0).abs() < 1e-6);
        assert!((g.db() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn mosfet_common_source_gain() {
        // Gain ≈ −gm·(RD ∥ ro); check AC against hand small-signal math.
        let params = MosParams {
            mos_type: MosType::Nmos,
            w: 10e-6,
            l: 0.18e-6,
            vth0: 0.45,
            kp: 170e-6,
            lambda: 0.1,
            cox: 8.4e-3,
            cov: 3.0e-10,
            cj: 1.0e-3,
            ldiff: 0.5e-6,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
        ckt.add(Vsource::dc("VG", g, Circuit::GROUND, 0.8).with_ac(1.0));
        ckt.add(Resistor::new("RD", vdd, d, 1e3));
        let m = Mosfet::new("M1", d, g, Circuit::GROUND, Circuit::GROUND, params);
        let m_probe = m.clone();
        ckt.add(m);
        let op = op::solve(&ckt).unwrap();
        let ss = m_probe.small_signal(op.solution());
        let expected = ss.gm / (1e-3 + ss.gds); // gm · (RD ∥ ro)
        let ac = sweep(&ckt, op.solution(), &[1e5]).unwrap();
        let gain = ac.voltage(d, 0);
        assert!(
            (gain.re + expected).abs() / expected < 1e-6,
            "gain {} vs expected {}",
            gain.re,
            -expected
        );
        assert!(
            gain.im.abs() < expected * 1e-3,
            "low-frequency phase ≈ 180°"
        );
    }

    #[test]
    fn gain_rolls_off_with_load_capacitance() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Vccs::new(
            "G1",
            out,
            Circuit::GROUND,
            vin,
            Circuit::GROUND,
            1e-3,
        ));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3));
        ckt.add(Capacitor::new("CL", out, Circuit::GROUND, 100e-15));
        let freqs = logspace(1e6, 100e9, 51);
        let ac = sweep_auto(&ckt, &freqs).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0] > mags[50], "gain must roll off");
        assert!(mags.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }
}
