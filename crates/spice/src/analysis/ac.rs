//! AC small-signal analysis.
//!
//! Linearizes every element around a previously computed operating point
//! and solves one complex MNA system per frequency. The excitation is the
//! set of sources constructed `.with_ac(magnitude)` — conventionally one
//! source with magnitude 1, so node voltages *are* transfer functions.
//!
//! # Sparse path and parallel sweeps
//!
//! At or above [`NewtonOptions::sparse_threshold`] unknowns the sweep
//! runs on a sparse complex LU: the `G + jωC` stamp pattern is recorded
//! once per topology (it is frequency-independent), one reference
//! factorization at the first frequency freezes the symbolic analysis
//! and pivot order, and every subsequent point replays an in-place
//! numeric refactorization — no DFS, no pivot search, no dense O(n³)
//! elimination. The frequency grid is partitioned into chunks executed
//! on `cml_runner::par_map`; each worker clones the reference
//! factorization, so all points share one pivot order and results are
//! bit-identical for any thread count. Any per-point failure (pattern
//! miss or a dead frozen pivot) falls back to the dense solve for that
//! point only — the self-heal ladder of the DC/transient sparse path,
//! specialized to a sweep of independent solves.

use super::{cache, AcSparseState, NewtonOptions, System};
use crate::circuit::{Circuit, NodeId};
use crate::SpiceError;
use cml_numeric::{Complex64, ComplexMatrix};
use cml_telemetry::{Phase, Telemetry};

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// MNA dimension (node voltages + branch currents) of one solution.
    dim: usize,
    /// Complex solutions, flat: point `idx` occupies
    /// `sols[idx * dim..(idx + 1) * dim]`.
    sols: Vec<Complex64>,
}

impl AcResult {
    /// Swept frequencies in Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage of `node` at sweep index `idx`.
    #[must_use]
    pub fn voltage(&self, node: NodeId, idx: usize) -> Complex64 {
        match node.index() {
            Some(i) => self.sols[idx * self.dim + i],
            None => Complex64::ZERO,
        }
    }

    /// Complex voltage trace of `node` across the sweep.
    #[must_use]
    pub fn voltage_trace(&self, node: NodeId) -> Vec<Complex64> {
        (0..self.freqs.len())
            .map(|i| self.voltage(node, i))
            .collect()
    }

    /// Differential voltage trace `v(p) − v(n)` across the sweep.
    #[must_use]
    pub fn differential_trace(&self, p: NodeId, n: NodeId) -> Vec<Complex64> {
        (0..self.freqs.len())
            .map(|i| self.voltage(p, i) - self.voltage(n, i))
            .collect()
    }

    /// Gain magnitude of `node` in dB across the sweep.
    #[must_use]
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.voltage_trace(node).iter().map(|z| z.db()).collect()
    }

    /// Phase of `node` in degrees across the sweep.
    #[must_use]
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        self.voltage_trace(node)
            .iter()
            .map(|z| z.arg().to_degrees())
            .collect()
    }
}

/// Runs an AC sweep over `freqs` (Hz) using the operating point `x_op`
/// (the raw solution vector from [`super::op::OpResult::solution`]),
/// with default options and automatic thread-count resolution
/// (`CML_THREADS`, else available parallelism).
///
/// # Errors
///
/// [`SpiceError::Singular`] if the small-signal system is singular at some
/// frequency; [`SpiceError::LintRejected`] if the netlist fails the
/// pre-simulation lint.
pub fn sweep(ckt: &Circuit, x_op: &[f64], freqs: &[f64]) -> Result<AcResult, SpiceError> {
    sweep_with(
        ckt,
        x_op,
        freqs,
        &NewtonOptions::default(),
        cml_runner::threads(None),
    )
}

/// [`sweep`] with explicit options (the sparse crossover lives in
/// [`NewtonOptions::sparse_threshold`]) and worker-thread count.
/// Results are bit-identical for any `threads` value.
///
/// # Errors
///
/// As [`sweep`].
pub fn sweep_with(
    ckt: &Circuit,
    x_op: &[f64],
    freqs: &[f64],
    opts: &NewtonOptions,
    threads: usize,
) -> Result<AcResult, SpiceError> {
    sweep_traced(ckt, x_op, freqs, opts, threads, &Telemetry::disabled())
}

/// [`sweep_with`] recording solver telemetry into `tel`: the sweep span,
/// per-point sparse/fallback counters (merged from the parallel workers
/// in input order, so totals are bit-identical for any `threads`) and
/// the per-worker chunk load.
///
/// # Errors
///
/// As [`sweep`].
pub fn sweep_traced(
    ckt: &Circuit,
    x_op: &[f64],
    freqs: &[f64],
    opts: &NewtonOptions,
    threads: usize,
    tel: &Telemetry,
) -> Result<AcResult, SpiceError> {
    {
        let _t = tel.timer(Phase::LintPrecheck);
        cache::lint_precheck_cached(ckt, opts.cache_enabled(), tel)?;
    }
    tel.count(|c| c.lint_prechecks += 1);
    sweep_prechecked(ckt, x_op, freqs, opts, threads, tel)
}

/// Convenience: solve the operating point, then sweep — with default
/// options and automatic thread-count resolution.
///
/// # Errors
///
/// Propagates operating-point and AC solve failures.
pub fn sweep_auto(ckt: &Circuit, freqs: &[f64]) -> Result<AcResult, SpiceError> {
    sweep_auto_with(
        ckt,
        freqs,
        &NewtonOptions::default(),
        cml_runner::threads(None),
    )
}

/// [`sweep_auto`] with explicit options and worker-thread count.
///
/// The netlist lint runs exactly once (inside the operating-point
/// solve); the sweep itself enters below the precheck.
///
/// # Errors
///
/// As [`sweep_auto`].
pub fn sweep_auto_with(
    ckt: &Circuit,
    freqs: &[f64],
    opts: &NewtonOptions,
    threads: usize,
) -> Result<AcResult, SpiceError> {
    sweep_auto_traced(ckt, freqs, opts, threads, &Telemetry::disabled())
}

/// [`sweep_auto_with`] recording solver telemetry into `tel` — the
/// operating-point counters and the sweep counters land in one report.
///
/// # Errors
///
/// As [`sweep_auto`].
pub fn sweep_auto_traced(
    ckt: &Circuit,
    freqs: &[f64],
    opts: &NewtonOptions,
    threads: usize,
    tel: &Telemetry,
) -> Result<AcResult, SpiceError> {
    let op = super::op::solve_traced(ckt, opts, None, tel)?;
    sweep_prechecked(ckt, op.solution(), freqs, opts, threads, tel)
}

/// The sweep engine, entered after the lint precheck has already run.
/// Any failure dumps an `"ac"` forensic flight bundle (see
/// [`crate::flight`]).
fn sweep_prechecked(
    ckt: &Circuit,
    x_op: &[f64],
    freqs: &[f64],
    opts: &NewtonOptions,
    threads: usize,
    tel: &Telemetry,
) -> Result<AcResult, SpiceError> {
    let res = sweep_prechecked_impl(ckt, x_op, freqs, opts, threads, tel);
    if let Err(e) = &res {
        crate::flight::record_failure(ckt, opts, "ac", e, tel);
    }
    res
}

fn sweep_prechecked_impl(
    ckt: &Circuit,
    x_op: &[f64],
    freqs: &[f64],
    opts: &NewtonOptions,
    threads: usize,
    tel: &Telemetry,
) -> Result<AcResult, SpiceError> {
    let _span = tel.span("analysis", "ac_sweep");
    let sys = System::new(ckt);
    let dim = sys.dim();
    let gmin = opts.gmin;

    // One reference sparse factorization for the whole sweep: recorded
    // pattern, symbolic analysis and pivot order all frozen here, then
    // cloned per worker. If the system is below the crossover, the
    // pattern can't be built, or the first point's factorization fails,
    // the whole sweep runs dense (which reports singularities with the
    // established error).
    let want_sparse = dim > 0 && dim >= opts.sparse_threshold && !freqs.is_empty();
    let reference: Option<AcSparseState> = if want_sparse {
        let _t = tel.timer(Phase::PatternDiscovery);
        if opts.cache_enabled() {
            cache::prepare_ac_sparse_cached(&sys, x_op, freqs[0], gmin, tel)
        } else {
            prepare_ac_sparse(&sys, x_op, freqs[0], gmin)
        }
    } else {
        None
    };
    if want_sparse {
        if reference.is_some() {
            tel.count(|c| c.pattern_builds += 1);
        } else {
            tel.count(|c| c.dense_fallbacks += 1);
            tel.degradation(
                "ac-sparse-reference",
                "AC sweep requested the sparse path but the reference \
                 pattern/factorization could not be built; the whole sweep \
                 runs dense",
            );
        }
    }

    // Chunked fan-out: big enough chunks to amortize the per-chunk
    // workspace clone, small enough to load-balance. Chunking affects
    // only scheduling — every point is a pure function of (x_op, f).
    // Telemetry from each worker is recorded into a forked buffer and
    // absorbed in chunk order below, so counter totals cannot depend on
    // the thread count (per-point events only; nothing per-chunk).
    let chunk_len = freqs
        .len()
        .div_ceil(threads.max(1) * 4)
        .max(8)
        .min(freqs.len().max(1));
    let chunks: Vec<&[f64]> = freqs.chunks(chunk_len).collect();
    let probe = tel.probe();
    let (results, per_worker) = cml_runner::par_map_stats(threads, &chunks, |i, chunk| {
        let wtel = probe.fork(i as u32 + 1);
        let r = {
            let _span = wtel.span("phase", "ac_chunk");
            solve_chunk(&sys, x_op, chunk, gmin, reference.as_ref(), &wtel)
        };
        (r, wtel.into_parts())
    });
    tel.note_worker_items(&per_worker);

    let mut sols = Vec::with_capacity(freqs.len() * dim);
    for (r, parts) in results {
        tel.absorb(parts);
        sols.extend(r?);
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        dim,
        sols,
    })
}

/// Builds and numerically factors the reference sparse state at the
/// sweep's first frequency. `None` (→ dense sweep) when the pattern
/// cannot be built or the reference factorization fails.
fn prepare_ac_sparse(sys: &System<'_>, x_op: &[f64], f0: f64, gmin: f64) -> Option<AcSparseState> {
    let omega0 = 2.0 * std::f64::consts::PI * f0;
    let mut sp = sys.build_ac_sparse(x_op, omega0)?;
    let mut rhs = Vec::new();
    if !sys.assemble_ac_sparse(x_op, omega0, gmin, &mut sp, &mut rhs) {
        return None;
    }
    sp.lu.factor(&sp.mat).ok()?;
    Some(sp)
}

/// Solves one chunk of frequency points, returning the flat solutions.
///
/// Each chunk clones the reference factorization, so every point in
/// every chunk replays the *same* frozen pivot order; a point whose
/// replay fails (pattern miss or dead pivot) is solved dense instead.
/// Both make each point's result independent of the chunking, which is
/// what guarantees bit-identical sweeps across thread counts.
fn solve_chunk(
    sys: &System<'_>,
    x_op: &[f64],
    freqs: &[f64],
    gmin: f64,
    reference: Option<&AcSparseState>,
    tel: &Telemetry,
) -> Result<Vec<Complex64>, SpiceError> {
    let dim = sys.dim();
    let mut out = Vec::with_capacity(freqs.len() * dim);
    let mut sp = reference.cloned();
    let mut dense: Option<ComplexMatrix> = None;
    let mut rhs: Vec<Complex64> = Vec::with_capacity(dim);
    let mut x: Vec<Complex64> = vec![Complex64::ZERO; dim];
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let solved_sparse = match sp.as_mut() {
            Some(sp) => {
                let _t = tel.timer_fine(Phase::Refactor);
                sys.assemble_ac_sparse(x_op, omega, gmin, sp, &mut rhs)
                    && sp.lu.refactor_frozen(&sp.mat).is_ok()
                    && sp.lu.solve_into(&rhs, &mut x).is_ok()
            }
            None => false,
        };
        // Per-point events only: counting anything per *chunk* here would
        // make totals depend on the thread count via the partitioning.
        tel.count(|c| {
            c.ac_points += 1;
            if solved_sparse {
                c.ac_points_sparse += 1;
            } else if sp.is_some() {
                c.ac_point_fallbacks += 1;
            }
        });
        if !solved_sparse {
            if sp.is_some() {
                tel.degradation(
                    "ac-point-fallback",
                    "an AC point's frozen-pivot replay failed (pattern miss \
                     or pivot death); that point was solved dense",
                );
            }
            let matrix = dense.get_or_insert_with(|| ComplexMatrix::zeros(dim, dim));
            sys.solve_ac_into(x_op, omega, gmin, matrix, &mut x)?;
        }
        out.extend_from_slice(&x);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use cml_numeric::logspace;

    #[test]
    fn rc_lowpass_pole() {
        // R = 1 kΩ, C = 1 nF → f3dB = 159.15 kHz.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-9));
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let ac = sweep_auto(&ckt, &[f3db / 100.0, f3db, f3db * 100.0]).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0].abs() < 0.01, "passband should be 0 dB");
        assert!((mags[1] + 3.0103).abs() < 0.01, "-3 dB at the pole");
        assert!((mags[2] + 40.0).abs() < 0.2, "-40 dB two decades up");
        // Phase at the pole is −45°.
        let ph = ac.phase_deg(out);
        assert!((ph[1] + 45.0).abs() < 0.5);
    }

    #[test]
    fn rlc_series_resonance() {
        // Series RLC driven by 1 V: at resonance the current is limited
        // only by R, so the resistor voltage equals the source.
        let (r, l, c): (f64, f64, f64) = (10.0, 1e-9, 1e-12);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let n1 = ckt.node("n1");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Inductor::new("L1", vin, n1, l));
        ckt.add(Capacitor::new("C1", n1, out, c));
        ckt.add(Resistor::new("R1", out, Circuit::GROUND, r));
        let ac = sweep_auto(&ckt, &[f0]).unwrap();
        let v_r = ac.voltage(out, 0);
        assert!((v_r.abs() - 1.0).abs() < 1e-6, "|v_R| = {}", v_r.abs());
    }

    #[test]
    fn vccs_gain_stage() {
        // gm = 10 mS into 1 kΩ → gain −10 (20 dB).
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Vccs::new(
            "G1",
            out,
            Circuit::GROUND,
            vin,
            Circuit::GROUND,
            10e-3,
        ));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3));
        let ac = sweep_auto(&ckt, &[1e6]).unwrap();
        let g = ac.voltage(out, 0);
        assert!((g.re + 10.0).abs() < 1e-6);
        assert!((g.db() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn mosfet_common_source_gain() {
        // Gain ≈ −gm·(RD ∥ ro); check AC against hand small-signal math.
        let params = MosParams {
            mos_type: MosType::Nmos,
            w: 10e-6,
            l: 0.18e-6,
            vth0: 0.45,
            kp: 170e-6,
            lambda: 0.1,
            cox: 8.4e-3,
            cov: 3.0e-10,
            cj: 1.0e-3,
            ldiff: 0.5e-6,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
        ckt.add(Vsource::dc("VG", g, Circuit::GROUND, 0.8).with_ac(1.0));
        ckt.add(Resistor::new("RD", vdd, d, 1e3));
        let m = Mosfet::new("M1", d, g, Circuit::GROUND, Circuit::GROUND, params);
        let m_probe = m.clone();
        ckt.add(m);
        let op = op::solve(&ckt).unwrap();
        let ss = m_probe.small_signal(op.solution());
        let expected = ss.gm / (1e-3 + ss.gds); // gm · (RD ∥ ro)
        let ac = sweep(&ckt, op.solution(), &[1e5]).unwrap();
        let gain = ac.voltage(d, 0);
        assert!(
            (gain.re + expected).abs() / expected < 1e-6,
            "gain {} vs expected {}",
            gain.re,
            -expected
        );
        assert!(
            gain.im.abs() < expected * 1e-3,
            "low-frequency phase ≈ 180°"
        );
    }

    #[test]
    fn gain_rolls_off_with_load_capacitance() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Vccs::new(
            "G1",
            out,
            Circuit::GROUND,
            vin,
            Circuit::GROUND,
            1e-3,
        ));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3));
        ckt.add(Capacitor::new("CL", out, Circuit::GROUND, 100e-15));
        let freqs = logspace(1e6, 100e9, 51);
        let ac = sweep_auto(&ckt, &freqs).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0] > mags[50], "gain must roll off");
        assert!(mags.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    #[test]
    fn sparse_matches_dense_and_threads_are_bit_identical() {
        // RC ladder big enough to clear any forced threshold, swept on
        // the dense path, the sparse path, and several thread counts.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0).with_ac(1.0));
        let mut prev = vin;
        let mut last = vin;
        for i in 0..40 {
            let n = ckt.node(&format!("n{i}"));
            ckt.add(Resistor::new(&format!("R{i}"), prev, n, 50.0));
            ckt.add(Capacitor::new(&format!("C{i}"), n, Circuit::GROUND, 20e-15));
            prev = n;
            last = n;
        }
        let freqs = logspace(1e6, 50e9, 40);
        let op = op::solve(&ckt).unwrap();
        let dense_opts = NewtonOptions {
            sparse_threshold: usize::MAX,
            ..NewtonOptions::default()
        };
        let sparse_opts = NewtonOptions {
            sparse_threshold: 1,
            ..NewtonOptions::default()
        };
        let dense = sweep_with(&ckt, op.solution(), &freqs, &dense_opts, 1).unwrap();
        let sparse1 = sweep_with(&ckt, op.solution(), &freqs, &sparse_opts, 1).unwrap();
        for (i, _) in freqs.iter().enumerate() {
            let d = dense.voltage(last, i);
            let s = sparse1.voltage(last, i);
            assert!((d - s).abs() < 1e-9, "point {i}: {d:?} vs {s:?}");
        }
        for threads in [2, 3, 8] {
            let sp = sweep_with(&ckt, op.solution(), &freqs, &sparse_opts, threads).unwrap();
            for (i, _) in freqs.iter().enumerate() {
                let a = sparse1.voltage(last, i);
                let b = sp.voltage(last, i);
                assert_eq!(
                    a.re.to_bits(),
                    b.re.to_bits(),
                    "threads {threads} point {i}"
                );
                assert_eq!(
                    a.im.to_bits(),
                    b.im.to_bits(),
                    "threads {threads} point {i}"
                );
            }
        }
    }
}
