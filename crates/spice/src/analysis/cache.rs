//! Glue between the analyses and the content-addressed topology
//! artifact cache (`cml-cache`).
//!
//! Everything cached here is an artifact the solver would otherwise
//! re-derive per analysis invocation even though it is a pure function
//! of circuit structure: DC/transient Jacobian stamp patterns with
//! their symbolic LU analyses, the AC `G + jωC` pattern, the factored
//! AC reference state with its frozen pivot order, lint verdicts, and
//! interval-analysis warm-start vectors.
//!
//! # Soundness
//!
//! The cache is advisory: a stale, corrupt, or colliding entry must
//! never change results, only cost a cold derivation. Every consumer in
//! this module therefore re-validates what it loads:
//!
//! * **Patterns** (topology-keyed) are stored *pre-factorization* —
//!   the expensive parts (stamp-recording pass, symmetrization, CSR
//!   construction, symbolic analysis and min-degree ordering) are
//!   reused, while every numeric value is assembled and factored fresh
//!   by the caller exactly as on the cold path, so warm results are
//!   bit-identical by construction. Disk payloads are structurally
//!   revalidated (dimension match, canonical CSR shape) before use.
//! * **AC factored states** (content-keyed) additionally carry the
//!   exact bit pattern of the assembled reference matrix; a cached
//!   frozen pivot order is used only after a full bitwise comparison
//!   against the live assembly, which makes even a 64-bit digest
//!   collision harmless. The frozen snapshot itself passes
//!   [`SparseLu::from_frozen`]'s structural validation.
//! * **Lint verdicts**: only *passing* verdicts are interned (keyed by
//!   the content hash, so a value edit re-lints); failures re-lint on
//!   every call and keep their diagnostics fresh.
//!
//! # Telemetry
//!
//! The `cache_*` counters are recorded here, at the single
//! compute-per-key call sites, on the caller's [`Telemetry`]: tier-1
//! hits (`cache_hits`), cold derivations (`cache_misses`), validated
//! disk loads (`cache_disk_loads`) and rejected artifacts
//! (`cache_validation_failures`). Because the interner computes under
//! the shard write lock (at most one cold derivation per key
//! process-wide), these totals are thread-count-invariant.

use super::{AcSparseState, ModeKind, SparseState, System};
use crate::circuit::Circuit;
use crate::element::{StampMode, StampSlots};
use crate::SpiceError;
use cml_cache::codec::{ByteReader, ByteWriter};
use cml_cache::disk::{self, DiskLoad};
use cml_cache::{intern, ArtifactKind, Fnv64, Key};
use cml_numeric::sparse::CsrMatrix;
use cml_numeric::{Complex64, FrozenLu, Scalar, SparseLu};
use cml_telemetry::{EventKind, Telemetry};
use std::cell::Cell;
use std::sync::Arc;

/// How a tier-1 miss was filled by the interner's make closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fill {
    /// Validated payload from the disk tier.
    Disk,
    /// Cold derivation.
    Cold,
}

/// Records the telemetry outcome of one interner round trip. `kind`
/// names the artifact family in the structured [`EventKind::CacheRejected`]
/// event logged when a validation layer rejected a stored payload.
fn count_outcome(tel: &Telemetry, was_hit: bool, fill: Fill, rejected: bool, kind: &'static str) {
    tel.count(|c| {
        if was_hit {
            c.cache_hits += 1;
        } else {
            match fill {
                Fill::Disk => c.cache_disk_loads += 1,
                Fill::Cold => c.cache_misses += 1,
            }
            if rejected {
                c.cache_validation_failures += 1;
            }
        }
    });
    if !was_hit && rejected {
        tel.event(|| EventKind::CacheRejected { kind: kind.into() });
    }
}

/// Topology-level key: circuit structure hash folded with the MNA
/// dimensions (defense in depth — a hash-equal circuit with different
/// unknown counts can never be consulted).
fn topology_key(sys: &System<'_>, kind: ArtifactKind) -> Key {
    let mut h = Fnv64::new();
    h.write_u64(sys.circuit().topology_hash());
    h.write_usize(sys.dim());
    h.write_usize(sys.n_nodes());
    Key::new(kind, h.finish())
}

// ---------------------------------------------------------------------
// Pattern payloads (DcPattern / TranPattern / AcPattern)
// ---------------------------------------------------------------------

/// Serializes a fixed-pattern CSR shape (values are *not* stored — the
/// artifact is pre-numeric by design).
fn encode_pattern<T: Scalar>(mat: &CsrMatrix<T>) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(24 + 8 * (mat.row_ptr().len() + mat.col_idx().len()));
    w.put_usize(mat.rows());
    w.put_usize_slice(mat.row_ptr());
    w.put_usize_slice(mat.col_idx());
    w.finish()
}

/// Deserializes and structurally validates a CSR pattern against the
/// live system: the dimension must match and the stored shape must be
/// exactly the canonical form [`CsrMatrix::from_pattern`] produces —
/// anything else is rejected (→ cold derivation).
fn decode_pattern<T: Scalar>(sys: &System<'_>, payload: &[u8]) -> Option<CsrMatrix<T>> {
    let mut r = ByteReader::new(payload);
    let dim = r.get_usize()?;
    if dim != sys.dim() {
        return None;
    }
    let row_ptr = r.get_usize_vec()?;
    let col_idx = r.get_usize_vec()?;
    if !r.exhausted() {
        return None;
    }
    if row_ptr.len() != dim + 1 || row_ptr[0] != 0 || *row_ptr.last()? != col_idx.len() {
        return None;
    }
    let mut positions = Vec::with_capacity(col_idx.len());
    for row in 0..dim {
        let (lo, hi) = (row_ptr[row], row_ptr[row + 1]);
        if lo > hi || hi > col_idx.len() {
            return None;
        }
        for &col in &col_idx[lo..hi] {
            if col >= dim {
                return None;
            }
            positions.push((row, col));
        }
    }
    let mat = CsrMatrix::<T>::from_pattern(dim, dim, &positions).ok()?;
    // Canonicality check: rebuilding from the stored positions must
    // reproduce the stored arrays bit-for-bit, so a warm solve walks
    // exactly the slots a cold discovery would have produced.
    if mat.row_ptr() != row_ptr.as_slice() || mat.col_idx() != col_idx.as_slice() {
        return None;
    }
    Some(mat)
}

/// Builds a pristine (pre-factor) [`SparseState`] around a validated
/// pattern, mirroring the tail of [`System::build_sparse`].
fn sparse_state_from_pattern(
    sys: &System<'_>,
    mat: CsrMatrix<f64>,
    kind: ModeKind,
) -> Option<SparseState> {
    let lu = SparseLu::new(&mat).ok()?;
    let diag_slots: Option<Vec<usize>> = (0..sys.n_nodes()).map(|i| mat.find(i, i)).collect();
    let nnz = mat.vals().len();
    Some(SparseState {
        mat,
        lu,
        lin_vals: vec![0.0; nnz],
        diag_slots: diag_slots?,
        slots_full: StampSlots::default(),
        slots_lin: StampSlots::default(),
        slots_nonlin: StampSlots::default(),
        kind,
    })
}

/// Complex twin of [`sparse_state_from_pattern`], mirroring the tail of
/// [`System::build_ac_sparse`].
fn ac_state_from_pattern(sys: &System<'_>, mat: CsrMatrix<Complex64>) -> Option<AcSparseState> {
    let lu = SparseLu::new(&mat).ok()?;
    let diag_slots: Option<Vec<usize>> = (0..sys.n_nodes()).map(|i| mat.find(i, i)).collect();
    Some(AcSparseState {
        mat,
        lu,
        slots: StampSlots::default(),
        diag_slots: diag_slots?,
    })
}

/// Cached variant of [`System::build_sparse`]: serves the DC- or
/// transient-mode stamp pattern plus symbolic LU from the interner (or
/// the disk tier), deriving cold at most once per topology
/// process-wide. The returned state is a pristine pre-factor clone —
/// numeric assembly and factorization happen in the caller exactly as
/// on the cold path, which is what keeps warm results bit-identical.
pub(super) fn sparse_state_cached(
    sys: &System<'_>,
    x0: &[f64],
    state: &[f64],
    mode: StampMode,
    tel: &Telemetry,
) -> Option<SparseState> {
    let mode_kind = ModeKind::of(mode);
    let kind = match mode_kind {
        ModeKind::Dc => ArtifactKind::DcPattern,
        ModeKind::Tran => ArtifactKind::TranPattern,
    };
    let key = topology_key(sys, kind);
    let fill = Cell::new(Fill::Cold);
    let rejected = Cell::new(false);
    let (arc, was_hit) = intern::get_or_insert_with::<SparseState, _>(key, || {
        match disk::load_detailed(key) {
            DiskLoad::Data(payload) => {
                if let Some(sp) = decode_pattern::<f64>(sys, &payload)
                    .and_then(|mat| sparse_state_from_pattern(sys, mat, mode_kind))
                {
                    fill.set(Fill::Disk);
                    return Some(Arc::new(sp));
                }
                // Header-valid but semantically unusable for this
                // system: drop it so future processes don't re-fail.
                rejected.set(true);
                cml_cache::note_validation_failure();
                disk::remove(key);
            }
            DiskLoad::Rejected => rejected.set(true),
            DiskLoad::Absent => {}
        }
        let sp = sys.build_sparse(x0, state, mode)?;
        disk::store(key, &encode_pattern(&sp.mat));
        Some(Arc::new(sp))
    })?;
    count_outcome(tel, was_hit, fill.get(), rejected.get(), "jacobian-pattern");
    Some(arc.as_ref().clone())
}

// ---------------------------------------------------------------------
// AC: cached pattern + content-keyed frozen factorization
// ---------------------------------------------------------------------

/// A factored AC reference state: the exact value bits of the assembled
/// `G + jω₀C` matrix it was factored from, plus the frozen
/// factorization snapshot. Consulted only after `bits` compares equal
/// to the live assembly, so the frozen pivot order can never be applied
/// to a matrix it wasn't derived from.
#[derive(Debug, Clone)]
struct AcFactorArtifact {
    /// `(re, im)` bit patterns of every CSR value slot, interleaved.
    bits: Vec<u64>,
    /// Frozen factorization (validated by [`SparseLu::from_frozen`]).
    frozen: FrozenLu<Complex64>,
}

/// Interleaved `(re, im)` bit patterns of the assembled matrix values.
fn matrix_bits(mat: &CsrMatrix<Complex64>) -> Vec<u64> {
    let mut out = Vec::with_capacity(mat.vals().len() * 2);
    for z in mat.vals() {
        out.push(z.re.to_bits());
        out.push(z.im.to_bits());
    }
    out
}

fn put_u64_slice(w: &mut ByteWriter, vs: &[u64]) {
    w.put_usize(vs.len());
    for &v in vs {
        w.put_u64(v);
    }
}

fn get_u64_vec(r: &mut ByteReader<'_>) -> Option<Vec<u64>> {
    let n = r.get_usize()?;
    if n > r.remaining() / 8 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u64()?);
    }
    Some(out)
}

fn put_complex_slice(w: &mut ByteWriter, vs: &[Complex64]) {
    w.put_usize(vs.len());
    for z in vs {
        w.put_f64(z.re);
        w.put_f64(z.im);
    }
}

fn get_complex_vec(r: &mut ByteReader<'_>) -> Option<Vec<Complex64>> {
    let n = r.get_usize()?;
    if n > r.remaining() / 16 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let re = r.get_f64()?;
        let im = r.get_f64()?;
        out.push(Complex64 { re, im });
    }
    Some(out)
}

fn encode_ac_factor(art: &AcFactorArtifact) -> Vec<u8> {
    let f = &art.frozen;
    let mut w = ByteWriter::new();
    put_u64_slice(&mut w, &art.bits);
    w.put_usize(f.n);
    w.put_usize_slice(&f.cp);
    w.put_usize_slice(&f.cri);
    w.put_usize_slice(&f.cmap);
    w.put_usize_slice(&f.q);
    w.put_usize_slice(&f.pinv);
    w.put_usize_slice(&f.pivot_row);
    w.put_usize_slice(&f.lp);
    w.put_usize_slice(&f.li);
    w.put_usize_slice(&f.li_orig);
    put_complex_slice(&mut w, &f.lx);
    w.put_usize_slice(&f.up);
    w.put_usize_slice(&f.ui);
    put_complex_slice(&mut w, &f.ux);
    w.put_usize_slice(&f.reach_ptr);
    w.put_usize_slice(&f.reach);
    w.finish()
}

fn decode_ac_factor(payload: &[u8]) -> Option<AcFactorArtifact> {
    let mut r = ByteReader::new(payload);
    let bits = get_u64_vec(&mut r)?;
    let frozen = FrozenLu {
        n: r.get_usize()?,
        cp: r.get_usize_vec()?,
        cri: r.get_usize_vec()?,
        cmap: r.get_usize_vec()?,
        q: r.get_usize_vec()?,
        pinv: r.get_usize_vec()?,
        pivot_row: r.get_usize_vec()?,
        lp: r.get_usize_vec()?,
        li: r.get_usize_vec()?,
        li_orig: r.get_usize_vec()?,
        lx: get_complex_vec(&mut r)?,
        up: r.get_usize_vec()?,
        ui: r.get_usize_vec()?,
        ux: get_complex_vec(&mut r)?,
        reach_ptr: r.get_usize_vec()?,
        reach: r.get_usize_vec()?,
    };
    if !r.exhausted() {
        return None;
    }
    Some(AcFactorArtifact { bits, frozen })
}

/// Cached variant of the AC sweep's reference preparation: serves the
/// `G + jωC` stamp pattern from the topology tier, assembles the
/// reference matrix at `f0` fresh, then serves the *factorization*
/// from the content tier keyed by (and bit-compared against) the exact
/// assembled matrix bits. Falls back to cold derivation at every
/// validation boundary; returns `None` (→ dense sweep) exactly when
/// the uncached path would.
pub(super) fn prepare_ac_sparse_cached(
    sys: &System<'_>,
    x_op: &[f64],
    f0: f64,
    gmin: f64,
    tel: &Telemetry,
) -> Option<AcSparseState> {
    let omega0 = 2.0 * std::f64::consts::PI * f0;

    // Tier: topology-keyed pattern + symbolic analysis.
    let pat_key = topology_key(sys, ArtifactKind::AcPattern);
    let fill = Cell::new(Fill::Cold);
    let rejected = Cell::new(false);
    let (arc, was_hit) = intern::get_or_insert_with::<AcSparseState, _>(pat_key, || {
        match disk::load_detailed(pat_key) {
            DiskLoad::Data(payload) => {
                if let Some(sp) = decode_pattern::<Complex64>(sys, &payload)
                    .and_then(|mat| ac_state_from_pattern(sys, mat))
                {
                    fill.set(Fill::Disk);
                    return Some(Arc::new(sp));
                }
                rejected.set(true);
                cml_cache::note_validation_failure();
                disk::remove(pat_key);
            }
            DiskLoad::Rejected => rejected.set(true),
            DiskLoad::Absent => {}
        }
        let sp = sys.build_ac_sparse(x_op, omega0)?;
        disk::store(pat_key, &encode_pattern(&sp.mat));
        Some(Arc::new(sp))
    })?;
    count_outcome(tel, was_hit, fill.get(), rejected.get(), "ac-pattern");
    let mut sp: AcSparseState = arc.as_ref().clone();

    // Reference assembly at f0, always fresh (values are never cached).
    let mut rhs = Vec::new();
    if !sys.assemble_ac_sparse(x_op, omega0, gmin, &mut sp, &mut rhs) {
        // The cached pattern can't carry this circuit's stamps (it can
        // only happen on a topology-hash abstraction failure): reject
        // it, rebuild fresh, and re-intern the good pattern.
        tel.count(|c| c.cache_validation_failures += 1);
        tel.event(|| EventKind::CacheRejected {
            kind: "ac-pattern-stamp".into(),
        });
        cml_cache::note_validation_failure();
        let fresh = sys.build_ac_sparse(x_op, omega0)?;
        intern::insert(pat_key, Arc::new(fresh.clone()));
        sp = fresh;
        if !sys.assemble_ac_sparse(x_op, omega0, gmin, &mut sp, &mut rhs) {
            return None;
        }
    }

    // Tier: content-keyed frozen factorization. The digest folds the
    // topology key with every assembled value bit; the artifact then
    // re-verifies those bits in full, so even a digest collision only
    // costs a cold factorization.
    let bits = matrix_bits(&sp.mat);
    let mut h = Fnv64::new();
    h.write_u64(pat_key.hash);
    h.write_usize(bits.len());
    for &b in &bits {
        h.write_u64(b);
    }
    let fac_key = Key::new(ArtifactKind::AcFactor, h.finish());

    let mut factor_rejected = false;
    if let Some(art) = intern::lookup::<AcFactorArtifact>(fac_key) {
        if art.bits == bits {
            if let Ok(lu) = SparseLu::from_frozen(art.frozen.clone()) {
                sp.lu = lu;
                tel.count(|c| c.cache_hits += 1);
                return Some(sp);
            }
        }
        // Digest collision or an un-replayable snapshot: derive cold.
        factor_rejected = true;
        cml_cache::note_validation_failure();
    } else {
        match disk::load_detailed(fac_key) {
            DiskLoad::Data(payload) => {
                let grafted = decode_ac_factor(&payload)
                    .filter(|art| art.bits == bits)
                    .and_then(|art| {
                        SparseLu::from_frozen(art.frozen.clone())
                            .ok()
                            .map(|lu| (art, lu))
                    });
                if let Some((art, lu)) = grafted {
                    sp.lu = lu;
                    intern::insert(fac_key, Arc::new(art));
                    tel.count(|c| c.cache_disk_loads += 1);
                    return Some(sp);
                }
                factor_rejected = true;
                cml_cache::note_validation_failure();
                disk::remove(fac_key);
            }
            DiskLoad::Rejected => factor_rejected = true,
            DiskLoad::Absent => {}
        }
    }

    // Cold: numeric reference factorization, then publish the frozen
    // snapshot to both tiers.
    sp.lu.factor(&sp.mat).ok()?;
    cml_cache::note_miss();
    tel.count(|c| {
        c.cache_misses += 1;
        if factor_rejected {
            c.cache_validation_failures += 1;
        }
    });
    if factor_rejected {
        tel.event(|| EventKind::CacheRejected {
            kind: "ac-factor".into(),
        });
    }
    if let Some(frozen) = sp.lu.export_frozen() {
        let art = Arc::new(AcFactorArtifact { bits, frozen });
        disk::store(fac_key, &encode_ac_factor(&art));
        intern::insert(fac_key, art);
    }
    Some(sp)
}

// ---------------------------------------------------------------------
// Lint verdicts
// ---------------------------------------------------------------------

/// Cached variant of [`crate::lint::precheck`]: a *passing* verdict is
/// interned under the circuit's content hash, so repeated analyses of
/// an unchanged netlist skip the lint passes entirely. Failing
/// verdicts are never cached — every failing call re-lints and carries
/// freshly built diagnostics. With `use_cache` false this is exactly
/// the uncached precheck.
///
/// # Errors
///
/// [`SpiceError::LintRejected`] as [`crate::lint::precheck`].
pub(crate) fn lint_precheck_cached(
    ckt: &Circuit,
    use_cache: bool,
    tel: &Telemetry,
) -> Result<(), SpiceError> {
    if !use_cache {
        return crate::lint::precheck(ckt);
    }
    let mut h = Fnv64::new();
    h.write_u64(ckt.content_hash());
    let key = Key::new(ArtifactKind::LintVerdict, h.finish());
    let mut err: Option<SpiceError> = None;
    let got = intern::get_or_insert_with::<(), _>(key, || match crate::lint::precheck(ckt) {
        Ok(()) => Some(Arc::new(())),
        Err(e) => {
            err = Some(e);
            None
        }
    });
    match got {
        Some((_ok, was_hit)) => {
            count_outcome(tel, was_hit, Fill::Cold, false, "lint-verdict");
            Ok(())
        }
        None => {
            tel.count(|c| c.cache_misses += 1);
            match err {
                Some(e) => Err(e),
                // Unreachable: the closure only returns None after
                // setting `err`; keep a typed error rather than a panic.
                None => Err(SpiceError::Internal {
                    message: "lint verdict cache lost its error".to_string(),
                }),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Warm-start vectors
// ---------------------------------------------------------------------

/// Cached variant of [`crate::analyze::warm_start_vector`], keyed by
/// the circuit *content* hash (interval analysis reads element values)
/// folded with `gmin` and the MNA dimension. Memory-only: the vector
/// is cheap to store and is already advisory — any stale value would
/// only change the Newton starting point, never the converged result,
/// but the content key makes even that impossible.
pub(super) fn warm_start_cached(
    sys: &System<'_>,
    gmin: f64,
    dim: usize,
    tel: &Telemetry,
) -> Vec<f64> {
    let mut h = Fnv64::new();
    h.write_u64(sys.circuit().content_hash());
    h.write_f64(gmin);
    h.write_usize(dim);
    let key = Key::new(ArtifactKind::WarmStart, h.finish());
    let got = intern::get_or_insert_with::<Vec<f64>, _>(key, || {
        Some(Arc::new(crate::analyze::warm_start_vector(
            sys.circuit(),
            gmin,
            dim,
            tel,
        )))
    });
    match got {
        Some((arc, was_hit)) if arc.len() == dim => {
            count_outcome(tel, was_hit, Fill::Cold, false, "warm-start");
            arc.as_ref().clone()
        }
        // Length mismatch can only mean a key collision; derive fresh.
        _ => {
            tel.count(|c| {
                c.cache_misses += 1;
                c.cache_validation_failures += 1;
            });
            tel.event(|| EventKind::CacheRejected {
                kind: "warm-start".into(),
            });
            crate::analyze::warm_start_vector(sys.circuit(), gmin, dim, tel)
        }
    }
}
