//! DC sweep analysis.
//!
//! Sweeps are expressed as a closure from the swept value to a circuit;
//! this sidesteps mutation of boxed elements and makes multi-parameter
//! sweeps (temperature + voltage corners) come for free.

use super::op::{self, OpResult};
use super::NewtonOptions;
use crate::circuit::Circuit;
use crate::SpiceError;
use cml_telemetry::Telemetry;

/// Result of a DC sweep: one operating point per swept value.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    values: Vec<f64>,
    ops: Vec<OpResult>,
}

impl DcSweepResult {
    /// Swept parameter values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Operating points, one per value.
    #[must_use]
    pub fn ops(&self) -> &[OpResult] {
        &self.ops
    }

    /// Extracts a node-voltage trace across the sweep. The node is looked
    /// up by name in each generated circuit (ids can differ per circuit).
    ///
    /// # Errors
    ///
    /// [`SpiceError::NotFound`] if a circuit in the sweep lacks the node —
    /// the closure should generate structurally identical circuits.
    pub fn voltage_trace(
        &self,
        build: impl Fn(f64) -> Circuit,
        node_name: &str,
    ) -> Result<Vec<f64>, SpiceError> {
        self.values
            .iter()
            .zip(&self.ops)
            .map(|(&v, op)| {
                let ckt = build(v);
                let node = ckt
                    .find_node(node_name)
                    .ok_or_else(|| SpiceError::NotFound {
                        what: "node",
                        name: node_name.to_string(),
                    })?;
                Ok(op.voltage(node))
            })
            .collect()
    }
}

/// Runs a DC sweep: `build` constructs the circuit for each value in
/// `values`, and each circuit's operating point is solved.
///
/// # Errors
///
/// Propagates the first operating-point failure.
///
/// # Example
///
/// ```
/// use cml_spice::prelude::*;
///
/// # fn main() -> Result<(), cml_spice::SpiceError> {
/// let build = |vin: f64| {
///     let mut ckt = Circuit::new();
///     let a = ckt.node("a");
///     let out = ckt.node("out");
///     ckt.add(Vsource::dc("V1", a, Circuit::GROUND, vin));
///     ckt.add(Resistor::new("R1", a, out, 1e3));
///     ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1e3));
///     ckt
/// };
/// let sweep = dc::sweep(build, &[0.0, 1.0, 2.0])?;
/// let trace = sweep.voltage_trace(build, "out")?;
/// assert!((trace[2] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn sweep(build: impl Fn(f64) -> Circuit, values: &[f64]) -> Result<DcSweepResult, SpiceError> {
    sweep_with(build, values, &NewtonOptions::default())
}

/// [`sweep`] with custom Newton options.
///
/// # Errors
///
/// Propagates the first operating-point failure.
pub fn sweep_with(
    build: impl Fn(f64) -> Circuit,
    values: &[f64],
    opts: &NewtonOptions,
) -> Result<DcSweepResult, SpiceError> {
    sweep_traced(build, values, opts, &Telemetry::disabled())
}

/// [`sweep_with`] recording solver telemetry into `tel`: one span for
/// the sweep plus the per-operating-point counters of every rung.
///
/// # Errors
///
/// Propagates the first operating-point failure.
pub fn sweep_traced(
    build: impl Fn(f64) -> Circuit,
    values: &[f64],
    opts: &NewtonOptions,
    tel: &Telemetry,
) -> Result<DcSweepResult, SpiceError> {
    let _span = tel.span("analysis", "dc_sweep");
    let mut ops = Vec::with_capacity(values.len());
    for &v in values {
        let ckt = build(v);
        match op::solve_traced(&ckt, opts, None, tel) {
            Ok(op) => ops.push(op),
            Err(e) => {
                // The failing rung already dumped an "op" bundle; this
                // one adds the sweep-level context (which swept value
                // built the failing circuit is only known here).
                crate::flight::record_failure(&ckt, opts, "dc", &e, tel);
                return Err(e);
            }
        }
    }
    Ok(DcSweepResult {
        values: values.to_vec(),
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn divider(vin: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, vin));
        ckt.add(Resistor::new("R1", a, out, 3e3));
        ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1e3));
        ckt
    }

    #[test]
    fn linear_sweep_is_linear() {
        let values = [0.0, 1.0, 2.0, 4.0];
        let sweep = sweep(divider, &values).unwrap();
        let trace = sweep.voltage_trace(divider, "out").unwrap();
        for (v, o) in values.iter().zip(&trace) {
            assert!((o - v / 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_node_reports_error() {
        let sweep = sweep(divider, &[1.0]).unwrap();
        assert!(matches!(
            sweep.voltage_trace(divider, "nope"),
            Err(SpiceError::NotFound { .. })
        ));
    }

    #[test]
    fn nmos_transfer_curve_is_monotone_falling() {
        // Common-source amplifier VTC: output falls as gate rises.
        let build = |vg: f64| {
            let params = MosParams {
                mos_type: MosType::Nmos,
                w: 10e-6,
                l: 0.18e-6,
                vth0: 0.45,
                kp: 170e-6,
                lambda: 0.1,
                cox: 8.4e-3,
                cov: 3.0e-10,
                cj: 1.0e-3,
                ldiff: 0.5e-6,
            };
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let d = ckt.node("d");
            let g = ckt.node("g");
            ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
            ckt.add(Vsource::dc("VG", g, Circuit::GROUND, vg));
            ckt.add(Resistor::new("RD", vdd, d, 2e3));
            ckt.add(Mosfet::new(
                "M1",
                d,
                g,
                Circuit::GROUND,
                Circuit::GROUND,
                params,
            ));
            ckt
        };
        let gates: Vec<f64> = (0..=10).map(|i| 0.2 + i as f64 * 0.1).collect();
        let sweep = sweep(build, &gates).unwrap();
        let vtc = sweep.voltage_trace(build, "d").unwrap();
        assert!((vtc[0] - 1.8).abs() < 1e-6, "cutoff should give VDD");
        for w in vtc.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "vtc must be non-increasing: {vtc:?}");
        }
        assert!(*vtc.last().unwrap() < 0.7, "device should pull low");
    }
}
