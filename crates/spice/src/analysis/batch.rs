//! Batched multi-variant solves: K parameter variants of one topology
//! marching through stamping → factorization → Newton in lockstep.
//!
//! Monte-Carlo yield estimation solves the *same circuit* thousands of
//! times with slightly perturbed device parameters. Solving each variant
//! independently repeats every piece of structural work — unknown
//! layout, sparsity pattern, pivot search, Newton loop control — that
//! is identical across variants. This module amortizes all of it:
//!
//! * variants are packed into the lanes of a [`LaneScalar`] value
//!   (`f64` = 1 lane, [`cml_numeric::F64x8`] = 8), so one
//!   structure-of-arrays inner loop stamps, factors and substitutes K
//!   matrices at once (the element-wise lane arithmetic auto-vectorizes
//!   into SIMD — see `cml_numeric::lanes`);
//! * the damped-Newton driver tracks convergence **per lane**: a lane
//!   that converges freezes while the others keep iterating, and a lane
//!   whose frozen pivot dies or whose iterate diverges is quarantined
//!   by the masked LU kernels ([`cml_numeric::LaneLu::refactor_masked`],
//!   [`cml_numeric::SparseLu::refactor_frozen_masked`]) and re-solved
//!   through the ordinary scalar path — one bad variant never stalls
//!   or corrupts the batch;
//! * above the sparse threshold the pattern is discovered **once** and
//!   every variant stamps through the same slot caches into a
//!   lane-packed CSR matrix whose pivot order is frozen after the first
//!   factorization, exactly the replay machinery the scalar transient
//!   path uses across timesteps — here replayed across variants.
//!
//! The lane width comes from `CML_BATCH_LANES` (1, 2, 4 or 8; default
//! 8; any other value falls back to 8). Width 1 runs the identical
//! batched control flow over plain `f64` — the escape hatch that makes
//! scalar-vs-batched discrepancies bisectable. See DESIGN.md §13.
//!
//! Fallback ladder per lane: lockstep Newton → (pivot death, divergence
//! or iteration exhaustion) → scalar [`op::solve_system`] homotopy
//! ladder (operating point) or scalar [`System::newton_with`] with step
//! halving on the same time grid (transient). Every eviction increments
//! the `lane_fallbacks` telemetry counter; batch efficiency is visible
//! as `lane_occupancy` / `lane_fallback_rate` in the solver report.

use super::op::solve_system;
use super::{cache, AttemptError, ModeKind, NewtonOptions, NewtonWorkspace, SparseState, System};
use crate::analysis::tran::TranConfig;
use crate::circuit::{Circuit, NodeId};
use crate::element::StampMode;
use crate::SpiceError;
use cml_numeric::sparse::CsrMatrix;
use cml_numeric::{DenseMatrix, F64x2, F64x4, F64x8, LaneLu, LaneScalar, SparseLu};
use cml_telemetry::{EventKind, Phase, Telemetry};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Default lane width when `CML_BATCH_LANES` is unset or invalid.
const DEFAULT_LANES: usize = 8;

/// Default batched sparse threshold when `CML_BATCH_SPARSE_THRESHOLD`
/// is unset or invalid (see [`batch_sparse_threshold`]).
const DEFAULT_BATCH_SPARSE: usize = 12;

/// Resolves the batched solver's own sparse threshold, honouring the
/// `CML_BATCH_SPARSE_THRESHOLD` environment variable (read once).
///
/// The scalar threshold ([`NewtonOptions::sparse_threshold`], default
/// 50) answers "when does sparse win for *one* solve, pattern
/// discovery included". The batch kernel discovers the pattern once
/// and replays its frozen pivot order across every iteration of every
/// lane group, so discovery amortizes to nothing and sparse wins at
/// much smaller dimensions. The batched path therefore switches to
/// sparse at `min(opts.sparse_threshold, batch_sparse_threshold())`.
#[must_use]
pub fn batch_sparse_threshold() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("CML_BATCH_SPARSE_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_BATCH_SPARSE)
    })
}

/// Resolves the process-wide batch lane width, honouring the
/// `CML_BATCH_LANES` environment variable (read once; valid values are
/// 1, 2, 4 and 8 — anything else falls back to the default of 8).
#[must_use]
pub fn batch_lanes() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("CML_BATCH_LANES")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map_or(DEFAULT_LANES, |n| match n {
                1 | 2 | 4 | 8 => n,
                _ => DEFAULT_LANES,
            })
    })
}

/// Result of a batched operating-point solve: one solution vector per
/// variant, in input order, plus which variants needed the scalar
/// fallback ladder.
#[derive(Debug, Clone)]
pub struct BatchOpResult {
    solutions: Vec<Vec<f64>>,
    fallbacks: Vec<bool>,
    n_nodes: usize,
    branch_names: HashMap<String, usize>,
}

impl BatchOpResult {
    /// Number of variants solved.
    #[must_use]
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// Whether the batch was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }

    /// Number of unknown node voltages in each solution vector (the
    /// remaining entries are branch currents).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Full MNA solution vector of one variant.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    #[must_use]
    pub fn solution(&self, variant: usize) -> &[f64] {
        &self.solutions[variant]
    }

    /// Node voltage of one variant (0.0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    #[must_use]
    pub fn voltage(&self, variant: usize, node: NodeId) -> f64 {
        super::voltage_from(&self.solutions[variant], node)
    }

    /// Branch current through a named element of one variant.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] if the element has no branch
    /// unknown.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    pub fn current(&self, variant: usize, element: &str) -> Result<f64, SpiceError> {
        self.branch_names
            .get(element)
            .map(|&i| self.solutions[variant][i])
            .ok_or_else(|| SpiceError::NotFound {
                what: "branch current",
                name: element.to_string(),
            })
    }

    /// Whether this variant was evicted from the lockstep batch and
    /// re-solved through the scalar fallback ladder.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    #[must_use]
    pub fn used_fallback(&self, variant: usize) -> bool {
        self.fallbacks[variant]
    }

    /// How many variants fell back to the scalar path.
    #[must_use]
    pub fn fallback_count(&self) -> usize {
        self.fallbacks.iter().filter(|&&f| f).count()
    }
}

/// Result of a batched fixed-grid transient: the shared time grid and,
/// per variant, the full solution vector at every grid point.
#[derive(Debug, Clone)]
pub struct BatchTranResult {
    times: Vec<f64>,
    /// Per variant: `len(times)` solution vectors of `dim` unknowns,
    /// flattened sample-major (`waves[v][s * dim + i]`).
    waves: Vec<Vec<f64>>,
    dim: usize,
    n_nodes: usize,
    branch_names: HashMap<String, usize>,
    fallbacks: Vec<bool>,
}

impl BatchTranResult {
    /// The shared time grid (identical for every variant).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of variants.
    #[must_use]
    pub fn num_variants(&self) -> usize {
        self.waves.len()
    }

    /// Whether the batch was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// Voltage waveform of `node` for one variant (all zeros for
    /// ground), sampled on [`times`](Self::times).
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    #[must_use]
    pub fn voltage(&self, variant: usize, node: NodeId) -> Vec<f64> {
        match node.index() {
            Some(i) if i < self.n_nodes => self.waves[variant]
                .iter()
                .skip(i)
                .step_by(self.dim.max(1))
                .copied()
                .collect(),
            _ => vec![0.0; self.times.len()],
        }
    }

    /// Branch-current waveform through a named element of one variant.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] if the element has no branch
    /// unknown.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    pub fn current(&self, variant: usize, element: &str) -> Result<Vec<f64>, SpiceError> {
        let i = *self
            .branch_names
            .get(element)
            .ok_or_else(|| SpiceError::NotFound {
                what: "branch current",
                name: element.to_string(),
            })?;
        Ok(self.waves[variant]
            .iter()
            .skip(i)
            .step_by(self.dim.max(1))
            .copied()
            .collect())
    }

    /// Whether this variant needed the scalar fallback on any step.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is out of range.
    #[must_use]
    pub fn used_fallback(&self, variant: usize) -> bool {
        self.fallbacks[variant]
    }
}

/// Batched operating point over K same-topology variants with the
/// process-default lane width and no tracing.
///
/// # Errors
///
/// Fails when the variants disagree on topology, a lint precheck
/// rejects a variant, or a variant fails even the scalar fallback
/// ladder.
pub fn op_batch(ckts: &[Circuit], opts: &NewtonOptions) -> Result<BatchOpResult, SpiceError> {
    op_batch_traced(ckts, opts, &Telemetry::disabled())
}

/// [`op_batch`] with telemetry.
///
/// # Errors
///
/// See [`op_batch`].
pub fn op_batch_traced(
    ckts: &[Circuit],
    opts: &NewtonOptions,
    tel: &Telemetry,
) -> Result<BatchOpResult, SpiceError> {
    op_batch_with_lanes(ckts, opts, None, batch_lanes(), tel)
}

/// [`op_batch`] warm-started from a known nearby solution (typically
/// the nominal-parameter operating point): every lane begins its
/// lockstep Newton from `warm` instead of from zero, which is the main
/// throughput lever for Monte-Carlo sweeps of small perturbations.
///
/// # Errors
///
/// See [`op_batch`]; additionally fails when `warm` has the wrong
/// length for the variants' MNA system.
pub fn op_batch_warm(
    ckts: &[Circuit],
    opts: &NewtonOptions,
    warm: &[f64],
    tel: &Telemetry,
) -> Result<BatchOpResult, SpiceError> {
    op_batch_with_lanes(ckts, opts, Some(warm), batch_lanes(), tel)
}

/// Fully explicit batched operating point: caller-chosen lane width
/// (1, 2, 4 or 8 — other values round up to 8) and optional warm start.
///
/// # Errors
///
/// See [`op_batch_warm`].
pub fn op_batch_with_lanes(
    ckts: &[Circuit],
    opts: &NewtonOptions,
    warm: Option<&[f64]>,
    lanes: usize,
    tel: &Telemetry,
) -> Result<BatchOpResult, SpiceError> {
    let res = match lanes {
        1 => op_batch_generic::<f64>(ckts, opts, warm, tel),
        2 => op_batch_generic::<F64x2>(ckts, opts, warm, tel),
        4 => op_batch_generic::<F64x4>(ckts, opts, warm, tel),
        _ => op_batch_generic::<F64x8>(ckts, opts, warm, tel),
    };
    if let (Err(e), Some(ckt)) = (&res, ckts.first()) {
        // The first variant stands in for the batch: all variants share
        // one topology, and the netlist is what replay needs.
        crate::flight::record_failure(ckt, opts, "op_batch", e, tel);
    }
    res
}

/// Batched fixed-grid transient over K same-topology variants with the
/// process-default lane width and no tracing.
///
/// Every variant marches over the **same** fixed time grid (the nominal
/// `dt` everywhere, shortened only at `t_stop`); a lane whose lockstep
/// step fails is advanced to the same grid point by the scalar path
/// with internal step halving, so the shared grid is never disturbed.
/// [`TranConfig::adaptive`] is rejected — per-variant step control is
/// incompatible with lockstep marching.
///
/// # Errors
///
/// Fails on adaptive configs, topology mismatches, lint rejections, or
/// when a variant fails even the scalar fallback.
pub fn tran_batch(ckts: &[Circuit], config: &TranConfig) -> Result<BatchTranResult, SpiceError> {
    tran_batch_traced(ckts, config, &Telemetry::disabled())
}

/// [`tran_batch`] with telemetry.
///
/// # Errors
///
/// See [`tran_batch`].
pub fn tran_batch_traced(
    ckts: &[Circuit],
    config: &TranConfig,
    tel: &Telemetry,
) -> Result<BatchTranResult, SpiceError> {
    tran_batch_with_lanes(ckts, config, batch_lanes(), tel)
}

/// Fully explicit batched transient: caller-chosen lane width (1, 2, 4
/// or 8 — other values round up to 8).
///
/// # Errors
///
/// See [`tran_batch`].
pub fn tran_batch_with_lanes(
    ckts: &[Circuit],
    config: &TranConfig,
    lanes: usize,
    tel: &Telemetry,
) -> Result<BatchTranResult, SpiceError> {
    let res = match lanes {
        1 => tran_batch_generic::<f64>(ckts, config, tel),
        2 => tran_batch_generic::<F64x2>(ckts, config, tel),
        4 => tran_batch_generic::<F64x4>(ckts, config, tel),
        _ => tran_batch_generic::<F64x8>(ckts, config, tel),
    };
    if let (Err(e), Some(ckt)) = (&res, ckts.first()) {
        crate::flight::record_failure(ckt, &config.newton, "tran_batch", e, tel);
    }
    res
}

/// Verifies that every variant shares one MNA topology: same unknown
/// count and layout, same state arena, same branch-name map. Parameter
/// *values* are free to differ — that is the point of the batch.
fn check_matched(systems: &[System<'_>]) -> Result<(), SpiceError> {
    let s0 = &systems[0];
    for s in &systems[1..] {
        if s.dim() != s0.dim()
            || s.n_nodes() != s0.n_nodes()
            || s.state_len() != s0.state_len()
            || s.branch_names() != s0.branch_names()
        {
            return Err(SpiceError::InvalidConfig {
                message: "batch solve requires every variant to share one topology \
                          (same nodes, elements and branch layout); vary parameter \
                          values, not structure"
                    .into(),
            });
        }
    }
    Ok(())
}

/// Per-lane outcome of one lockstep Newton solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneOutcome {
    /// The lane converged; its entry in `xs` is the solution.
    Converged,
    /// The lane was quarantined (pivot death, divergence or iteration
    /// exhaustion); its entry in `xs` is garbage and the caller must
    /// re-solve it through the scalar path.
    Fallback,
}

/// Why one lockstep linear-solve iteration could not continue.
enum StepFail {
    /// Every still-active lane died; the survivors-so-far stand, the
    /// rest go to the scalar fallback.
    GroupDead,
    /// A stamp missed the cached sparsity pattern; the whole group goes
    /// scalar and the pattern is rebuilt for the next group.
    PatternMiss,
    /// A real error that fallback cannot paper over.
    Hard(SpiceError),
}

/// Reusable lane-packed buffers for lockstep Newton: one per batch
/// driver call, shared across lane groups so the sparse pattern, slot
/// caches and frozen pivot order amortize over *all* variants.
struct BatchKernel<T: LaneScalar> {
    dim: usize,
    n_nodes: usize,
    /// Dense lane-packed Jacobian, row-major `dim × dim` (allocated on
    /// first dense iteration).
    packed_m: Vec<T>,
    packed_rhs: Vec<T>,
    /// Raw lockstep Newton solution before damping.
    packed_x: Vec<T>,
    lane_lu: LaneLu<T>,
    /// Scalar assembly scratch: each lane stamps through the ordinary
    /// scalar machinery, then transposes into the lane-packed buffers.
    scratch_m: DenseMatrix,
    scratch_rhs: Vec<f64>,
    /// Sparse path: scalar pattern + slot caches (shared by all lanes —
    /// same topology, same slot sequence) and the lane-packed CSR
    /// matrix with its shared-pivot LU.
    sparse: Option<BatchSparse<T>>,
    sparse_disabled: bool,
    sparse_misses: u32,
}

struct BatchSparse<T: LaneScalar> {
    /// Scalar stamping workspace: pattern, slot caches, value buffer.
    sp: SparseState,
    /// Lane-packed values on the identical pattern.
    packed: CsrMatrix<T>,
    /// Shared-pivot LU; pivot order frozen after the first full factor
    /// and replayed (masked) for every later iteration and group.
    lu: SparseLu<T>,
    factored: bool,
}

impl<T: LaneScalar> BatchKernel<T> {
    fn new(dim: usize, n_nodes: usize) -> Self {
        BatchKernel {
            dim,
            n_nodes,
            packed_m: Vec::new(),
            packed_rhs: vec![T::ZERO; dim],
            packed_x: vec![T::ZERO; dim],
            lane_lu: LaneLu::default(),
            scratch_m: DenseMatrix::zeros(dim, dim),
            scratch_rhs: Vec::with_capacity(dim),
            sparse: None,
            sparse_disabled: false,
            sparse_misses: 0,
        }
    }

    /// One lockstep damped-Newton solve over up to `T::LANES` variants.
    /// `xs` holds the per-lane initial guesses in and the per-lane
    /// iterates out; converged lanes' entries are their solutions,
    /// fallback lanes' entries are garbage.
    #[allow(clippy::too_many_lines)]
    fn newton_lockstep(
        &mut self,
        systems: &[System<'_>],
        mode: StampMode,
        xs: &mut [Vec<f64>],
        states: &[Vec<f64>],
        opts: &NewtonOptions,
        tel: &Telemetry,
    ) -> Result<Vec<LaneOutcome>, SpiceError> {
        let k = systems.len();
        debug_assert!(k >= 1 && k <= T::LANES);
        debug_assert_eq!(k, xs.len());
        debug_assert_eq!(k, states.len());
        let dim = self.dim;
        let _t = tel.timer(Phase::BatchSolve);
        let mut outcome = vec![LaneOutcome::Fallback; k];
        let mut active: u64 = (1u64 << k) - 1;

        // Stale sparse state from a different stamp-mode family cannot
        // be reused (different patterns); rebuild.
        if let Some(bs) = &self.sparse {
            if bs.sp.kind != ModeKind::of(mode) {
                self.sparse = None;
            }
        }
        let threshold = opts.sparse_threshold.min(batch_sparse_threshold());
        let want_sparse = !self.sparse_disabled && dim > 0 && dim >= threshold;
        if want_sparse && self.sparse.is_none() {
            self.build_sparse_state(&systems[0], &xs[0], &states[0], mode, opts, tel);
        }
        let run_sparse = want_sparse && self.sparse.is_some();

        for _iter in 0..opts.max_iter {
            if active == 0 {
                break;
            }
            tel.count(|c| {
                c.batch_solves += 1;
                c.batch_lane_slots += T::LANES as u64;
                c.batch_lanes_active += u64::from(active.count_ones());
            });
            let step = if run_sparse {
                self.sparse_iteration(systems, mode, xs, states, opts, active, tel)
            } else {
                self.dense_iteration(systems, mode, xs, states, opts, active, tel)
            };
            let newly_dead = match step {
                Ok(d) => d,
                Err(StepFail::GroupDead) => return Ok(outcome),
                Err(StepFail::PatternMiss) => {
                    // Mirror the scalar policy: one rebuild allowance,
                    // then permanently dense. Either way this group has
                    // a half-stamped matrix — send it down the ladder.
                    self.sparse = None;
                    self.sparse_misses += 1;
                    tel.count(|c| c.pattern_rebuilds += 1);
                    if self.sparse_misses >= 2 {
                        self.sparse_disabled = true;
                        tel.count(|c| c.dense_fallbacks += 1);
                        tel.degradation(
                            "batch-sparse-dense-fallback",
                            "batched sparse solve pattern missed twice; this batch \
                             kernel permanently falls back to the dense path",
                        );
                    }
                    return Ok(outcome);
                }
                Err(StepFail::Hard(e)) => return Err(e),
            };
            // Per-lane convergence check + damping, the exact scalar
            // `newton_attempt` update replayed lane-wise.
            for l in 0..k {
                let bit = 1u64 << l;
                if active & bit == 0 {
                    continue;
                }
                if newly_dead & bit != 0 {
                    active &= !bit;
                    continue;
                }
                let x = &mut xs[l];
                let mut converged = true;
                let mut undamped = true;
                for (i, xi) in x.iter_mut().take(dim).enumerate() {
                    let xn = self.packed_x[i].lane(l);
                    let delta = xn - *xi;
                    let (atol, clamp) = if i < self.n_nodes {
                        (opts.vntol, opts.max_step)
                    } else {
                        (opts.abstol, f64::INFINITY)
                    };
                    let tol = atol + opts.reltol * xi.abs().max(xn.abs());
                    if delta.abs() > tol {
                        converged = false;
                    }
                    let next = *xi + delta.clamp(-clamp, clamp);
                    if (next - xn).abs() >= 1e-15 {
                        undamped = false;
                    }
                    *xi = next;
                }
                if !x.iter().all(|v| v.is_finite()) {
                    active &= !bit;
                } else if converged && undamped {
                    outcome[l] = LaneOutcome::Converged;
                    active &= !bit;
                }
            }
        }
        // Lanes still active exhausted the iteration budget: fallback
        // (their `outcome` entries already say so).
        Ok(outcome)
    }

    /// Discovers the sparsity pattern from lane 0 (served from the
    /// topology cache when enabled, so a whole batch — and every batch
    /// after it — derives the symbolic analysis at most once) and
    /// builds the lane-packed CSR mirror. On failure the kernel stays
    /// dense.
    #[allow(clippy::too_many_arguments)]
    fn build_sparse_state(
        &mut self,
        sys: &System<'_>,
        x0: &[f64],
        state: &[f64],
        mode: StampMode,
        opts: &NewtonOptions,
        tel: &Telemetry,
    ) {
        let _t = tel.timer(Phase::PatternDiscovery);
        let disable = |kernel: &mut Self, tel: &Telemetry| {
            kernel.sparse_disabled = true;
            tel.count(|c| c.dense_fallbacks += 1);
            tel.degradation(
                "batch-sparse-pattern-unbuildable",
                "batched sparse solve requested but the Jacobian pattern could \
                 not be built; this batch kernel stays on the dense path",
            );
        };
        let built = if opts.cache_enabled() {
            cache::sparse_state_cached(sys, x0, state, mode, tel)
        } else {
            sys.build_sparse(x0, state, mode)
        };
        let Some(sp) = built else {
            disable(self, tel);
            return;
        };
        // Rebuild the position list from lane 0's CSR; `from_pattern`
        // sorts and dedups, so the packed matrix gets the identical
        // slot layout and scalar value-slot indices transfer directly.
        let dim = sp.mat.rows();
        let mut positions = Vec::with_capacity(sp.mat.vals().len());
        for r in 0..dim {
            for i in sp.mat.row_ptr()[r]..sp.mat.row_ptr()[r + 1] {
                positions.push((r, sp.mat.col_idx()[i]));
            }
        }
        let Ok(packed) = CsrMatrix::<T>::from_pattern(dim, dim, &positions) else {
            disable(self, tel);
            return;
        };
        let Ok(lu) = SparseLu::new(&packed) else {
            disable(self, tel);
            return;
        };
        tel.count(|c| c.pattern_builds += 1);
        self.sparse = Some(BatchSparse {
            sp,
            packed,
            lu,
            factored: false,
        });
    }

    /// One dense lockstep iteration: per-lane scalar assembly, lane
    /// packing, masked shared-pivot factorization and substitution.
    /// Returns the lanes that died during factorization.
    #[allow(clippy::too_many_arguments)]
    fn dense_iteration(
        &mut self,
        systems: &[System<'_>],
        mode: StampMode,
        xs: &[Vec<f64>],
        states: &[Vec<f64>],
        opts: &NewtonOptions,
        active: u64,
        tel: &Telemetry,
    ) -> Result<u64, StepFail> {
        let dim = self.dim;
        if self.packed_m.len() != dim * dim {
            self.packed_m.resize(dim * dim, T::ZERO);
        }
        for (l, sys) in systems.iter().enumerate() {
            if active & (1 << l) == 0 {
                continue;
            }
            sys.assemble(
                &xs[l],
                &states[l],
                mode,
                opts.gmin,
                &mut self.scratch_m,
                &mut self.scratch_rhs,
            );
            for (dst, &v) in self.packed_m.iter_mut().zip(self.scratch_m.as_slice()) {
                dst.set_lane(l, v);
            }
            for (dst, &v) in self.packed_rhs.iter_mut().zip(&self.scratch_rhs) {
                dst.set_lane(l, v);
            }
        }
        // Non-active lanes (stale, unused, or garbage) are outside
        // `live`: the masked kernel heals their pivots and never
        // reports them.
        let newly_dead = match self.lane_lu.refactor_masked(&self.packed_m, dim, active) {
            Ok(d) => d,
            Err(_) => return Err(StepFail::GroupDead),
        };
        tel.count(|c| c.full_factorizations += 1);
        if self
            .lane_lu
            .solve_into(&self.packed_rhs, &mut self.packed_x)
            .is_err()
        {
            return Err(StepFail::GroupDead);
        }
        tel.count(|c| c.dense_solves += 1);
        Ok(newly_dead)
    }

    /// One sparse lockstep iteration: per-lane slot-cached assembly
    /// into the scalar CSR workspace, lane packing of the value array,
    /// masked frozen-pivot replay and substitution.
    #[allow(clippy::too_many_arguments)]
    fn sparse_iteration(
        &mut self,
        systems: &[System<'_>],
        mode: StampMode,
        xs: &[Vec<f64>],
        states: &[Vec<f64>],
        opts: &NewtonOptions,
        active: u64,
        tel: &Telemetry,
    ) -> Result<u64, StepFail> {
        let k = systems.len();
        let BatchKernel {
            sparse,
            scratch_rhs,
            packed_rhs,
            packed_x,
            ..
        } = self;
        let Some(bs) = sparse.as_mut() else {
            return Err(StepFail::Hard(SpiceError::Internal {
                message: "batched sparse iteration without sparse state".to_string(),
            }));
        };
        // Before the first full factorization the unused lanes (k..N)
        // still hold zeros, which would wreck the shared pivot metric
        // (min over *all* lanes). Mirror lane 0 into them once; after
        // that every replay is masked and ignores non-live lanes.
        let mirror_tail = !bs.factored && k < T::LANES;
        for (l, sys) in systems.iter().enumerate() {
            if active & (1 << l) == 0 {
                continue;
            }
            sys.assemble_sparse_full(&xs[l], &states[l], mode, opts.gmin, &mut bs.sp, scratch_rhs)
                .map_err(|e| match e {
                    AttemptError::PatternMiss => StepFail::PatternMiss,
                    AttemptError::Spice(err) => StepFail::Hard(err),
                })?;
            let mirror = mirror_tail && l == 0;
            for (dst, &v) in bs.packed.vals_mut().iter_mut().zip(bs.sp.mat.vals()) {
                dst.set_lane(l, v);
                if mirror {
                    for j in k..T::LANES {
                        dst.set_lane(j, v);
                    }
                }
            }
            for (dst, &v) in packed_rhs.iter_mut().zip(scratch_rhs.iter()) {
                dst.set_lane(l, v);
            }
        }
        let newly_dead = if bs.factored {
            let res = {
                let _t = tel.timer_fine(Phase::Refactor);
                bs.lu.refactor_frozen_masked(&bs.packed, active)
            };
            match res {
                Ok(d) => {
                    tel.count(|c| c.refactorizations += 1);
                    d
                }
                Err(_) => return Err(StepFail::GroupDead),
            }
        } else {
            let res = {
                let _t = tel.timer_fine(Phase::Refactor);
                bs.lu.refactor(&bs.packed)
            };
            match res {
                Ok(oc) => {
                    bs.factored = true;
                    super::note_refactor(tel, oc, bs.lu.last_dead_pivot());
                    0
                }
                Err(_) => return Err(StepFail::GroupDead),
            }
        };
        {
            let _t = tel.timer_fine(Phase::BackSubstitute);
            if bs.lu.solve_into(packed_rhs, packed_x).is_err() {
                return Err(StepFail::GroupDead);
            }
        }
        tel.count(|c| c.sparse_solves += 1);
        Ok(newly_dead)
    }
}

fn op_batch_generic<T: LaneScalar>(
    ckts: &[Circuit],
    opts: &NewtonOptions,
    warm: Option<&[f64]>,
    tel: &Telemetry,
) -> Result<BatchOpResult, SpiceError> {
    let _span = tel.span("analysis", "batch_op");
    // One lint pass covers the whole batch: every variant shares the
    // first one's topology (enforced below by `check_matched`, a hard
    // error), and the lint passes are connectivity checks — re-running
    // them per parameter set would dominate small-circuit sweeps.
    if let Some(first) = ckts.first() {
        let _t = tel.timer(Phase::LintPrecheck);
        cache::lint_precheck_cached(first, opts.cache_enabled(), tel)?;
        tel.count(|c| c.lint_prechecks += 1);
    }
    if ckts.is_empty() {
        return Ok(BatchOpResult {
            solutions: Vec::new(),
            fallbacks: Vec::new(),
            n_nodes: 0,
            branch_names: HashMap::new(),
        });
    }
    let systems: Vec<System<'_>> = ckts.iter().map(System::new).collect();
    check_matched(&systems)?;
    let dim = systems[0].dim();
    if let Some(w) = warm {
        if w.len() != dim {
            return Err(SpiceError::InvalidConfig {
                message: format!(
                    "warm start has {} entries for a {dim}-unknown system",
                    w.len()
                ),
            });
        }
    }
    let mut kernel = BatchKernel::<T>::new(dim, systems[0].n_nodes());
    let mut solutions: Vec<Vec<f64>> = Vec::with_capacity(ckts.len());
    let mut fallbacks = Vec::with_capacity(ckts.len());
    let empty_states: Vec<Vec<f64>> = vec![Vec::new(); T::LANES];
    let mut xs: Vec<Vec<f64>> = Vec::new();
    for group in systems.chunks(T::LANES) {
        let k = group.len();
        xs.clear();
        xs.extend((0..k).map(|_| warm.map_or_else(|| vec![0.0; dim], <[f64]>::to_vec)));
        let outcomes = kernel.newton_lockstep(
            group,
            StampMode::dc(),
            &mut xs,
            &empty_states[..k],
            opts,
            tel,
        )?;
        for (l, out) in outcomes.into_iter().enumerate() {
            match out {
                LaneOutcome::Converged => {
                    solutions.push(std::mem::take(&mut xs[l]));
                    fallbacks.push(false);
                }
                LaneOutcome::Fallback => {
                    tel.count(|c| c.lane_fallbacks += 1);
                    solutions.push(solve_system(&group[l], opts, None, tel)?);
                    fallbacks.push(true);
                }
            }
        }
    }
    Ok(BatchOpResult {
        solutions,
        fallbacks,
        n_nodes: systems[0].n_nodes(),
        branch_names: systems[0].branch_names().clone(),
    })
}

#[allow(clippy::too_many_lines)]
fn tran_batch_generic<T: LaneScalar>(
    ckts: &[Circuit],
    config: &TranConfig,
    tel: &Telemetry,
) -> Result<BatchTranResult, SpiceError> {
    let _span = tel.span("analysis", "batch_tran");
    if config.adaptive {
        return Err(SpiceError::InvalidConfig {
            message: "batch transient marches every variant over one shared fixed \
                      grid; adaptive stepping is per-variant — run those variants \
                      individually"
                .into(),
        });
    }
    if !(config.t_stop > 0.0 && config.dt > 0.0) {
        return Err(SpiceError::InvalidConfig {
            message: "t_stop and dt must be positive".into(),
        });
    }
    // One lint pass covers the whole batch: every variant shares the
    // first one's topology (enforced below by `check_matched`, a hard
    // error), and the lint passes are connectivity checks — re-running
    // them per parameter set would dominate small-circuit sweeps.
    if let Some(first) = ckts.first() {
        let _t = tel.timer(Phase::LintPrecheck);
        cache::lint_precheck_cached(first, config.newton.cache_enabled(), tel)?;
        tel.count(|c| c.lint_prechecks += 1);
    }
    if ckts.is_empty() {
        return Ok(BatchTranResult {
            times: Vec::new(),
            waves: Vec::new(),
            dim: 0,
            n_nodes: 0,
            branch_names: HashMap::new(),
            fallbacks: Vec::new(),
        });
    }
    let systems: Vec<System<'_>> = ckts.iter().map(System::new).collect();
    check_matched(&systems)?;
    let dim = systems[0].dim();
    let n_nodes = systems[0].n_nodes();

    // The shared grid, computed once: nominal dt everywhere, last step
    // shortened to land exactly on t_stop. The stepping loop below
    // reproduces this sequence arithmetic-identically.
    let mut times = vec![0.0];
    {
        let mut t = 0.0;
        while t < config.t_stop - 1e-18 {
            t += config.dt.min(config.t_stop - t);
            times.push(t);
        }
    }

    let n = ckts.len();
    let mut waves: Vec<Vec<f64>> = vec![Vec::with_capacity(times.len() * dim); n];
    let mut fallbacks = vec![false; n];
    let mut kernel = BatchKernel::<T>::new(dim, n_nodes);

    for (gi, group) in systems.chunks(T::LANES).enumerate() {
        let base = gi * T::LANES;
        let k = group.len();

        // Initial condition per lane: DC solve with sources at t = 0,
        // through the full scalar homotopy ladder (one solve per lane
        // against thousands of lockstep steps — not worth batching).
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut states: Vec<Vec<f64>> = Vec::with_capacity(k);
        {
            let _init = tel.span("phase", "batch_tran_init");
            for (l, sys) in group.iter().enumerate() {
                let x0 = solve_system(sys, &config.newton, Some(0.0), tel)?;
                states.push(sys.init_state(&x0));
                waves[base + l].extend_from_slice(&x0);
                xs.push(x0);
            }
        }
        let mut state_next: Vec<Vec<f64>> = vec![vec![0.0; group[0].state_len()]; k];
        let mut x_backup: Vec<Vec<f64>> = xs.clone();
        let mut ws_fallback: Vec<Option<NewtonWorkspace>> = (0..k).map(|_| None).collect();

        let _stepping = tel.span("phase", "batch_tran_stepping");
        let mut t = 0.0;
        while t < config.t_stop - 1e-18 {
            let dt = config.dt.min(config.t_stop - t);
            let mode = StampMode::Tran {
                time: t + dt,
                dt,
                method: config.method,
            };
            for (backup, x) in x_backup.iter_mut().zip(&xs) {
                backup.copy_from_slice(x);
            }
            let outcomes =
                kernel.newton_lockstep(group, mode, &mut xs, &states, &config.newton, tel)?;
            for l in 0..k {
                match outcomes[l] {
                    LaneOutcome::Converged => {
                        group[l].update_state(&xs[l], &states[l], mode, &mut state_next[l]);
                        std::mem::swap(&mut states[l], &mut state_next[l]);
                    }
                    LaneOutcome::Fallback => {
                        tel.count(|c| c.lane_fallbacks += 1);
                        fallbacks[base + l] = true;
                        xs[l].copy_from_slice(&x_backup[l]);
                        let ws = ws_fallback[l].get_or_insert_with(NewtonWorkspace::new);
                        scalar_advance(
                            &group[l],
                            config,
                            &mut xs[l],
                            &mut states[l],
                            &mut state_next[l],
                            t,
                            t + dt,
                            ws,
                            tel,
                        )?;
                    }
                }
                waves[base + l].extend_from_slice(&xs[l]);
            }
            t += dt;
            tel.count(|c| {
                c.tran_steps += k as u64;
                c.record_dt(dt, config.dt);
            });
        }
    }
    Ok(BatchTranResult {
        times,
        waves,
        dim,
        n_nodes,
        branch_names: systems[0].branch_names().clone(),
        fallbacks,
    })
}

/// Advances one evicted lane from `t_start` to exactly `t_target`
/// through the scalar Newton path, halving internally on failure (the
/// substeps are never emitted — the shared batch grid is preserved).
#[allow(clippy::too_many_arguments)]
fn scalar_advance(
    sys: &System<'_>,
    config: &TranConfig,
    x: &mut Vec<f64>,
    state: &mut Vec<f64>,
    state_next: &mut Vec<f64>,
    t_start: f64,
    t_target: f64,
    ws: &mut NewtonWorkspace,
    tel: &Telemetry,
) -> Result<(), SpiceError> {
    let mut t = t_start;
    while t < t_target - 1e-18 {
        let mut dt = t_target - t;
        let mut halvings = 0;
        loop {
            let mode = StampMode::Tran {
                time: t + dt,
                dt,
                method: config.method,
            };
            match sys.newton_with(
                mode,
                x,
                state,
                &config.newton,
                "tran",
                ws,
                config.reuse_factorization,
                tel,
            ) {
                Ok(x_new) => {
                    sys.update_state(&x_new, state, mode, state_next);
                    std::mem::swap(state, state_next);
                    *x = x_new;
                    t += dt;
                    break;
                }
                Err(e) => {
                    halvings += 1;
                    if halvings > config.max_halvings {
                        return Err(e);
                    }
                    tel.count(|c| c.newton_retries += 1);
                    tel.event(|| EventKind::NewtonRetry { t, dt });
                    dt /= 2.0;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{op, tran};
    use crate::prelude::*;

    fn divider(r_top: f64, v: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, v));
        ckt.add(Resistor::new("R1", vin, out, r_top));
        ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1e3));
        ckt
    }

    fn nmos_params(vth0: f64) -> MosParams {
        MosParams {
            mos_type: MosType::Nmos,
            w: 10e-6,
            l: 0.18e-6,
            vth0,
            kp: 170e-6,
            lambda: 0.1,
            cox: 8.4e-3,
            cov: 3.0e-10,
            cj: 1.0e-3,
            ldiff: 0.5e-6,
        }
    }

    /// NMOS differential pair with resistor loads and a tail current
    /// source — the transistor-level Monte-Carlo workhorse.
    fn diff_pair(dvth: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let outp = ckt.node("outp");
        let outn = ckt.node("outn");
        let tail = ckt.node("tail");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
        ckt.add(Vsource::dc("VBP", inp, Circuit::GROUND, 0.9));
        ckt.add(Vsource::dc("VBN", inn, Circuit::GROUND, 0.9));
        ckt.add(Resistor::new("RL1", vdd, outp, 500.0));
        ckt.add(Resistor::new("RL2", vdd, outn, 500.0));
        ckt.add(Mosfet::new(
            "M1",
            outp,
            inp,
            tail,
            Circuit::GROUND,
            nmos_params(0.45 + dvth),
        ));
        ckt.add(Mosfet::new(
            "M2",
            outn,
            inn,
            tail,
            Circuit::GROUND,
            nmos_params(0.45 - dvth),
        ));
        ckt.add(Isource::dc("IT", tail, Circuit::GROUND, 2e-3));
        ckt
    }

    #[test]
    fn linear_variants_match_scalar_every_lane_width() {
        let ckts: Vec<Circuit> = (0..7)
            .map(|i| divider(1e3 + 250.0 * i as f64, 3.0))
            .collect();
        let opts = NewtonOptions::default();
        let scalar: Vec<_> = ckts.iter().map(|c| op::solve(c).unwrap()).collect();
        for lanes in [1usize, 2, 4, 8] {
            let batch =
                op_batch_with_lanes(&ckts, &opts, None, lanes, &Telemetry::disabled()).unwrap();
            assert_eq!(batch.len(), 7);
            assert_eq!(batch.fallback_count(), 0);
            for (v, s) in (0..7).zip(&scalar) {
                for (a, b) in batch.solution(v).iter().zip(s.solution()) {
                    assert!((a - b).abs() < 1e-12, "lanes={lanes} variant={v}");
                }
            }
        }
    }

    #[test]
    fn mosfet_variants_match_scalar() {
        let ckts: Vec<Circuit> = [-10e-3, -3e-3, 0.0, 2e-3, 7e-3]
            .iter()
            .map(|&d| diff_pair(d))
            .collect();
        let opts = NewtonOptions::default();
        let batch = op_batch(&ckts, &opts).unwrap();
        let outp = ckts[0].find_node("outp").unwrap();
        let outn = ckts[0].find_node("outn").unwrap();
        for (v, ckt) in ckts.iter().enumerate() {
            let s = op::solve(ckt).unwrap();
            let off_b = batch.voltage(v, outp) - batch.voltage(v, outn);
            let off_s = s.voltage(outp) - s.voltage(outn);
            assert!(
                (off_b - off_s).abs() < 1e-9,
                "variant {v}: batched {off_b} vs scalar {off_s}"
            );
        }
        // A symmetric pair has zero offset; a skewed pair does not.
        assert!((batch.voltage(2, outp) - batch.voltage(2, outn)).abs() < 1e-9);
        assert!((batch.voltage(0, outp) - batch.voltage(0, outn)).abs() > 1e-3);
    }

    #[test]
    fn warm_start_matches_cold() {
        let ckts: Vec<Circuit> = [0.0, 1e-3, -2e-3].iter().map(|&d| diff_pair(d)).collect();
        let opts = NewtonOptions::default();
        let nominal = op::solve(&ckts[0]).unwrap();
        let cold = op_batch(&ckts, &opts).unwrap();
        let warm = op_batch_warm(&ckts, &opts, nominal.solution(), &Telemetry::disabled()).unwrap();
        for v in 0..3 {
            for (a, b) in warm.solution(v).iter().zip(cold.solution(v)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// A 100 V divider needs ~200 damped iterations (0.5 V clamp) —
    /// far past `max_iter` — so plain lockstep Newton exhausts its
    /// budget and the lane must fall back to the scalar homotopy
    /// ladder, which cracks it by source stepping. The small-source
    /// lanes converge in lockstep and must be untouched.
    #[test]
    fn lane_falls_back_to_scalar_ladder() {
        let ckts = vec![
            divider(1e3, 3.0),
            divider(2e3, 100.0),
            divider(3e3, 1.5),
            divider(1e3, 2.0),
        ];
        let opts = NewtonOptions::default();
        let tel = Telemetry::enabled();
        let batch = op_batch_with_lanes(&ckts, &opts, None, 4, &tel).unwrap();
        assert!(batch.used_fallback(1));
        assert!(!batch.used_fallback(0));
        assert!(!batch.used_fallback(2));
        assert!(!batch.used_fallback(3));
        let report = tel.report();
        assert_eq!(report.counters.lane_fallbacks, 1);
        assert!(report.counters.batch_solves > 0);
        for (v, expect) in [(0, 1.5), (1, 100.0 / 3.0), (2, 0.375), (3, 1.0)] {
            let out = ckts[v].find_node("out").unwrap();
            // Loose analytic check (gmin conditioning shifts the exact
            // value by ~1e-8 at 100 V) plus a tight check against the
            // scalar solver, which shares the same gmin.
            assert!((batch.voltage(v, out) - expect).abs() < 1e-6, "variant {v}");
            let s = op::solve(&ckts[v]).unwrap();
            assert!(
                (batch.voltage(v, out) - s.voltage(out)).abs() < 1e-12,
                "variant {v}"
            );
        }
    }

    #[test]
    fn sparse_path_matches_scalar() {
        // Force the sparse path on a resistor ladder big enough to be
        // non-trivial, with per-variant resistance perturbations.
        let build = |scale: f64| {
            let mut ckt = Circuit::new();
            let mut prev = ckt.node("n0");
            ckt.add(Vsource::dc("V1", prev, Circuit::GROUND, 1.0));
            for i in 1..=12 {
                let next = ckt.node(&format!("n{i}"));
                ckt.add(Resistor::new(
                    &format!("Rs{i}"),
                    prev,
                    next,
                    100.0 * scale + i as f64,
                ));
                ckt.add(Resistor::new(&format!("Rg{i}"), next, Circuit::GROUND, 1e3));
                prev = next;
            }
            ckt
        };
        let ckts: Vec<Circuit> = (0..5).map(|i| build(1.0 + 0.05 * i as f64)).collect();
        let opts = NewtonOptions {
            sparse_threshold: 1,
            ..NewtonOptions::default()
        };
        let tel = Telemetry::enabled();
        let batch = op_batch_with_lanes(&ckts, &opts, None, 4, &tel).unwrap();
        assert_eq!(batch.fallback_count(), 0);
        let report = tel.report();
        assert!(report.counters.sparse_solves > 0, "sparse path not taken");
        for (v, ckt) in ckts.iter().enumerate() {
            let s = op::solve_with(ckt, &opts, None).unwrap();
            for (a, b) in batch.solution(v).iter().zip(s.solution()) {
                assert!((a - b).abs() < 1e-9, "variant {v}");
            }
        }
    }

    #[test]
    fn tran_rc_matches_scalar() {
        let build = |r: f64| {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(Vsource::new(
                "V1",
                inp,
                Circuit::GROUND,
                Waveform::step(0.0, 1.0, 1e-9, 1e-11),
            ));
            ckt.add(Resistor::new("R1", inp, out, r));
            ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12));
            ckt
        };
        let ckts: Vec<Circuit> = [800.0, 1e3, 1.3e3, 2e3, 5e3]
            .iter()
            .map(|&r| build(r))
            .collect();
        let config = TranConfig::new(10e-9, 0.05e-9);
        let batch = tran_batch_with_lanes(&ckts, &config, 4, &Telemetry::disabled()).unwrap();
        assert_eq!(batch.num_variants(), 5);
        let out = ckts[0].find_node("out").unwrap();
        for (v, ckt) in ckts.iter().enumerate() {
            let scalar = tran::run(ckt, &config).unwrap();
            assert_eq!(scalar.times().len(), batch.times().len());
            let vb = batch.voltage(v, out);
            let vs = scalar.voltage(out);
            for (a, b) in vb.iter().zip(&vs) {
                assert!((a - b).abs() < 1e-9, "variant {v}");
            }
        }
    }

    #[test]
    fn mismatched_topology_rejected() {
        let mut other = Circuit::new();
        let n1 = other.node("n1");
        other.add(Isource::dc("I1", Circuit::GROUND, n1, 1e-3));
        other.add(Resistor::new("R1", n1, Circuit::GROUND, 1e3));
        let ckts = vec![divider(1e3, 3.0), other];
        let err = op_batch(&ckts, &NewtonOptions::default()).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidConfig { .. }));
    }

    #[test]
    fn adaptive_config_rejected() {
        let ckts = vec![divider(1e3, 3.0)];
        let config = TranConfig::new(1e-9, 1e-12).adaptive();
        let err = tran_batch(&ckts, &config).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = op_batch(&[], &NewtonOptions::default()).unwrap();
        assert!(batch.is_empty());
        let tran = tran_batch(&[], &TranConfig::new(1e-9, 1e-12)).unwrap();
        assert!(tran.is_empty());
    }
}
