//! Compressed-to-disk waveform spill sink with checkpoint/resume.
//!
//! [`SpillSink`] persists a streamed transient to a single file at
//! O(chunk) memory: every chunk is delta-encoded (XOR of consecutive
//! `f64` bit patterns per column — smooth waveforms share exponents and
//! high mantissa bits, so the XOR is mostly leading zeros) and packed
//! with LEB128 varints. After each chunk a tiny sidecar checkpoint
//! (`<path>.ckpt`) records how many samples are durable and the codec
//! state, so an interrupted run can [`SpillSink::resume`]: the transient
//! is re-run (solver-state checkpointing is future work — see DESIGN.md
//! §12), the sink skips everything already persisted, byte-identically,
//! and appends from the first new sample.
//!
//! [`SpillReader`] decodes a finished (or checkpointed) spill file back
//! into dense vectors for verification and offline analysis.

use super::sink::{TranMeta, WaveChunk, WaveSink};
use crate::SpiceError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const DATA_MAGIC: &[u8; 4] = b"CMW1";
const CKPT_MAGIC: &[u8; 4] = b"CMC1";

fn io_err(context: &'static str, e: &std::io::Error) -> SpiceError {
    SpiceError::io(context, e)
}

/// Appends `v` as an LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `buf[*pos..]`.
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, SpiceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| SpiceError::Io {
            context: "spill decode",
            message: "truncated varint".into(),
        })?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(SpiceError::Io {
                context: "spill decode",
                message: "varint overflow".into(),
            });
        }
    }
}

/// Fixed-width little-endian read at `at` (callers bounds-check the
/// enclosing region first, so the copy itself cannot fail).
fn le_bytes<const N: usize>(buf: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[at..at + N]);
    out
}

/// Per-stream delta codec: XOR against the previous sample's bits.
#[derive(Debug, Clone, Copy, Default)]
struct DeltaCodec {
    prev_bits: u64,
}

impl DeltaCodec {
    fn encode(&mut self, v: f64, out: &mut Vec<u8>) {
        let bits = v.to_bits();
        put_varint(out, bits ^ self.prev_bits);
        self.prev_bits = bits;
    }

    fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Result<f64, SpiceError> {
        let bits = get_varint(buf, pos)? ^ self.prev_bits;
        self.prev_bits = bits;
        Ok(f64::from_bits(bits))
    }
}

/// Streaming compressed spill-to-disk sink. See the module docs.
pub struct SpillSink {
    path: PathBuf,
    file: Option<BufWriter<File>>,
    /// One codec per stream: times first, then each column.
    codecs: Vec<DeltaCodec>,
    /// Samples durably persisted (checkpointed).
    persisted: u64,
    /// Payload bytes after the header, matching `persisted`.
    payload_bytes: u64,
    /// Resume mode: skip already-persisted samples instead of writing
    /// a fresh header.
    resuming: bool,
    scratch: Vec<u8>,
}

impl SpillSink {
    /// A sink that will create (truncate) `path` and `path.ckpt`.
    #[must_use]
    pub fn create(path: impl Into<PathBuf>) -> Self {
        SpillSink {
            path: path.into(),
            file: None,
            codecs: Vec::new(),
            persisted: 0,
            payload_bytes: 0,
            resuming: false,
            scratch: Vec::new(),
        }
    }

    /// A sink that resumes an interrupted spill from its checkpoint:
    /// the data file is truncated to the last durable byte, the codec
    /// state restored, and chunks below the persisted sample count are
    /// skipped when the run is replayed.
    ///
    /// # Errors
    ///
    /// [`SpiceError::Io`] if the checkpoint is missing or corrupt.
    pub fn resume(path: impl Into<PathBuf>) -> Result<Self, SpiceError> {
        let path = path.into();
        let ckpt = read_checkpoint(&ckpt_path(&path))?;
        Ok(SpillSink {
            path,
            file: None,
            codecs: ckpt
                .prev_bits
                .iter()
                .map(|&prev_bits| DeltaCodec { prev_bits })
                .collect(),
            persisted: ckpt.samples,
            payload_bytes: ckpt.payload_bytes,
            resuming: true,
            scratch: Vec::new(),
        })
    }

    /// Samples already durable from a previous run (0 for a fresh sink).
    #[must_use]
    pub fn persisted_samples(&self) -> u64 {
        self.persisted
    }

    /// The data-file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_checkpoint(&self) -> Result<(), SpiceError> {
        let mut buf = Vec::with_capacity(4 + 8 + 8 + 4 + self.codecs.len() * 8);
        buf.extend_from_slice(CKPT_MAGIC);
        buf.extend_from_slice(&self.persisted.to_le_bytes());
        buf.extend_from_slice(&self.payload_bytes.to_le_bytes());
        buf.extend_from_slice(&(self.codecs.len() as u32).to_le_bytes());
        for c in &self.codecs {
            buf.extend_from_slice(&c.prev_bits.to_le_bytes());
        }
        // Write-then-rename so a crash mid-checkpoint leaves the old
        // checkpoint intact rather than a torn one.
        let tmp = self.path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, &buf).map_err(|e| io_err("checkpoint write", &e))?;
        std::fs::rename(&tmp, ckpt_path(&self.path)).map_err(|e| io_err("checkpoint rename", &e))
    }
}

fn ckpt_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".ckpt");
    PathBuf::from(os)
}

struct Checkpoint {
    samples: u64,
    payload_bytes: u64,
    prev_bits: Vec<u64>,
}

fn read_checkpoint(path: &Path) -> Result<Checkpoint, SpiceError> {
    let buf = std::fs::read(path).map_err(|e| io_err("checkpoint read", &e))?;
    let fail = |msg: &str| SpiceError::Io {
        context: "checkpoint read",
        message: msg.into(),
    };
    if buf.len() < 24 || &buf[0..4] != CKPT_MAGIC {
        return Err(fail("bad checkpoint header"));
    }
    let samples = u64::from_le_bytes(le_bytes(&buf, 4));
    let payload_bytes = u64::from_le_bytes(le_bytes(&buf, 12));
    let n = u32::from_le_bytes(le_bytes(&buf, 20)) as usize;
    if buf.len() != 24 + n * 8 {
        return Err(fail("bad checkpoint length"));
    }
    let prev_bits = (0..n)
        .map(|i| u64::from_le_bytes(le_bytes(&buf, 24 + i * 8)))
        .collect();
    Ok(Checkpoint {
        samples,
        payload_bytes,
        prev_bits,
    })
}

fn header_bytes(meta: &TranMeta) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(DATA_MAGIC);
    buf.extend_from_slice(&(meta.n_cols() as u32).to_le_bytes());
    for name in &meta.col_names {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    buf.extend_from_slice(&meta.t_stop.to_le_bytes());
    buf.extend_from_slice(&meta.dt.to_le_bytes());
    buf
}

impl WaveSink for SpillSink {
    fn begin(&mut self, meta: &TranMeta) -> Result<(), SpiceError> {
        let n_streams = meta.n_cols() + 1; // times + columns
        if self.resuming {
            if self.codecs.len() != n_streams {
                return Err(SpiceError::Io {
                    context: "spill resume",
                    message: format!(
                        "checkpoint has {} streams but the run probes {}",
                        self.codecs.len(),
                        n_streams
                    ),
                });
            }
            // Drop any bytes past the last durable checkpoint.
            let header_len = header_bytes(meta).len() as u64;
            let f = OpenOptions::new()
                .write(true)
                .open(&self.path)
                .map_err(|e| io_err("spill reopen", &e))?;
            f.set_len(header_len + self.payload_bytes)
                .map_err(|e| io_err("spill truncate", &e))?;
            let mut w = BufWriter::new(f);
            w.seek_end().map_err(|e| io_err("spill seek", &e))?;
            self.file = Some(w);
        } else {
            self.codecs = vec![DeltaCodec::default(); n_streams];
            let f = File::create(&self.path).map_err(|e| io_err("spill create", &e))?;
            let mut w = BufWriter::new(f);
            w.write_all(&header_bytes(meta))
                .map_err(|e| io_err("spill header write", &e))?;
            self.file = Some(w);
            self.write_checkpoint()?;
        }
        Ok(())
    }

    fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
        let end = chunk.first_index + chunk.len() as u64;
        if end <= self.persisted {
            return Ok(()); // replayed prefix, already durable
        }
        // Partial overlap: encode only the unseen tail of the chunk.
        let skip = (self.persisted.saturating_sub(chunk.first_index)) as usize;
        let n = chunk.len() - skip;
        if n == 0 {
            return Ok(());
        }
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        put_varint(&mut buf, n as u64);
        for &t in &chunk.times[skip..] {
            self.codecs[0].encode(t, &mut buf);
        }
        for (ci, col) in chunk.cols.iter().enumerate() {
            let codec = &mut self.codecs[ci + 1];
            for &v in &col[skip..] {
                codec.encode(v, &mut buf);
            }
        }
        let w = self.file.as_mut().ok_or_else(|| SpiceError::Internal {
            message: "spill chunk before begin".into(),
        })?;
        w.write_all(&buf).map_err(|e| io_err("spill write", &e))?;
        w.flush().map_err(|e| io_err("spill flush", &e))?;
        self.payload_bytes += buf.len() as u64;
        self.persisted = end;
        self.scratch = buf;
        self.write_checkpoint()
    }

    fn finish(&mut self, _meta: &TranMeta) -> Result<(), SpiceError> {
        if let Some(w) = self.file.as_mut() {
            w.flush().map_err(|e| io_err("spill flush", &e))?;
        }
        self.file = None;
        self.write_checkpoint()
    }
}

/// `BufWriter` lacks a stable seek-to-end helper without `Seek` bounds
/// gymnastics; this tiny extension keeps the call sites readable.
trait SeekEnd {
    fn seek_end(&mut self) -> std::io::Result<()>;
}

impl SeekEnd for BufWriter<File> {
    fn seek_end(&mut self) -> std::io::Result<()> {
        use std::io::Seek;
        self.seek(std::io::SeekFrom::End(0)).map(|_| ())
    }
}

/// Decoded contents of a spill file.
#[derive(Debug, Clone)]
pub struct SpillContents {
    /// Column names from the header.
    pub col_names: Vec<String>,
    /// Stop time recorded in the header, seconds.
    pub t_stop: f64,
    /// Nominal timestep recorded in the header, seconds.
    pub dt: f64,
    /// Decoded time points.
    pub times: Vec<f64>,
    /// Decoded waveform columns, one per name.
    pub cols: Vec<Vec<f64>>,
}

/// Reader for [`SpillSink`] files (dense — intended for verification
/// and offline analysis, not for the streaming hot path).
pub struct SpillReader;

impl SpillReader {
    /// Decodes a whole spill file.
    ///
    /// # Errors
    ///
    /// [`SpiceError::Io`] on filesystem errors or a corrupt file.
    pub fn read(path: impl AsRef<Path>) -> Result<SpillContents, SpiceError> {
        let mut buf = Vec::new();
        File::open(path.as_ref())
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| io_err("spill read", &e))?;
        let fail = |msg: &str| SpiceError::Io {
            context: "spill decode",
            message: msg.into(),
        };
        if buf.len() < 8 || &buf[0..4] != DATA_MAGIC {
            return Err(fail("bad spill header"));
        }
        let n_cols = u32::from_le_bytes(le_bytes(&buf, 4)) as usize;
        let mut pos = 8usize;
        let mut col_names = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            if pos + 4 > buf.len() {
                return Err(fail("truncated column name"));
            }
            let len = u32::from_le_bytes(le_bytes(&buf, pos)) as usize;
            pos += 4;
            if pos + len > buf.len() {
                return Err(fail("truncated column name"));
            }
            let name = std::str::from_utf8(&buf[pos..pos + len])
                .map_err(|_| fail("non-utf8 column name"))?;
            col_names.push(name.to_string());
            pos += len;
        }
        if pos + 16 > buf.len() {
            return Err(fail("truncated header"));
        }
        let t_stop = f64::from_le_bytes(le_bytes(&buf, pos));
        let dt = f64::from_le_bytes(le_bytes(&buf, pos + 8));
        pos += 16;

        let mut codecs = vec![DeltaCodec::default(); n_cols + 1];
        let mut times = Vec::new();
        let mut cols = vec![Vec::new(); n_cols];
        while pos < buf.len() {
            let n = get_varint(&buf, &mut pos)? as usize;
            for _ in 0..n {
                times.push(codecs[0].decode(&buf, &mut pos)?);
            }
            for (ci, col) in cols.iter_mut().enumerate() {
                for _ in 0..n {
                    col.push(codecs[ci + 1].decode(&buf, &mut pos)?);
                }
            }
        }
        Ok(SpillContents {
            col_names,
            t_stop,
            dt,
            times,
            cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(names: &[&str]) -> TranMeta {
        TranMeta {
            col_names: names.iter().map(|s| (*s).to_string()).collect(),
            t_stop: 1e-9,
            dt: 1e-12,
            chunk_size: 4,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cml_spill_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::MAX, 1 << 63];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn spill_roundtrip_is_lossless() {
        let path = tmp("roundtrip");
        let m = meta(&["a", "b"]);
        let times: Vec<f64> = (0..10).map(|i| i as f64 * 1e-12).collect();
        let ca: Vec<f64> = times.iter().map(|&t| (t * 1e12).sin()).collect();
        let cb: Vec<f64> = times.iter().map(|&t| 1.0 - t * 1e10).collect();
        {
            let mut sink = SpillSink::create(&path);
            sink.begin(&m).unwrap();
            // Two chunks of 4 + tail of 2.
            for (start, len) in [(0usize, 4usize), (4, 4), (8, 2)] {
                sink.chunk(&WaveChunk {
                    first_index: start as u64,
                    times: &times[start..start + len],
                    cols: &[
                        ca[start..start + len].to_vec(),
                        cb[start..start + len].to_vec(),
                    ],
                })
                .unwrap();
            }
            sink.finish(&m).unwrap();
        }
        let got = SpillReader::read(&path).unwrap();
        assert_eq!(got.col_names, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(got.t_stop, 1e-9);
        assert_eq!(got.times.len(), 10);
        for i in 0..10 {
            assert_eq!(got.times[i].to_bits(), times[i].to_bits());
            assert_eq!(got.cols[0][i].to_bits(), ca[i].to_bits());
            assert_eq!(got.cols[1][i].to_bits(), cb[i].to_bits());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(ckpt_path(&path));
    }

    #[test]
    fn resume_after_interruption_is_byte_identical() {
        let m = meta(&["w"]);
        let times: Vec<f64> = (0..12).map(|i| i as f64 * 0.5e-12).collect();
        let col: Vec<f64> = times.iter().map(|&t| (t * 4e12).cos()).collect();
        let chunks = [(0usize, 4usize), (4, 4), (8, 4)];
        let feed = |sink: &mut SpillSink, upto: usize| {
            for &(start, len) in &chunks[..upto] {
                sink.chunk(&WaveChunk {
                    first_index: start as u64,
                    times: &times[start..start + len],
                    cols: &[col[start..start + len].to_vec()],
                })
                .unwrap();
            }
        };

        // Reference: uninterrupted run.
        let p_ref = tmp("resume_ref");
        {
            let mut sink = SpillSink::create(&p_ref);
            sink.begin(&m).unwrap();
            feed(&mut sink, 3);
            sink.finish(&m).unwrap();
        }

        // Interrupted after 2 chunks, then resumed with a full replay.
        let p_res = tmp("resume_cut");
        {
            let mut sink = SpillSink::create(&p_res);
            sink.begin(&m).unwrap();
            feed(&mut sink, 2);
            // Simulated crash: no finish(); checkpoint says 8 samples.
        }
        {
            let mut sink = SpillSink::resume(&p_res).unwrap();
            assert_eq!(sink.persisted_samples(), 8);
            sink.begin(&m).unwrap();
            feed(&mut sink, 3); // replay from the start; prefix skipped
            sink.finish(&m).unwrap();
        }

        let a = std::fs::read(&p_ref).unwrap();
        let b = std::fs::read(&p_res).unwrap();
        assert_eq!(a, b, "resumed file must be byte-identical");
        let got = SpillReader::read(&p_res).unwrap();
        assert_eq!(got.times.len(), 12);
        assert_eq!(got.cols[0][11].to_bits(), col[11].to_bits());
        for p in [&p_ref, &p_res] {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(ckpt_path(p));
        }
    }

    #[test]
    fn resume_without_checkpoint_fails() {
        let path = tmp("no_ckpt");
        let _ = std::fs::remove_file(ckpt_path(&path));
        assert!(matches!(
            SpillSink::resume(&path),
            Err(SpiceError::Io { .. })
        ));
    }

    #[test]
    fn compression_beats_raw_f64_on_smooth_waves() {
        let path = tmp("ratio");
        let m = meta(&["w"]);
        let n = 4096usize;
        let times: Vec<f64> = (0..n).map(|i| i as f64 * 1e-12).collect();
        let col: Vec<f64> = times.iter().map(|&t| 0.2 * (t * 3e9).sin()).collect();
        {
            let mut sink = SpillSink::create(&path);
            sink.begin(&m).unwrap();
            sink.chunk(&WaveChunk {
                first_index: 0,
                times: &times,
                cols: std::slice::from_ref(&col),
            })
            .unwrap();
            sink.finish(&m).unwrap();
        }
        let raw = (2 * n * 8) as u64;
        let packed = std::fs::metadata(&path).unwrap().len();
        assert!(
            packed < raw,
            "spill ({packed} B) should beat raw f64 ({raw} B)"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(ckpt_path(&path));
    }
}
