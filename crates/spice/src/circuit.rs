//! Circuit (netlist) representation.
//!
//! A [`Circuit`] is a named-node netlist: nodes are interned strings,
//! elements are boxed [`Element`] trait objects added in any order. The
//! analyses in [`crate::analysis`] treat the circuit as immutable.

use crate::element::Element;
use cml_cache::Fnv64;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a circuit node.
///
/// `NodeId::GROUND` (raw value 0) is the global reference node; all other
/// ids index rows of the MNA system via [`NodeId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The global ground / reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Constructs a `NodeId` from its raw value. Intended for tests and
    /// for code that re-creates ids it previously obtained from a circuit.
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// MNA row/column of this node: `None` for ground, `Some(raw - 1)`
    /// otherwise.
    #[must_use]
    pub const fn index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 as usize - 1)
        }
    }

    /// Whether this is the ground node.
    #[must_use]
    pub const fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A flat netlist of named nodes and elements.
///
/// ```
/// use cml_spice::prelude::*;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Resistor::new("R1", a, Circuit::GROUND, 50.0));
/// assert_eq!(ckt.num_elements(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_map: HashMap<String, NodeId>,
    elements: Vec<Box<dyn Element>>,
    /// Lazily computed structural digest; reset on any mutation.
    topo_hash: OnceLock<u64>,
    /// Lazily computed structure+values digest; reset on any mutation.
    content_hash: OnceLock<u64>,
}

impl Circuit {
    /// The ground node, re-exported for ergonomic netlist building.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        let mut node_map = HashMap::new();
        node_map.insert("0".to_string(), NodeId::GROUND);
        Circuit {
            node_names: vec!["0".to_string()],
            node_map,
            elements: Vec::new(),
            topo_hash: OnceLock::new(),
            content_hash: OnceLock::new(),
        }
    }

    fn invalidate_hashes(&mut self) {
        self.topo_hash = OnceLock::new();
        self.content_hash = OnceLock::new();
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"` and `"gnd"` always resolve to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return NodeId::GROUND;
        }
        if let Some(&id) = self.node_map.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_string());
        self.node_map.insert(name.to_string(), id);
        self.invalidate_hashes();
        id
    }

    /// Creates a fresh, uniquely named internal node (for generated
    /// netlists). The name is prefixed with `_` to avoid collisions.
    pub fn internal_node(&mut self, hint: &str) -> NodeId {
        let mut i = self.node_names.len();
        loop {
            let name = format!("_{hint}{i}");
            if !self.node_map.contains_key(&name) {
                return self.node(&name);
            }
            i += 1;
        }
    }

    /// Looks up an existing node by name without creating it.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(NodeId::GROUND);
        }
        self.node_map.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this circuit.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0 as usize]
    }

    /// Total node count, including ground.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of non-ground nodes (= node unknowns in the MNA system).
    #[must_use]
    pub fn num_unknown_nodes(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Adds an element to the netlist.
    pub fn add(&mut self, element: impl Element + 'static) {
        self.elements.push(Box::new(element));
        self.invalidate_hashes();
    }

    /// Adds a boxed element (for generated netlists).
    pub fn add_boxed(&mut self, element: Box<dyn Element>) {
        self.elements.push(element);
        self.invalidate_hashes();
    }

    /// Number of elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Iterates over the elements in insertion order.
    pub fn elements(&self) -> impl Iterator<Item = &dyn Element> {
        self.elements.iter().map(|b| b.as_ref())
    }

    /// Finds an element by name.
    #[must_use]
    pub fn find_element(&self, name: &str) -> Option<&dyn Element> {
        self.elements
            .iter()
            .map(|b| b.as_ref())
            .find(|e| e.name() == name)
    }

    /// Renders the circuit as a SPICE netlist (one card per element,
    /// `.end`-terminated). Useful for debugging generated circuits and
    /// for cross-checking against external simulators.
    #[must_use]
    pub fn netlist(&self) -> String {
        let namer = |n: NodeId| self.node_name(n).to_string();
        let mut out = String::from("* generated by cml-spice\n");
        for e in self.elements() {
            out.push_str(&e.card(&namer));
            out.push('\n');
        }
        out.push_str(".end\n");
        out
    }

    /// Names of nodes that appear in no element — these would make the MNA
    /// matrix singular and usually indicate a netlist bug.
    #[must_use]
    pub fn floating_nodes(&self) -> Vec<String> {
        let mut used = vec![false; self.node_names.len()];
        used[0] = true;
        for e in &self.elements {
            for n in e.nodes() {
                used[n.0 as usize] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| !u)
            .map(|(i, _)| self.node_names[i].clone())
            .collect()
    }

    /// Deterministic digest of the circuit's **structure**: node names,
    /// element kinds/names/connectivity/branch counts — everything that
    /// determines the MNA sparsity pattern, the symbolic LU analysis,
    /// and the structural lint verdict, and nothing that doesn't.
    /// Two circuits with equal topology hashes have interchangeable
    /// stamp patterns and symbolic analyses even when their component
    /// values differ (a Monte-Carlo variant fleet, a corner sweep).
    ///
    /// Computed lazily and cached; any mutation ([`node`](Self::node),
    /// [`add`](Self::add), [`add_boxed`](Self::add_boxed)) invalidates
    /// the cache. FNV-1a over length-prefixed fields, so the digest is
    /// stable across processes — it doubles as the on-disk cache key.
    #[must_use]
    pub fn topology_hash(&self) -> u64 {
        *self.topo_hash.get_or_init(|| {
            let mut h = Fnv64::new();
            h.write_usize(self.node_names.len());
            for name in &self.node_names {
                h.write_str(name);
            }
            h.write_usize(self.elements.len());
            for e in self.elements() {
                h.write_str(&format!("{:?}", e.kind()));
                h.write_str(e.name());
                let nodes = e.nodes();
                h.write_usize(nodes.len());
                for n in nodes {
                    h.write_u64(u64::from(n.raw()));
                }
                h.write_usize(e.num_branches());
                h.write_u8(u8::from(e.is_nonlinear()));
            }
            h.finish()
        })
    }

    /// Deterministic digest of structure **and** element parameter
    /// values, via each element's full `Debug` rendering (derived for
    /// every builtin element, so `f64` fields print with lossless
    /// shortest-roundtrip formatting). Folds in
    /// [`topology_hash`](Self::topology_hash). Used to key artifacts
    /// that depend on values, like analysis warm-start vectors; two
    /// circuits with equal content hashes are the same netlist.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        *self.content_hash.get_or_init(|| {
            let mut h = Fnv64::new();
            h.write_u64(self.topology_hash());
            for e in self.elements() {
                h.write_str(&format!("{e:?}"));
            }
            h.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::two_terminal::Resistor;

    #[test]
    fn ground_aliases() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.node("0"), NodeId::GROUND);
        assert_eq!(ckt.node("gnd"), NodeId::GROUND);
        assert_eq!(ckt.node("GND"), NodeId::GROUND);
    }

    #[test]
    fn node_interning_is_stable() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        assert_ne!(a, b);
        assert_eq!(ckt.node("a"), a);
        assert_eq!(ckt.num_unknown_nodes(), 2);
        assert_eq!(ckt.node_name(a), "a");
    }

    #[test]
    fn find_node_does_not_create() {
        let ckt = Circuit::new();
        assert_eq!(ckt.find_node("missing"), None);
        assert_eq!(ckt.find_node("gnd"), Some(NodeId::GROUND));
    }

    #[test]
    fn internal_nodes_are_unique() {
        let mut ckt = Circuit::new();
        let a = ckt.internal_node("x");
        let b = ckt.internal_node("x");
        assert_ne!(a, b);
    }

    #[test]
    fn ground_index_is_none() {
        assert_eq!(NodeId::GROUND.index(), None);
        assert_eq!(NodeId::from_raw(3).index(), Some(2));
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn floating_node_detection() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let _orphan = ckt.node("orphan");
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1.0));
        assert_eq!(ckt.floating_nodes(), vec!["orphan".to_string()]);
    }

    #[test]
    fn topology_hash_ignores_values_content_hash_does_not() {
        let build = |r: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            ckt.add(Resistor::new("R1", a, Circuit::GROUND, r));
            ckt
        };
        let c1 = build(50.0);
        let c2 = build(50.0);
        let c3 = build(75.0);
        assert_eq!(c1.topology_hash(), c2.topology_hash());
        assert_eq!(c1.topology_hash(), c3.topology_hash());
        assert_eq!(c1.content_hash(), c2.content_hash());
        assert_ne!(c1.content_hash(), c3.content_hash());
    }

    #[test]
    fn topology_hash_sees_structure() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1.0));
        let h1 = ckt.topology_hash();
        // Mutation invalidates the cached digest.
        let b = ckt.node("b");
        ckt.add(Resistor::new("R2", a, b, 1.0));
        assert_ne!(ckt.topology_hash(), h1);
        // Different element name, same everything else: different hash
        // (names are structural — duplicate names are a lint error).
        let mut other = Circuit::new();
        let oa = other.node("a");
        other.add(Resistor::new("Rx", oa, Circuit::GROUND, 1.0));
        let mut named = Circuit::new();
        let na = named.node("a");
        named.add(Resistor::new("R1", na, Circuit::GROUND, 1.0));
        assert_ne!(other.topology_hash(), named.topology_hash());
    }

    #[test]
    fn find_element_by_name() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1.0));
        assert!(ckt.find_element("R1").is_some());
        assert!(ckt.find_element("R2").is_none());
    }
}

#[cfg(test)]
mod netlist_tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn netlist_renders_spice_cards() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.8));
        ckt.add(Resistor::new("R1", a, b, 1e3));
        ckt.add(Capacitor::new("C1", b, Circuit::GROUND, 1e-12));
        ckt.add(Mosfet::new(
            "M1",
            b,
            a,
            Circuit::GROUND,
            Circuit::GROUND,
            MosParams {
                mos_type: MosType::Nmos,
                w: 1e-6,
                l: 0.18e-6,
                vth0: 0.45,
                kp: 170e-6,
                lambda: 0.1,
                cox: 8.4e-3,
                cov: 3e-10,
                cj: 1e-3,
                ldiff: 0.5e-6,
            },
        ));
        let nl = ckt.netlist();
        assert!(nl.contains("VV1 a 0 DC 1.8"));
        assert!(nl.contains("RR1 a b 1.0"));
        assert!(nl.contains("CC1 b 0 1.0"));
        assert!(nl.contains("MM1 b a 0 0 nmos"));
        assert!(nl.ends_with(".end\n"));
        assert_eq!(nl.lines().count(), 6);
    }
}
