//! Linear controlled sources (VCVS, VCCS).
//!
//! These are the workhorses of behavioural macromodels: ideal gain blocks,
//! transconductors and buffers used both in tests and in the baseline
//! limiting-amplifier models of `cml-core`.

use crate::circuit::NodeId;
use crate::element::{AcStamper, DcCoupling, Element, ElementKind, StampCtx, Stamper};
use crate::lint::LintCode;
use cml_numeric::Complex64;

/// Voltage-controlled voltage source: `v(a,b) = gain · v(cp,cn)`.
///
/// Adds one branch-current unknown for the output branch.
#[derive(Debug, Clone)]
pub struct Vcvs {
    name: String,
    a: NodeId,
    b: NodeId,
    cp: NodeId,
    cn: NodeId,
    gain: f64,
}

impl Vcvs {
    /// Creates a VCVS with output `(a, b)`, control `(cp, cn)` and the
    /// given voltage gain.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not finite.
    #[must_use]
    pub fn new(name: &str, a: NodeId, b: NodeId, cp: NodeId, cn: NodeId, gain: f64) -> Self {
        assert!(gain.is_finite(), "vcvs {name}: gain must be finite");
        Vcvs {
            name: name.to_string(),
            a,
            b,
            cp,
            cn,
            gain,
        }
    }

    /// Voltage gain.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Element for Vcvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b, self.cp, self.cn]
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        let (a, b) = (self.a.index(), self.b.index());
        let (cp, cn) = (self.cp.index(), self.cn.index());
        let br = out.branch(ctx.branch_base);
        out.mat(a, Some(br), 1.0);
        out.mat(b, Some(br), -1.0);
        // v_a - v_b - gain·(v_cp - v_cn) = 0
        out.mat(Some(br), a, 1.0);
        out.mat(Some(br), b, -1.0);
        out.mat(Some(br), cp, -self.gain);
        out.mat(Some(br), cn, self.gain);
    }

    fn stamp_ac(&self, _x_op: &[f64], bb: usize, _omega: f64, out: &mut AcStamper<'_>) {
        let (a, b) = (self.a.index(), self.b.index());
        let (cp, cn) = (self.cp.index(), self.cn.index());
        let br = out.branch(bb);
        let one = Complex64::ONE;
        let g = Complex64::from_real(self.gain);
        out.mat(a, Some(br), one);
        out.mat(b, Some(br), -one);
        out.mat(Some(br), a, one);
        out.mat(Some(br), b, -one);
        out.mat(Some(br), cp, -g);
        out.mat(Some(br), cn, g);
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Vcvs
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        // Only the output branch holds a DC relation; the control pair is
        // sensed with infinite impedance.
        vec![DcCoupling::VoltageDefined(self.a, self.b)]
    }
}

/// Voltage-controlled current source: current `gm · v(cp,cn)` flows from
/// `a` through the source to `b`.
#[derive(Debug, Clone)]
pub struct Vccs {
    name: String,
    a: NodeId,
    b: NodeId,
    cp: NodeId,
    cn: NodeId,
    gm: f64,
}

impl Vccs {
    /// Creates a VCCS with output `(a, b)`, control `(cp, cn)` and the
    /// given transconductance in siemens.
    ///
    /// # Panics
    ///
    /// Panics if `gm` is not finite.
    #[must_use]
    pub fn new(name: &str, a: NodeId, b: NodeId, cp: NodeId, cn: NodeId, gm: f64) -> Self {
        assert!(gm.is_finite(), "vccs {name}: gm must be finite");
        Vccs {
            name: name.to_string(),
            a,
            b,
            cp,
            cn,
            gm,
        }
    }

    /// Transconductance in siemens.
    #[must_use]
    pub fn gm(&self) -> f64 {
        self.gm
    }
}

impl Element for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b, self.cp, self.cn]
    }

    fn stamp(&self, _ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        let (a, b) = (self.a.index(), self.b.index());
        let (cp, cn) = (self.cp.index(), self.cn.index());
        // i(a→b) = gm (v_cp − v_cn): leaves a, enters b.
        out.mat(a, cp, self.gm);
        out.mat(a, cn, -self.gm);
        out.mat(b, cp, -self.gm);
        out.mat(b, cn, self.gm);
    }

    fn stamp_ac(&self, _x_op: &[f64], _bb: usize, _omega: f64, out: &mut AcStamper<'_>) {
        out.transconductance(
            self.a.index(),
            self.b.index(),
            self.cp.index(),
            self.cn.index(),
            self.gm,
        );
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Vccs
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        // Generously treat the output pair as conductive so a VCCS-loaded
        // node is not flagged as having no DC path; a genuinely unheld
        // output column is still caught by the structural-rank pass.
        vec![DcCoupling::Conductive(self.a, self.b)]
    }

    fn lint_self(&self) -> Vec<(LintCode, String)> {
        if self.gm == 0.0 {
            vec![(
                LintCode::DeadSource,
                format!("vccs '{}' has zero transconductance", self.name),
            )]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "finite")]
    fn vcvs_rejects_nan_gain() {
        let _ = Vcvs::new(
            "E1",
            NodeId::from_raw(1),
            NodeId::GROUND,
            NodeId::from_raw(2),
            NodeId::GROUND,
            f64::NAN,
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn vccs_rejects_infinite_gm() {
        let _ = Vccs::new(
            "G1",
            NodeId::from_raw(1),
            NodeId::GROUND,
            NodeId::from_raw(2),
            NodeId::GROUND,
            f64::INFINITY,
        );
    }

    #[test]
    fn accessors() {
        let e = Vcvs::new(
            "E1",
            NodeId::from_raw(1),
            NodeId::GROUND,
            NodeId::from_raw(2),
            NodeId::GROUND,
            10.0,
        );
        assert_eq!(e.gain(), 10.0);
        assert_eq!(e.num_branches(), 1);
        let g = Vccs::new(
            "G1",
            NodeId::from_raw(1),
            NodeId::GROUND,
            NodeId::from_raw(2),
            NodeId::GROUND,
            1e-3,
        );
        assert_eq!(g.gm(), 1e-3);
        assert_eq!(g.num_branches(), 0);
    }
}
