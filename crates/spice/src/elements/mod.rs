//! Linear circuit elements: passives, independent sources, controlled
//! sources.

pub mod controlled;
pub mod sources;
pub mod two_terminal;
