//! Resistors, capacitors and inductors.

use crate::circuit::NodeId;
use crate::element::{
    AcStamper, DcCoupling, DcTransfer, Element, ElementKind, Integration, StampCtx, StampMode,
    Stamper,
};
use crate::lint::LintCode;
use cml_numeric::Complex64;

/// A linear resistor between two nodes.
#[derive(Debug, Clone)]
pub struct Resistor {
    name: String,
    a: NodeId,
    b: NodeId,
    ohms: f64,
}

impl Resistor {
    /// Creates a resistor of `ohms` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite — zero-ohm
    /// "resistors" should be voltage sources or node merges instead.
    #[must_use]
    pub fn new(name: &str, a: NodeId, b: NodeId, ohms: f64) -> Self {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistor {name}: resistance must be positive and finite, got {ohms}"
        );
        Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        }
    }

    /// Resistance in ohms.
    #[must_use]
    pub fn ohms(&self) -> f64 {
        self.ohms
    }
}

impl Element for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b]
    }

    fn stamp(&self, _ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        out.conductance(self.a.index(), self.b.index(), 1.0 / self.ohms);
    }

    fn stamp_ac(&self, _x_op: &[f64], _bb: usize, _omega: f64, out: &mut AcStamper<'_>) {
        out.conductance(self.a.index(), self.b.index(), 1.0 / self.ohms);
    }

    fn dc_power(&self, x_op: &[f64], _bb: usize) -> Option<f64> {
        let va = self.a.index().map_or(0.0, |i| x_op[i]);
        let vb = self.b.index().map_or(0.0, |i| x_op[i]);
        Some((va - vb) * (va - vb) / self.ohms)
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Resistor
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        vec![DcCoupling::Conductive(self.a, self.b)]
    }

    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::Conductance {
            a: self.a,
            b: self.b,
            g: 1.0 / self.ohms,
        }
    }

    fn lint_self(&self) -> Vec<(LintCode, String)> {
        let mut out = Vec::new();
        if self.a == self.b {
            out.push((
                LintCode::SelfLoop,
                format!(
                    "resistor '{}' has both terminals on the same node",
                    self.name
                ),
            ));
        }
        if let Some(msg) = crate::lint::extreme_value("resistance", self.ohms, self.kind()) {
            out.push((LintCode::ExtremeParameter, msg));
        }
        out
    }

    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        format!(
            "R{} {} {} {:.6e}",
            self.name,
            node_name(self.a),
            node_name(self.b),
            self.ohms
        )
    }
}

/// A linear capacitor between two nodes.
///
/// Open in DC; in transient analysis it stamps the Norton companion of the
/// chosen integration rule. State layout: `[v_prev, i_prev]`.
#[derive(Debug, Clone)]
pub struct Capacitor {
    name: String,
    a: NodeId,
    b: NodeId,
    farads: f64,
}

impl Capacitor {
    /// Creates a capacitor of `farads` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive and finite.
    #[must_use]
    pub fn new(name: &str, a: NodeId, b: NodeId, farads: f64) -> Self {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitor {name}: capacitance must be positive and finite, got {farads}"
        );
        Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        }
    }

    /// Capacitance in farads.
    #[must_use]
    pub fn farads(&self) -> f64 {
        self.farads
    }

    /// Companion conductance and source for one step.
    fn companion(&self, dt: f64, method: Integration, v_prev: f64, i_prev: f64) -> (f64, f64) {
        match method {
            Integration::Trapezoidal => {
                let geq = 2.0 * self.farads / dt;
                (geq, geq * v_prev + i_prev)
            }
            Integration::BackwardEuler => {
                let geq = self.farads / dt;
                (geq, geq * v_prev)
            }
        }
    }
}

impl Element for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b]
    }

    fn state_size(&self) -> usize {
        2 // [v_prev, i_prev]
    }

    fn init_state(&self, ctx: &StampCtx<'_>, state: &mut [f64]) {
        state[0] = ctx.v(self.a) - ctx.v(self.b);
        state[1] = 0.0; // steady state: no capacitor current
    }

    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        if let StampMode::Tran { dt, method, .. } = ctx.mode {
            let (geq, ieq) = self.companion(dt, method, ctx.state[0], ctx.state[1]);
            let (a, b) = (self.a.index(), self.b.index());
            out.conductance(a, b, geq);
            // ieq is the Norton source driving current from b to a.
            out.current_source(b, a, ieq);
        }
        // DC: open circuit, nothing to stamp.
    }

    fn update_state(&self, ctx: &StampCtx<'_>, state_next: &mut [f64]) {
        if let StampMode::Tran { dt, method, .. } = ctx.mode {
            let (geq, ieq) = self.companion(dt, method, ctx.state[0], ctx.state[1]);
            let v_new = ctx.v(self.a) - ctx.v(self.b);
            state_next[0] = v_new;
            state_next[1] = geq * v_new - ieq;
        }
    }

    fn stamp_ac(&self, _x_op: &[f64], _bb: usize, omega: f64, out: &mut AcStamper<'_>) {
        out.capacitance(self.a.index(), self.b.index(), self.farads, omega);
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Capacitor
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        Vec::new() // open at DC
    }

    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::Open
    }

    fn lint_self(&self) -> Vec<(LintCode, String)> {
        let mut out = Vec::new();
        if self.a == self.b {
            out.push((
                LintCode::SelfLoop,
                format!(
                    "capacitor '{}' has both terminals on the same node",
                    self.name
                ),
            ));
        }
        if let Some(msg) = crate::lint::extreme_value("capacitance", self.farads, self.kind()) {
            out.push((LintCode::ExtremeParameter, msg));
        }
        out
    }

    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        format!(
            "C{} {} {} {:.6e}",
            self.name,
            node_name(self.a),
            node_name(self.b),
            self.farads
        )
    }
}

/// A linear inductor between two nodes.
///
/// Adds one branch-current unknown. Short in DC. State layout:
/// `[v_prev, i_prev]`.
#[derive(Debug, Clone)]
pub struct Inductor {
    name: String,
    a: NodeId,
    b: NodeId,
    henries: f64,
}

impl Inductor {
    /// Creates an inductor of `henries` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not strictly positive and finite.
    #[must_use]
    pub fn new(name: &str, a: NodeId, b: NodeId, henries: f64) -> Self {
        assert!(
            henries > 0.0 && henries.is_finite(),
            "inductor {name}: inductance must be positive and finite, got {henries}"
        );
        Inductor {
            name: name.to_string(),
            a,
            b,
            henries,
        }
    }

    /// Inductance in henries.
    #[must_use]
    pub fn henries(&self) -> f64 {
        self.henries
    }
}

impl Element for Inductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b]
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn state_size(&self) -> usize {
        2 // [v_prev, i_prev]
    }

    fn init_state(&self, ctx: &StampCtx<'_>, state: &mut [f64]) {
        state[0] = 0.0; // DC: zero volts across
        state[1] = ctx.x[ctx.branch_base_abs()];
    }

    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        let (a, b) = (self.a.index(), self.b.index());
        let br = out.branch(ctx.branch_base);
        // KCL: branch current leaves a, enters b.
        out.mat(a, Some(br), 1.0);
        out.mat(b, Some(br), -1.0);
        match ctx.mode {
            StampMode::Dc { .. } => {
                // v_a - v_b = 0 (ideal short).
                out.mat(Some(br), a, 1.0);
                out.mat(Some(br), b, -1.0);
            }
            StampMode::Tran { dt, method, .. } => {
                let (v_prev, i_prev) = (ctx.state[0], ctx.state[1]);
                // Trap: i = i_prev + dt/(2L)(v + v_prev); BE: i = i_prev + dt/L·v.
                let (k, rhs) = match method {
                    Integration::Trapezoidal => {
                        let k = dt / (2.0 * self.henries);
                        (k, i_prev + k * v_prev)
                    }
                    Integration::BackwardEuler => (dt / self.henries, i_prev),
                };
                out.mat(Some(br), Some(br), 1.0);
                out.mat(Some(br), a, -k);
                out.mat(Some(br), b, k);
                out.rhs(Some(br), rhs);
            }
        }
    }

    fn update_state(&self, ctx: &StampCtx<'_>, state_next: &mut [f64]) {
        state_next[0] = ctx.v(self.a) - ctx.v(self.b);
        state_next[1] = ctx.x[ctx.branch_base_abs()];
    }

    fn stamp_ac(&self, _x_op: &[f64], bb: usize, omega: f64, out: &mut AcStamper<'_>) {
        let (a, b) = (self.a.index(), self.b.index());
        let br = out.branch(bb);
        out.mat(a, Some(br), Complex64::ONE);
        out.mat(b, Some(br), -Complex64::ONE);
        out.mat(Some(br), a, Complex64::ONE);
        out.mat(Some(br), b, -Complex64::ONE);
        out.mat(
            Some(br),
            Some(br),
            Complex64::new(0.0, -omega * self.henries),
        );
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Inductor
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        vec![DcCoupling::VoltageDefined(self.a, self.b)] // DC short
    }

    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::VoltageDefined {
            a: self.a,
            b: self.b,
            v: 0.0,
        }
    }

    fn lint_self(&self) -> Vec<(LintCode, String)> {
        let mut out = Vec::new();
        if self.a == self.b {
            out.push((
                LintCode::SelfLoop,
                format!(
                    "inductor '{}' has both terminals on the same node",
                    self.name
                ),
            ));
        }
        if let Some(msg) = crate::lint::extreme_value("inductance", self.henries, self.kind()) {
            out.push((LintCode::ExtremeParameter, msg));
        }
        out
    }

    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        format!(
            "L{} {} {} {:.6e}",
            self.name,
            node_name(self.a),
            node_name(self.b),
            self.henries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_rejected() {
        let _ = Resistor::new("R", NodeId::GROUND, NodeId::from_raw(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_capacitance_rejected() {
        let _ = Capacitor::new("C", NodeId::GROUND, NodeId::from_raw(1), -1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_inductance_rejected() {
        let _ = Inductor::new("L", NodeId::GROUND, NodeId::from_raw(1), f64::NAN);
    }

    #[test]
    fn resistor_power() {
        let r = Resistor::new("R", NodeId::from_raw(1), NodeId::GROUND, 100.0);
        let x = [5.0];
        assert!((r.dc_power(&x, 0).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn capacitor_companion_trapezoidal() {
        let c = Capacitor::new("C", NodeId::from_raw(1), NodeId::GROUND, 1e-12);
        let (geq, ieq) = c.companion(1e-12, Integration::Trapezoidal, 1.0, 0.5);
        assert!((geq - 2.0).abs() < 1e-12);
        assert!((ieq - 2.5).abs() < 1e-12);
    }

    #[test]
    fn capacitor_companion_backward_euler() {
        let c = Capacitor::new("C", NodeId::from_raw(1), NodeId::GROUND, 1e-12);
        let (geq, ieq) = c.companion(1e-12, Integration::BackwardEuler, 2.0, 9.9);
        assert!((geq - 1.0).abs() < 1e-12);
        assert!((ieq - 2.0).abs() < 1e-12); // i_prev ignored by BE
    }
}
