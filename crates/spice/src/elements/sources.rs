//! Independent voltage and current sources.

use crate::circuit::NodeId;
use crate::element::{
    AcStamper, DcCoupling, DcTransfer, Element, ElementKind, StampCtx, StampMode, Stamper,
};
use crate::lint::LintCode;
use crate::waveform::Waveform;
use cml_numeric::Complex64;

/// Value of a source's waveform under the given stamp mode.
fn source_value(w: &Waveform, mode: StampMode) -> f64 {
    match mode {
        StampMode::Dc {
            source_scale,
            at_time,
        } => source_scale * at_time.map_or_else(|| w.dc_value(), |t| w.eval(t)),
        StampMode::Tran { time, .. } => w.eval(time),
    }
}

/// An independent voltage source with an arbitrary [`Waveform`].
///
/// Positive terminal `a`, negative terminal `b`. Adds one branch-current
/// unknown; positive branch current flows from `a` through the source to
/// `b` (i.e. the source *delivers* power when the branch current is
/// negative, matching SPICE).
#[derive(Debug, Clone)]
pub struct Vsource {
    name: String,
    a: NodeId,
    b: NodeId,
    waveform: Waveform,
    ac_mag: f64,
}

impl Vsource {
    /// Creates a voltage source with the given waveform.
    #[must_use]
    pub fn new(name: &str, a: NodeId, b: NodeId, waveform: Waveform) -> Self {
        Vsource {
            name: name.to_string(),
            a,
            b,
            waveform,
            ac_mag: 0.0,
        }
    }

    /// Creates a DC voltage source.
    #[must_use]
    pub fn dc(name: &str, a: NodeId, b: NodeId, volts: f64) -> Self {
        Vsource::new(name, a, b, Waveform::dc(volts))
    }

    /// Marks this source as the AC excitation with the given magnitude
    /// (phase 0). AC analysis drives the circuit with every source whose
    /// magnitude is nonzero — conventionally exactly one, with magnitude 1.
    #[must_use]
    pub fn with_ac(mut self, magnitude: f64) -> Self {
        self.ac_mag = magnitude;
        self
    }

    /// The source waveform.
    #[must_use]
    pub fn waveform(&self) -> &Waveform {
        &self.waveform
    }
}

impl Element for Vsource {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b]
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        let (a, b) = (self.a.index(), self.b.index());
        let br = out.branch(ctx.branch_base);
        out.mat(a, Some(br), 1.0);
        out.mat(b, Some(br), -1.0);
        out.mat(Some(br), a, 1.0);
        out.mat(Some(br), b, -1.0);
        out.rhs(Some(br), source_value(&self.waveform, ctx.mode));
    }

    fn breakpoints(&self, t_stop: f64, out: &mut Vec<f64>) {
        self.waveform.breakpoints(t_stop, out);
    }

    fn stamp_ac(&self, _x_op: &[f64], bb: usize, _omega: f64, out: &mut AcStamper<'_>) {
        let (a, b) = (self.a.index(), self.b.index());
        let br = out.branch(bb);
        out.mat(a, Some(br), Complex64::ONE);
        out.mat(b, Some(br), -Complex64::ONE);
        out.mat(Some(br), a, Complex64::ONE);
        out.mat(Some(br), b, -Complex64::ONE);
        out.rhs(Some(br), Complex64::from_real(self.ac_mag));
    }

    fn dc_power(&self, x_op: &[f64], branch_base_abs: usize) -> Option<f64> {
        let va = self.a.index().map_or(0.0, |i| x_op[i]);
        let vb = self.b.index().map_or(0.0, |i| x_op[i]);
        let i = x_op[branch_base_abs];
        // Power absorbed by the source; negative when delivering.
        Some((va - vb) * i)
    }

    fn kind(&self) -> ElementKind {
        ElementKind::VoltageSource
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        vec![DcCoupling::VoltageDefined(self.a, self.b)]
    }

    fn dc_source_value(&self) -> Option<f64> {
        Some(self.waveform.dc_value())
    }

    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::VoltageDefined {
            a: self.a,
            b: self.b,
            v: self.waveform.dc_value(),
        }
    }

    fn lint_self(&self) -> Vec<(LintCode, String)> {
        if matches!(self.waveform, Waveform::Dc(v) if v == 0.0) && self.ac_mag == 0.0 {
            vec![(
                LintCode::DeadSource,
                format!(
                    "voltage source '{}' is 0 V DC with no AC magnitude",
                    self.name
                ),
            )]
        } else {
            Vec::new()
        }
    }

    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        format!(
            "V{} {} {} DC {:.6e}",
            self.name,
            node_name(self.a),
            node_name(self.b),
            self.waveform.dc_value()
        )
    }
}

/// An independent current source with an arbitrary [`Waveform`].
///
/// Positive current flows from `a` through the source into `b` (SPICE
/// convention), i.e. a positive DC value pulls current out of node `a` and
/// pushes it into node `b`.
#[derive(Debug, Clone)]
pub struct Isource {
    name: String,
    a: NodeId,
    b: NodeId,
    waveform: Waveform,
    ac_mag: f64,
}

impl Isource {
    /// Creates a current source with the given waveform.
    #[must_use]
    pub fn new(name: &str, a: NodeId, b: NodeId, waveform: Waveform) -> Self {
        Isource {
            name: name.to_string(),
            a,
            b,
            waveform,
            ac_mag: 0.0,
        }
    }

    /// Creates a DC current source.
    #[must_use]
    pub fn dc(name: &str, a: NodeId, b: NodeId, amps: f64) -> Self {
        Isource::new(name, a, b, Waveform::dc(amps))
    }

    /// Marks this source as the AC excitation with the given magnitude.
    #[must_use]
    pub fn with_ac(mut self, magnitude: f64) -> Self {
        self.ac_mag = magnitude;
        self
    }

    /// The source waveform.
    #[must_use]
    pub fn waveform(&self) -> &Waveform {
        &self.waveform
    }
}

impl Element for Isource {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b]
    }

    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        let i = source_value(&self.waveform, ctx.mode);
        out.current_source(self.a.index(), self.b.index(), i);
    }

    fn breakpoints(&self, t_stop: f64, out: &mut Vec<f64>) {
        self.waveform.breakpoints(t_stop, out);
    }

    fn stamp_ac(&self, _x_op: &[f64], _bb: usize, _omega: f64, out: &mut AcStamper<'_>) {
        let i = Complex64::from_real(self.ac_mag);
        out.rhs(self.a.index(), -i);
        out.rhs(self.b.index(), i);
    }

    fn dc_power(&self, x_op: &[f64], _bb: usize) -> Option<f64> {
        let va = self.a.index().map_or(0.0, |i| x_op[i]);
        let vb = self.b.index().map_or(0.0, |i| x_op[i]);
        Some((va - vb) * self.waveform.dc_value())
    }

    fn kind(&self) -> ElementKind {
        ElementKind::CurrentSource
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        vec![DcCoupling::CurrentInjection(self.a, self.b)]
    }

    fn dc_source_value(&self) -> Option<f64> {
        Some(self.waveform.dc_value())
    }

    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::CurrentSource {
            a: self.a,
            b: self.b,
            i: self.waveform.dc_value(),
        }
    }

    fn lint_self(&self) -> Vec<(LintCode, String)> {
        if matches!(self.waveform, Waveform::Dc(v) if v == 0.0) && self.ac_mag == 0.0 {
            vec![(
                LintCode::DeadSource,
                format!(
                    "current source '{}' is 0 A DC with no AC magnitude",
                    self.name
                ),
            )]
        } else {
            Vec::new()
        }
    }

    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        format!(
            "I{} {} {} DC {:.6e}",
            self.name,
            node_name(self.a),
            node_name(self.b),
            self.waveform.dc_value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_source_value_scales() {
        let w = Waveform::dc(2.0);
        let v = source_value(
            &w,
            StampMode::Dc {
                source_scale: 0.25,
                at_time: None,
            },
        );
        assert_eq!(v, 0.5);
    }

    #[test]
    fn at_time_evaluates_waveform() {
        let w = Waveform::step(0.0, 1.0, 1e-9, 1e-10);
        let v = source_value(
            &w,
            StampMode::Dc {
                source_scale: 1.0,
                at_time: Some(5e-9),
            },
        );
        assert_eq!(v, 1.0);
    }

    #[test]
    fn tran_mode_uses_time() {
        let w = Waveform::step(0.0, 1.0, 1e-9, 1e-10);
        let v = source_value(
            &w,
            StampMode::Tran {
                time: 0.0,
                dt: 1e-12,
                method: crate::element::Integration::Trapezoidal,
            },
        );
        assert_eq!(v, 0.0);
    }

    #[test]
    fn builders_set_ac() {
        let v = Vsource::dc("V1", NodeId::from_raw(1), NodeId::GROUND, 1.0).with_ac(1.0);
        assert_eq!(v.ac_mag, 1.0);
        let i = Isource::dc("I1", NodeId::from_raw(1), NodeId::GROUND, 1.0);
        assert_eq!(i.ac_mag, 0.0);
    }
}
