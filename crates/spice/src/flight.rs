//! Solver flight recorder: versioned, checksummed forensic bundles
//! dumped when an analysis fails.
//!
//! A `cml-serve`-style deployment cannot debug "the thousandth user's
//! netlist diverged" from a counter total: it needs the failing corner
//! itself. When `CML_FLIGHT_DIR` is set (or a directory is installed
//! with [`set_dir`]), every `*_traced` analysis entry point that
//! returns a [`SpiceError`] writes a **flight bundle** next to its
//! error: the circuit's content/topology hashes *and* its re-parseable
//! netlist, the exact [`NewtonOptions`], an optional workload seed, the
//! per-iteration Newton residual trajectory, the newest-N structured
//! events, and the full JSON [`SolverReport`](cml_telemetry::SolverReport)
//! — everything needed to replay the failure offline with
//! `cml-lint forensics <bundle> --replay`.
//!
//! # Format (`CMLF`, version 1)
//!
//! The header follows the `cml-cache` disk tier's `CMLC` idiom: magic,
//! version, payload length, FNV-1a checksum over the payload, then the
//! payload encoded with the shared little-endian
//! [`codec`](cml_cache::codec). Files are written tmp+rename so a
//! crashed dump never leaves a half-written bundle, and readers
//! validate magic → version → length → checksum → field decode →
//! content fingerprint before trusting a byte.
//!
//! Inside the payload, a **content fingerprint** (FNV-1a over the
//! deterministic fields only — hashes, netlist, options, seed, error,
//! trajectory bit patterns, events minus their timestamps) is stored
//! alongside the data. Two dumps of the same failing solve produce the
//! same fingerprint even though their wall-clock fields differ, which
//! is how "byte-identical modulo timestamps" is made machine-checkable.

use crate::analysis::NewtonOptions;
use crate::circuit::Circuit;
use crate::SpiceError;
use cml_cache::codec::{ByteReader, ByteWriter};
use cml_cache::fnv1a64;
use cml_telemetry::{warn_once, Event, EventKind, Telemetry};
use serde::Value;
use std::borrow::Cow;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable naming the directory flight bundles are written
/// to. Unset (and no [`set_dir`] override) disables the recorder — the
/// error paths then cost one branch.
pub const FLIGHT_DIR_ENV: &str = "CML_FLIGHT_DIR";

/// Bundle file extension.
pub const FLIGHT_EXT: &str = "cmlf";

/// Magic bytes opening every bundle.
pub const FLIGHT_MAGIC: [u8; 4] = *b"CMLF";

/// Current bundle format version. Readers reject other versions with a
/// typed error instead of guessing.
pub const FLIGHT_VERSION: u32 = 1;

/// Header length: magic + version + payload length + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Typed failure modes of bundle reading/validation — what
/// `cml-lint forensics` reports on a corrupt file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightError {
    /// Filesystem failure (stringified to keep the type `Clone`).
    Io(String),
    /// The file does not start with [`FLIGHT_MAGIC`].
    BadMagic,
    /// The file's format version is not [`FLIGHT_VERSION`].
    BadVersion(u32),
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Payload length the header claims.
        expected: u64,
        /// Payload bytes actually present.
        got: u64,
    },
    /// The FNV-1a checksum over the payload does not match the header.
    ChecksumMismatch,
    /// The payload ended (or a length field went insane) while decoding
    /// the named field.
    Truncated(&'static str),
    /// The stored content fingerprint disagrees with one recomputed
    /// from the decoded fields — an encoder/decoder bug or targeted
    /// tampering the checksum alone would also catch.
    FingerprintMismatch {
        /// Fingerprint stored in the bundle.
        stored: u64,
        /// Fingerprint recomputed from the decoded fields.
        computed: u64,
    },
}

impl std::fmt::Display for FlightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightError::Io(m) => write!(f, "flight bundle I/O error: {m}"),
            FlightError::BadMagic => write!(f, "not a flight bundle (bad magic)"),
            FlightError::BadVersion(v) => {
                write!(f, "unsupported flight bundle version {v} (expected {FLIGHT_VERSION})")
            }
            FlightError::LengthMismatch { expected, got } => {
                write!(f, "flight bundle truncated: header claims {expected} payload bytes, file has {got}")
            }
            FlightError::ChecksumMismatch => write!(f, "flight bundle payload checksum mismatch"),
            FlightError::Truncated(field) => {
                write!(f, "flight bundle payload truncated while decoding `{field}`")
            }
            FlightError::FingerprintMismatch { stored, computed } => write!(
                f,
                "flight bundle content fingerprint mismatch: stored {stored:016x}, recomputed {computed:016x}"
            ),
        }
    }
}

impl std::error::Error for FlightError {}

/// Stable tag for the error variant stored in a bundle (the Display
/// string carries the detail; the tag survives rewording).
fn error_tag(err: &SpiceError) -> u8 {
    match err {
        SpiceError::NoConvergence { .. } => 0,
        SpiceError::Singular { .. } => 1,
        SpiceError::NotFound { .. } => 2,
        SpiceError::InvalidParameter { .. } => 3,
        SpiceError::InvalidConfig { .. } => 4,
        SpiceError::Numeric(_) => 5,
        SpiceError::LintRejected { .. } => 6,
        SpiceError::Internal { .. } => 7,
        SpiceError::Io { .. } => 8,
    }
}

/// A decoded (or to-be-encoded) forensic bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightBundle {
    /// Format version the bundle was written with.
    pub version: u32,
    /// [`Circuit::content_hash`] of the failing circuit.
    pub content_hash: u64,
    /// [`Circuit::topology_hash`] of the failing circuit.
    pub topology_hash: u64,
    /// Which analysis failed (`"op"`, `"tran"`, …).
    pub analysis: String,
    /// `(variant tag, Display string)` of the error, or `None` for an
    /// on-demand snapshot.
    pub error: Option<(u8, String)>,
    /// The circuit's SPICE netlist ([`Circuit::netlist`]) — re-parseable
    /// by `cml-lint`, which is what makes replay possible.
    pub netlist: String,
    /// Newton options in effect for the failing solve.
    pub options: NewtonOptions,
    /// Workload RNG seed when one was installed via [`set_seed`].
    pub seed: Option<u64>,
    /// Per-iteration Newton residuals of the final solve attempt.
    pub trajectory: Vec<f64>,
    /// Newest-N structured events at dump time.
    pub events: Vec<Event>,
    /// Events the bounded ring had evicted by dump time.
    pub events_dropped: u64,
    /// Content fingerprint stored in the bundle (see
    /// [`FlightBundle::content_fingerprint`]).
    pub fingerprint: u64,
    /// The full `SolverReport` rendered as JSON (wall-clock fields live
    /// here, outside the fingerprint).
    pub report_json: String,
}

fn put_str(w: &mut ByteWriter, s: &str) {
    w.put_usize(s.len());
    for &b in s.as_bytes() {
        w.put_u8(b);
    }
}

fn get_str(r: &mut ByteReader<'_>, field: &'static str) -> Result<String, FlightError> {
    let n = r.get_usize().ok_or(FlightError::Truncated(field))?;
    if n > r.remaining() {
        return Err(FlightError::Truncated(field));
    }
    let mut bytes = Vec::with_capacity(n);
    for _ in 0..n {
        bytes.push(r.get_u8().ok_or(FlightError::Truncated(field))?);
    }
    String::from_utf8(bytes).map_err(|_| FlightError::Truncated(field))
}

/// Encodes one event. The timestamp is written *last* within the fixed
/// envelope so the fingerprint encoder can reuse the same field order
/// minus `t_ns`.
fn put_event(w: &mut ByteWriter, ev: &Event, with_time: bool) {
    w.put_u64(ev.seq);
    w.put_u32(ev.tid);
    if with_time {
        w.put_u64(ev.t_ns);
    }
    match &ev.kind {
        EventKind::NewtonIteration {
            analysis,
            iteration,
            residual,
            damped,
        } => {
            w.put_u8(0);
            put_str(w, analysis);
            w.put_u32(*iteration);
            w.put_f64(*residual);
            w.put_u8(u8::from(*damped));
        }
        EventKind::NewtonDiverged {
            analysis,
            iterations,
            residual,
        } => {
            w.put_u8(1);
            put_str(w, analysis);
            w.put_u32(*iterations);
            w.put_f64(*residual);
        }
        EventKind::LteReject { t, dt } => {
            w.put_u8(2);
            w.put_f64(*t);
            w.put_f64(*dt);
        }
        EventKind::NewtonRetry { t, dt } => {
            w.put_u8(3);
            w.put_f64(*t);
            w.put_f64(*dt);
        }
        EventKind::PivotFallback { column, pivot } => {
            w.put_u8(4);
            w.put_u64(*column);
            w.put_f64(*pivot);
        }
        EventKind::CacheRejected { kind } => {
            w.put_u8(5);
            put_str(w, kind);
        }
        EventKind::LintRejected { errors } => {
            w.put_u8(6);
            w.put_u32(*errors);
        }
        EventKind::Degradation { code } => {
            w.put_u8(7);
            put_str(w, code);
        }
    }
}

fn get_event(r: &mut ByteReader<'_>) -> Result<Event, FlightError> {
    const F: &str = "event";
    let seq = r.get_u64().ok_or(FlightError::Truncated(F))?;
    let tid = r.get_u32().ok_or(FlightError::Truncated(F))?;
    let t_ns = r.get_u64().ok_or(FlightError::Truncated(F))?;
    let tag = r.get_u8().ok_or(FlightError::Truncated(F))?;
    let num_u32 = |r: &mut ByteReader<'_>| r.get_u32().ok_or(FlightError::Truncated(F));
    let num_f64 = |r: &mut ByteReader<'_>| r.get_f64().ok_or(FlightError::Truncated(F));
    let kind = match tag {
        0 => EventKind::NewtonIteration {
            analysis: Cow::Owned(get_str(r, F)?),
            iteration: num_u32(r)?,
            residual: num_f64(r)?,
            damped: r.get_u8().ok_or(FlightError::Truncated(F))? != 0,
        },
        1 => EventKind::NewtonDiverged {
            analysis: Cow::Owned(get_str(r, F)?),
            iterations: num_u32(r)?,
            residual: num_f64(r)?,
        },
        2 => EventKind::LteReject {
            t: num_f64(r)?,
            dt: num_f64(r)?,
        },
        3 => EventKind::NewtonRetry {
            t: num_f64(r)?,
            dt: num_f64(r)?,
        },
        4 => EventKind::PivotFallback {
            column: r.get_u64().ok_or(FlightError::Truncated(F))?,
            pivot: num_f64(r)?,
        },
        5 => EventKind::CacheRejected {
            kind: Cow::Owned(get_str(r, F)?),
        },
        6 => EventKind::LintRejected {
            errors: num_u32(r)?,
        },
        7 => EventKind::Degradation {
            code: Cow::Owned(get_str(r, F)?),
        },
        _ => return Err(FlightError::Truncated("event tag")),
    };
    Ok(Event {
        seq,
        t_ns,
        tid,
        kind,
    })
}

impl FlightBundle {
    /// Encodes the deterministic fields (everything except wall-clock
    /// timestamps and the report JSON) in a fixed order.
    fn deterministic_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(1024 + self.netlist.len());
        w.put_u64(self.content_hash);
        w.put_u64(self.topology_hash);
        put_str(&mut w, &self.analysis);
        match &self.error {
            None => w.put_u8(0),
            Some((tag, msg)) => {
                w.put_u8(1);
                w.put_u8(*tag);
                put_str(&mut w, msg);
            }
        }
        put_str(&mut w, &self.netlist);
        w.put_usize(self.options.max_iter);
        w.put_usize(self.options.sparse_threshold);
        w.put_f64(self.options.vntol);
        w.put_f64(self.options.reltol);
        w.put_f64(self.options.abstol);
        w.put_f64(self.options.max_step);
        w.put_f64(self.options.gmin);
        w.put_u8(u8::from(self.options.warm_start_from_analysis));
        w.put_u8(u8::from(self.options.cache));
        match self.seed {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                w.put_u64(s);
            }
        }
        w.put_f64_slice(&self.trajectory);
        w.put_usize(self.events.len());
        for ev in &self.events {
            put_event(&mut w, ev, false);
        }
        w.finish()
    }

    /// FNV-1a hash over the deterministic fields. Two dumps of the same
    /// failing solve agree on this even though timestamps, timings and
    /// peak RSS differ — "byte-identical modulo timestamps", as one
    /// comparable word.
    #[must_use]
    pub fn content_fingerprint(&self) -> u64 {
        fnv1a64(&self.deterministic_bytes())
    }

    /// Serializes header + payload; the stored fingerprint is always
    /// recomputed from the current field values.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = ByteWriter::with_capacity(2048 + self.netlist.len() + self.report_json.len());
        p.put_u64(self.content_hash);
        p.put_u64(self.topology_hash);
        put_str(&mut p, &self.analysis);
        match &self.error {
            None => p.put_u8(0),
            Some((tag, msg)) => {
                p.put_u8(1);
                p.put_u8(*tag);
                put_str(&mut p, msg);
            }
        }
        put_str(&mut p, &self.netlist);
        p.put_usize(self.options.max_iter);
        p.put_usize(self.options.sparse_threshold);
        p.put_f64(self.options.vntol);
        p.put_f64(self.options.reltol);
        p.put_f64(self.options.abstol);
        p.put_f64(self.options.max_step);
        p.put_f64(self.options.gmin);
        p.put_u8(u8::from(self.options.warm_start_from_analysis));
        p.put_u8(u8::from(self.options.cache));
        match self.seed {
            None => p.put_u8(0),
            Some(s) => {
                p.put_u8(1);
                p.put_u64(s);
            }
        }
        p.put_f64_slice(&self.trajectory);
        p.put_usize(self.events.len());
        for ev in &self.events {
            put_event(&mut p, ev, true);
        }
        p.put_u64(self.events_dropped);
        p.put_u64(self.content_fingerprint());
        put_str(&mut p, &self.report_json);
        let payload = p.finish();

        let mut h = ByteWriter::with_capacity(HEADER_LEN + payload.len());
        for &b in &FLIGHT_MAGIC {
            h.put_u8(b);
        }
        h.put_u32(FLIGHT_VERSION);
        h.put_u64(payload.len() as u64);
        h.put_u64(fnv1a64(&payload));
        let mut bytes = h.finish();
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Decodes and fully validates a bundle: magic, version, length,
    /// checksum, field-level decode, and content-fingerprint agreement.
    ///
    /// # Errors
    ///
    /// A [`FlightError`] naming the first validation layer that failed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FlightError> {
        if bytes.len() < HEADER_LEN {
            return Err(FlightError::Truncated("header"));
        }
        if bytes[..4] != FLIGHT_MAGIC {
            return Err(FlightError::BadMagic);
        }
        let mut h = ByteReader::new(&bytes[4..HEADER_LEN]);
        let version = h.get_u32().ok_or(FlightError::Truncated("header"))?;
        if version != FLIGHT_VERSION {
            return Err(FlightError::BadVersion(version));
        }
        let payload_len = h.get_u64().ok_or(FlightError::Truncated("header"))?;
        let checksum = h.get_u64().ok_or(FlightError::Truncated("header"))?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != payload_len {
            return Err(FlightError::LengthMismatch {
                expected: payload_len,
                got: payload.len() as u64,
            });
        }
        if fnv1a64(payload) != checksum {
            return Err(FlightError::ChecksumMismatch);
        }
        let mut r = ByteReader::new(payload);
        let content_hash = r.get_u64().ok_or(FlightError::Truncated("content_hash"))?;
        let topology_hash = r.get_u64().ok_or(FlightError::Truncated("topology_hash"))?;
        let analysis = get_str(&mut r, "analysis")?;
        let error = match r.get_u8().ok_or(FlightError::Truncated("error"))? {
            0 => None,
            _ => {
                let tag = r.get_u8().ok_or(FlightError::Truncated("error"))?;
                Some((tag, get_str(&mut r, "error")?))
            }
        };
        let netlist = get_str(&mut r, "netlist")?;
        let options = NewtonOptions {
            max_iter: r.get_usize().ok_or(FlightError::Truncated("options"))?,
            sparse_threshold: r.get_usize().ok_or(FlightError::Truncated("options"))?,
            vntol: r.get_f64().ok_or(FlightError::Truncated("options"))?,
            reltol: r.get_f64().ok_or(FlightError::Truncated("options"))?,
            abstol: r.get_f64().ok_or(FlightError::Truncated("options"))?,
            max_step: r.get_f64().ok_or(FlightError::Truncated("options"))?,
            gmin: r.get_f64().ok_or(FlightError::Truncated("options"))?,
            warm_start_from_analysis: r.get_u8().ok_or(FlightError::Truncated("options"))? != 0,
            cache: r.get_u8().ok_or(FlightError::Truncated("options"))? != 0,
        };
        let seed = match r.get_u8().ok_or(FlightError::Truncated("seed"))? {
            0 => None,
            _ => Some(r.get_u64().ok_or(FlightError::Truncated("seed"))?),
        };
        let trajectory = r
            .get_f64_vec()
            .ok_or(FlightError::Truncated("trajectory"))?;
        let n_events = r.get_usize().ok_or(FlightError::Truncated("events"))?;
        if n_events > r.remaining() {
            return Err(FlightError::Truncated("events"));
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(get_event(&mut r)?);
        }
        let events_dropped = r
            .get_u64()
            .ok_or(FlightError::Truncated("events_dropped"))?;
        let fingerprint = r.get_u64().ok_or(FlightError::Truncated("fingerprint"))?;
        let report_json = get_str(&mut r, "report_json")?;
        if !r.exhausted() {
            return Err(FlightError::Truncated("trailing bytes"));
        }
        let bundle = FlightBundle {
            version,
            content_hash,
            topology_hash,
            analysis,
            error,
            netlist,
            options,
            seed,
            trajectory,
            events,
            events_dropped,
            fingerprint,
            report_json,
        };
        let computed = bundle.content_fingerprint();
        if computed != fingerprint {
            return Err(FlightError::FingerprintMismatch {
                stored: fingerprint,
                computed,
            });
        }
        Ok(bundle)
    }

    /// Reads and validates a bundle file.
    ///
    /// # Errors
    ///
    /// [`FlightError::Io`] for filesystem failures, otherwise the first
    /// failing validation layer.
    pub fn read(path: &Path) -> Result<Self, FlightError> {
        let bytes = std::fs::read(path).map_err(|e| FlightError::Io(e.to_string()))?;
        FlightBundle::from_bytes(&bytes)
    }

    /// Whether `other` matches the recorded residual trajectory
    /// bit-for-bit (the replay check's acceptance predicate).
    #[must_use]
    pub fn trajectory_matches(&self, other: &[f64]) -> bool {
        self.trajectory.len() == other.len()
            && self
                .trajectory
                .iter()
                .zip(other)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Renders the bundle for inspection (the `cml-lint forensics`
    /// `--json` output). The embedded report JSON is re-parsed so it
    /// nests as a tree rather than an escaped string.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let report: Value =
            serde_json::from_str(&self.report_json).unwrap_or(Value::Str(self.report_json.clone()));
        Value::Obj(vec![
            (
                "schema".into(),
                Value::Str(format!("cml-flight-v{}", self.version)),
            ),
            (
                "content_hash".into(),
                Value::Str(format!("{:016x}", self.content_hash)),
            ),
            (
                "topology_hash".into(),
                Value::Str(format!("{:016x}", self.topology_hash)),
            ),
            ("analysis".into(), Value::Str(self.analysis.clone())),
            (
                "error".into(),
                match &self.error {
                    None => Value::Null,
                    Some((tag, msg)) => Value::Obj(vec![
                        ("tag".into(), Value::Num(f64::from(*tag))),
                        ("message".into(), Value::Str(msg.clone())),
                    ]),
                },
            ),
            (
                "options".into(),
                Value::Obj(vec![
                    ("max_iter".into(), Value::Num(self.options.max_iter as f64)),
                    (
                        "sparse_threshold".into(),
                        Value::Num(self.options.sparse_threshold as f64),
                    ),
                    ("vntol".into(), Value::Num(self.options.vntol)),
                    ("reltol".into(), Value::Num(self.options.reltol)),
                    ("abstol".into(), Value::Num(self.options.abstol)),
                    ("max_step".into(), Value::Num(self.options.max_step)),
                    ("gmin".into(), Value::Num(self.options.gmin)),
                    (
                        "warm_start_from_analysis".into(),
                        Value::Bool(self.options.warm_start_from_analysis),
                    ),
                    ("cache".into(), Value::Bool(self.options.cache)),
                ]),
            ),
            (
                "seed".into(),
                match self.seed {
                    None => Value::Null,
                    Some(s) => Value::Num(s as f64),
                },
            ),
            (
                "residual_trajectory".into(),
                Value::Arr(self.trajectory.iter().map(|&r| Value::Num(r)).collect()),
            ),
            (
                "events".into(),
                Value::Arr(self.events.iter().map(Event::to_value).collect()),
            ),
            (
                "events_dropped".into(),
                Value::Num(self.events_dropped as f64),
            ),
            (
                "fingerprint".into(),
                Value::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("netlist_lines".into(), {
                Value::Num(self.netlist.lines().count() as f64)
            }),
            ("report".into(), report),
        ])
    }
}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

/// Programmatic destination override (tests and embedding services use
/// this instead of mutating the process environment).
fn dir_override() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Installs (or clears) a process-wide flight directory override that
/// wins over [`FLIGHT_DIR_ENV`].
pub fn set_dir(dir: Option<PathBuf>) {
    if let Ok(mut guard) = dir_override().lock() {
        *guard = dir;
    }
}

/// The directory bundles are written to, if any: the [`set_dir`]
/// override first, else [`FLIGHT_DIR_ENV`] (consulted per call, so a
/// service can enable the recorder at runtime).
#[must_use]
pub fn active_dir() -> Option<PathBuf> {
    if let Ok(guard) = dir_override().lock() {
        if let Some(dir) = guard.as_ref() {
            return Some(dir.clone());
        }
    }
    match std::env::var(FLIGHT_DIR_ENV) {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// Workload RNG seed attached to subsequent bundles (yield/Monte-Carlo
/// drivers install theirs so a failing trial is re-runnable).
fn seed_slot() -> &'static Mutex<Option<u64>> {
    static SEED: OnceLock<Mutex<Option<u64>>> = OnceLock::new();
    SEED.get_or_init(|| Mutex::new(None))
}

/// Installs (or clears) the workload seed recorded in bundles.
pub fn set_seed(seed: Option<u64>) {
    if let Ok(mut guard) = seed_slot().lock() {
        *guard = seed;
    }
}

fn current_seed() -> Option<u64> {
    seed_slot().lock().ok().and_then(|g| *g)
}

/// Monotone dump counter, part of the bundle filename so concurrent
/// dumps in one process never collide.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn record(
    ckt: &Circuit,
    opts: &NewtonOptions,
    analysis: &'static str,
    err: Option<&SpiceError>,
    tel: &Telemetry,
) -> Option<PathBuf> {
    let dir = active_dir()?;
    let report_json =
        serde_json::to_string(&tel.report().to_value()).unwrap_or_else(|_| "{}".to_string());
    let bundle = FlightBundle {
        version: FLIGHT_VERSION,
        content_hash: ckt.content_hash(),
        topology_hash: ckt.topology_hash(),
        analysis: analysis.to_string(),
        error: err.map(|e| (error_tag(e), e.to_string())),
        netlist: ckt.netlist(),
        options: *opts,
        seed: current_seed(),
        trajectory: tel.residual_trajectory(),
        events: tel.events_snapshot(),
        events_dropped: tel.events_dropped(),
        fingerprint: 0, // recomputed by to_bytes
        report_json,
    };
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = format!(
        "flight-{analysis}-{:016x}-{}-{seq}.{FLIGHT_EXT}",
        bundle.content_hash,
        std::process::id()
    );
    let write = || -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, bundle.to_bytes())?;
        let dst = dir.join(&name);
        std::fs::rename(&tmp, &dst)?;
        Ok(dst)
    };
    match write() {
        Ok(path) => {
            tel.count(|c| c.flight_dumps += 1);
            Some(path)
        }
        Err(e) => {
            // A forensic dump must never escalate the original failure.
            warn_once(
                "flight-dump-failed",
                &format!("could not write flight bundle to {}: {e}", dir.display()),
            );
            None
        }
    }
}

/// Dumps a forensic bundle for a failed solve. No-op (returns `None`)
/// unless a flight directory is configured; also returns `None` if the
/// dump itself fails (with a [`warn_once`] — a recorder failure must
/// never mask the solver error it was recording).
pub fn record_failure(
    ckt: &Circuit,
    opts: &NewtonOptions,
    analysis: &'static str,
    err: &SpiceError,
    tel: &Telemetry,
) -> Option<PathBuf> {
    record(ckt, opts, analysis, Some(err), tel)
}

/// Dumps an on-demand bundle of the current solver state (no error) —
/// the "press the button now" half of `CML_FLIGHT_DIR`.
pub fn record_snapshot(
    ckt: &Circuit,
    opts: &NewtonOptions,
    analysis: &'static str,
    tel: &Telemetry,
) -> Option<PathBuf> {
    record(ckt, opts, analysis, None, tel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> FlightBundle {
        FlightBundle {
            version: FLIGHT_VERSION,
            content_hash: 0xdead_beef_cafe_f00d,
            topology_hash: 0x0123_4567_89ab_cdef,
            analysis: "op".to_string(),
            error: Some((0, "newton: op failed".to_string())),
            netlist: "* test\nV1 in 0 DC 1\nR1 in 0 1k\n.end\n".to_string(),
            options: NewtonOptions {
                max_iter: 3,
                ..NewtonOptions::default()
            },
            seed: Some(42),
            trajectory: vec![1.5, 0.3, 0.07],
            events: vec![Event {
                seq: 0,
                t_ns: 123,
                tid: 0,
                kind: EventKind::NewtonDiverged {
                    analysis: "op".into(),
                    iterations: 3,
                    residual: 0.07,
                },
            }],
            events_dropped: 2,
            fingerprint: 0,
            report_json: "{\"schema\":\"cml-telemetry-v1\"}".to_string(),
        }
    }

    #[test]
    fn bundle_roundtrips() {
        let b = sample_bundle();
        let bytes = b.to_bytes();
        let decoded = FlightBundle::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.content_hash, b.content_hash);
        assert_eq!(decoded.analysis, "op");
        assert_eq!(decoded.error, b.error);
        assert_eq!(decoded.netlist, b.netlist);
        assert_eq!(decoded.options.max_iter, 3);
        assert_eq!(decoded.seed, Some(42));
        assert!(decoded.trajectory_matches(&[1.5, 0.3, 0.07]));
        assert_eq!(decoded.events, b.events);
        assert_eq!(decoded.events_dropped, 2);
        assert_eq!(decoded.fingerprint, b.content_fingerprint());
    }

    #[test]
    fn fingerprint_ignores_timestamps() {
        let a = sample_bundle();
        let mut b = sample_bundle();
        b.events[0].t_ns = 999_999;
        b.report_json = "{\"schema\":\"cml-telemetry-v1\",\"other\":1}".to_string();
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        let mut c = sample_bundle();
        c.trajectory[1] = 0.300_000_001;
        assert_ne!(a.content_fingerprint(), c.content_fingerprint());
    }

    #[test]
    fn corruption_is_typed() {
        let bytes = sample_bundle().to_bytes();
        assert_eq!(
            FlightBundle::from_bytes(&bytes[..10]),
            Err(FlightError::Truncated("header"))
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            FlightBundle::from_bytes(&bad_magic),
            Err(FlightError::BadMagic)
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            FlightBundle::from_bytes(&bad_version),
            Err(FlightError::BadVersion(99))
        );
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert_eq!(
            FlightBundle::from_bytes(&flipped),
            Err(FlightError::ChecksumMismatch)
        );
        let truncated = &bytes[..bytes.len() - 8];
        assert!(matches!(
            FlightBundle::from_bytes(truncated),
            Err(FlightError::LengthMismatch { .. })
        ));
    }
}
