//! Time-domain source waveforms.
//!
//! Every independent source carries a [`Waveform`] evaluated at each
//! transient timestep; DC analyses use [`Waveform::dc_value`]. The PWL
//! variant is the bridge from the `cml-sig` PRBS generators: bit patterns
//! are rendered to edges there and handed to the simulator as PWL points.

/// A source waveform description.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Periodic trapezoidal pulse, SPICE `PULSE(...)` semantics.
    Pulse {
        /// Initial (low) value.
        v1: f64,
        /// Pulsed (high) value.
        v2: f64,
        /// Delay before the first rising edge, seconds.
        delay: f64,
        /// Rise time, seconds (must be > 0).
        rise: f64,
        /// Fall time, seconds (must be > 0).
        fall: f64,
        /// Time spent at `v2` per period, seconds.
        width: f64,
        /// Full period, seconds.
        period: f64,
    },
    /// Sinusoid `offset + ampl·sin(2πf(t-delay))`, zero before `delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
    },
    /// Piecewise-linear waveform through `(time, value)` points; holds the
    /// first value before the first point and the last value after the
    /// last point. Times must be strictly increasing.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Constant waveform helper.
    #[must_use]
    pub fn dc(v: f64) -> Self {
        Waveform::Dc(v)
    }

    /// A single rising step from `v1` to `v2` at time `t0` with rise time `tr`.
    #[must_use]
    pub fn step(v1: f64, v2: f64, t0: f64, tr: f64) -> Self {
        Waveform::Pwl(vec![(0.0, v1), (t0, v1), (t0 + tr, v2)])
    }

    /// A 50 %-duty clock of the given frequency and swing.
    ///
    /// `rise` is used for both edges; the first rising edge starts at `t=0`.
    #[must_use]
    pub fn clock(v_low: f64, v_high: f64, freq: f64, rise: f64) -> Self {
        let period = 1.0 / freq;
        Waveform::Pulse {
            v1: v_low,
            v2: v_high,
            delay: 0.0,
            rise,
            fall: rise,
            width: period / 2.0 - rise,
            period,
        }
    }

    /// Value used by DC analyses: the waveform evaluated at `t = 0⁻`
    /// (i.e. its initial value).
    #[must_use]
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v1, .. } => *v1,
            Waveform::Sine { offset, .. } => *offset,
            Waveform::Pwl(pts) => pts.first().map_or(0.0, |p| p.1),
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let tau = (t - delay) % period;
                if tau < *rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 - (v2 - v1) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Waveform::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            Waveform::Pwl(pts) => {
                if pts.is_empty() {
                    return 0.0;
                }
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                if t >= pts[pts.len() - 1].0 {
                    return pts[pts.len() - 1].1;
                }
                // Binary search for the bracketing segment.
                let idx = pts.partition_point(|p| p.0 <= t);
                let (t0, v0) = pts[idx - 1];
                let (t1, v1) = pts[idx];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
        }
    }

    /// The earliest time after which the waveform changes — used to seed
    /// transient breakpoint handling. `None` for DC.
    #[must_use]
    pub fn first_breakpoint(&self) -> Option<f64> {
        match self {
            Waveform::Dc(_) => None,
            Waveform::Pulse { delay, .. } => Some(*delay),
            Waveform::Sine { delay, .. } => Some(*delay),
            Waveform::Pwl(pts) => pts.first().map(|p| p.0),
        }
    }

    /// Appends every slope discontinuity in `[0, t_stop]` to `out`: PWL
    /// knots, the four corners of each pulse period, the start of a
    /// delayed sinusoid. The adaptive transient controller lands a step
    /// exactly on each of these so source corners are never straddled.
    pub fn breakpoints(&self, t_stop: f64, out: &mut Vec<f64>) {
        // Cap runaway periodic sources; past this the controller's own
        // rejection logic is cheaper than an edge list.
        const MAX_PERIODS: usize = 100_000;
        match self {
            Waveform::Dc(_) => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                if *period <= 0.0 {
                    return;
                }
                let mut start = *delay;
                for _ in 0..MAX_PERIODS {
                    if start > t_stop {
                        break;
                    }
                    for corner in [
                        start,
                        start + rise,
                        start + rise + width,
                        start + rise + width + fall,
                    ] {
                        if (0.0..=t_stop).contains(&corner) {
                            out.push(corner);
                        }
                    }
                    start += period;
                }
            }
            Waveform::Sine { delay, .. } => {
                if (0.0..=t_stop).contains(delay) && *delay > 0.0 {
                    out.push(*delay);
                }
            }
            Waveform::Pwl(pts) => {
                out.extend(
                    pts.iter()
                        .map(|p| p.0)
                        .filter(|t| (0.0..=t_stop).contains(t)),
                );
            }
        }
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Dc(0.0)
    }
}

impl From<f64> for Waveform {
    fn from(v: f64) -> Self {
        Waveform::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = Waveform::dc(1.8);
        assert_eq!(w.eval(0.0), 1.8);
        assert_eq!(w.eval(1e-3), 1.8);
        assert_eq!(w.dc_value(), 1.8);
    }

    #[test]
    fn pulse_phases() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 4e-10,
            period: 1e-9,
        };
        assert_eq!(w.eval(0.0), 0.0); // before delay
        assert!((w.eval(1e-9 + 5e-11) - 0.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.eval(1e-9 + 3e-10), 1.0); // on top
        let falling = w.eval(1e-9 + 1e-10 + 4e-10 + 5e-11);
        assert!((falling - 0.5).abs() < 1e-9); // mid-fall
        assert_eq!(w.eval(1e-9 + 9e-10), 0.0); // back low
                                               // Periodicity.
        assert!((w.eval(1e-9 + 5e-11) - w.eval(2e-9 + 5e-11)).abs() < 1e-9);
    }

    #[test]
    fn sine_quadrature_points() {
        let w = Waveform::Sine {
            offset: 0.5,
            ampl: 0.25,
            freq: 1e9,
            delay: 0.0,
        };
        assert!((w.eval(0.0) - 0.5).abs() < 1e-12);
        assert!((w.eval(0.25e-9) - 0.75).abs() < 1e-9);
        assert!((w.eval(0.75e-9) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn sine_holds_offset_before_delay() {
        let w = Waveform::Sine {
            offset: 1.0,
            ampl: 1.0,
            freq: 1e9,
            delay: 1e-9,
        };
        assert_eq!(w.eval(0.5e-9), 1.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 10.0), (4.0, -10.0)]);
        assert_eq!(w.eval(0.0), 0.0); // clamp before
        assert!((w.eval(1.5) - 5.0).abs() < 1e-12);
        assert!((w.eval(3.0) - 0.0).abs() < 1e-12);
        assert_eq!(w.eval(9.0), -10.0); // clamp after
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn step_reaches_target() {
        let w = Waveform::step(0.0, 1.0, 1e-9, 1e-10);
        assert_eq!(w.eval(0.5e-9), 0.0);
        assert_eq!(w.eval(2e-9), 1.0);
        assert!((w.eval(1.05e-9) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clock_has_half_duty() {
        let w = Waveform::clock(0.0, 1.0, 1e9, 1e-11);
        // Sample densely over one period and check duty ≈ 50 %.
        let n = 10_000;
        let high = (0..n)
            .filter(|&i| w.eval(i as f64 / n as f64 * 1e-9) > 0.5)
            .count();
        let duty = high as f64 / n as f64;
        assert!((duty - 0.5).abs() < 0.03, "duty = {duty}");
    }

    #[test]
    fn from_f64_creates_dc() {
        let w: Waveform = 3.3.into();
        assert_eq!(w, Waveform::Dc(3.3));
    }

    #[test]
    fn breakpoints() {
        assert_eq!(Waveform::dc(1.0).first_breakpoint(), None);
        assert_eq!(
            Waveform::step(0.0, 1.0, 2e-9, 1e-10).first_breakpoint(),
            Some(0.0)
        );
    }
}
