use cml_numeric::NumericError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// Newton iteration failed to converge within the iteration limit,
    /// even after gmin/source-stepping homotopies.
    NoConvergence {
        /// Which analysis failed (`"op"`, `"tran"`, …).
        analysis: &'static str,
        /// Iterations spent in the final attempt.
        iterations: usize,
        /// Worst residual seen in the final iteration.
        residual: f64,
    },
    /// The MNA matrix was singular — typically a floating node or a loop
    /// of voltage sources.
    Singular {
        /// Human-readable hint about the failing unknown, when known.
        detail: String,
    },
    /// A named element or node was not found.
    NotFound {
        /// What was looked up.
        what: &'static str,
        /// The name used.
        name: String,
    },
    /// An element parameter was out of its valid range.
    InvalidParameter {
        /// Element name.
        element: String,
        /// Explanation of the violation.
        message: String,
    },
    /// Analysis configuration was invalid (e.g. zero timestep).
    InvalidConfig {
        /// Explanation of the violation.
        message: String,
    },
    /// An underlying numeric kernel failed in a way not covered above.
    Numeric(NumericError),
    /// The pre-simulation lint precheck found error-level structural
    /// defects; the solve was not attempted. Set `CML_LINT=off` to
    /// bypass the precheck (the solve will then typically fail with
    /// [`SpiceError::Singular`] instead, without the diagnosis).
    LintRejected {
        /// The error-level diagnostics, sorted as in
        /// [`crate::lint::LintReport`].
        diagnostics: Vec<crate::lint::Diagnostic>,
    },
    /// An internal invariant of the analysis engine was violated — a bug
    /// in the simulator, not in the user's circuit.
    Internal {
        /// Description of the broken invariant.
        message: String,
    },
    /// An I/O operation inside a waveform sink failed (e.g. the spill
    /// sink could not write its file). Stringified rather than wrapping
    /// [`std::io::Error`] so the error type stays `Clone + PartialEq`.
    Io {
        /// What the sink was doing (`"spill write"`, `"checkpoint"`, …).
        context: &'static str,
        /// The underlying I/O error, stringified.
        message: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NoConvergence {
                analysis,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} analysis failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            SpiceError::Singular { detail } => {
                write!(f, "singular mna system: {detail}")
            }
            SpiceError::NotFound { what, name } => write!(f, "{what} '{name}' not found"),
            SpiceError::InvalidParameter { element, message } => {
                write!(f, "invalid parameter on '{element}': {message}")
            }
            SpiceError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            SpiceError::Numeric(e) => write!(f, "numeric error: {e}"),
            SpiceError::LintRejected { diagnostics } => {
                write!(
                    f,
                    "netlist rejected by pre-simulation lint ({} error(s); CML_LINT=off to bypass)",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            SpiceError::Internal { message } => {
                write!(f, "internal simulator error: {message}")
            }
            SpiceError::Io { context, message } => {
                write!(f, "i/o error during {context}: {message}")
            }
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl SpiceError {
    /// Wraps an [`std::io::Error`] from a waveform sink.
    #[must_use]
    pub fn io(context: &'static str, e: &std::io::Error) -> Self {
        SpiceError::Io {
            context,
            message: e.to_string(),
        }
    }
}

impl From<NumericError> for SpiceError {
    fn from(e: NumericError) -> Self {
        match e {
            NumericError::SingularMatrix { column, pivot } => SpiceError::Singular {
                detail: format!("no pivot for unknown {column} (best {pivot:.1e})"),
            },
            other => SpiceError::Numeric(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SpiceError::NoConvergence {
            analysis: "op",
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("op"));
        let e = SpiceError::NotFound {
            what: "node",
            name: "vdd".into(),
        };
        assert_eq!(e.to_string(), "node 'vdd' not found");
    }

    #[test]
    fn singular_numeric_maps_to_singular() {
        let n = NumericError::SingularMatrix {
            column: 2,
            pivot: 0.0,
        };
        assert!(matches!(SpiceError::from(n), SpiceError::Singular { .. }));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
