//! The element interface: how devices stamp themselves into the MNA system.
//!
//! Every circuit element implements [`Element`]. During each Newton
//! iteration the analysis drivers call [`Element::stamp`] with the current
//! solution guess; linear elements stamp constants, nonlinear elements stamp
//! their linearization (Norton companion form, exactly as SPICE does).
//! Reactive elements additionally keep per-element state (previous voltage /
//! current) in a flat arena owned by the analysis, sliced per element.

use crate::circuit::NodeId;
use cml_numeric::sparse::CsrMatrix;
use cml_numeric::{Complex64, ComplexMatrix, DenseMatrix};
use std::fmt;

/// Numerical integration method for transient companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// Trapezoidal rule — second-order, the SPICE default.
    #[default]
    Trapezoidal,
    /// Backward Euler — first-order, more damped; useful for circuits with
    /// trapezoidal ringing artifacts.
    BackwardEuler,
}

/// What kind of solve the current stamp call belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StampMode {
    /// DC solve (operating point, DC sweep, or transient initial condition).
    Dc {
        /// Scale factor applied to all independent sources (source
        /// stepping homotopy uses values < 1).
        source_scale: f64,
        /// When `Some(t)`, sources evaluate their waveform at `t` instead
        /// of their DC value (used for the transient initial solution).
        at_time: Option<f64>,
    },
    /// One timestep of transient analysis.
    Tran {
        /// Absolute time of the step being solved (end of the interval).
        time: f64,
        /// Step size.
        dt: f64,
        /// Companion-model integration method.
        method: Integration,
    },
}

impl StampMode {
    /// Plain DC mode with full sources.
    #[must_use]
    pub fn dc() -> Self {
        StampMode::Dc {
            source_scale: 1.0,
            at_time: None,
        }
    }
}

/// Per-element context for a stamp call.
#[derive(Debug)]
pub struct StampCtx<'a> {
    /// Current Newton guess: node voltages followed by branch currents.
    pub x: &'a [f64],
    /// This element's slice of previous-timestep state (empty outside
    /// transient analysis or for stateless elements).
    pub state: &'a [f64],
    /// First branch-current unknown allocated to this element (offset into
    /// the branch region; see [`Stamper::branch`]).
    pub branch_base: usize,
    /// Number of non-ground nodes in the system (`x[n_nodes..]` are the
    /// branch currents).
    pub n_nodes: usize,
    /// Analysis mode.
    pub mode: StampMode,
}

impl StampCtx<'_> {
    /// Voltage of `node` under the current guess (0 for ground).
    #[must_use]
    pub fn v(&self, node: NodeId) -> f64 {
        match node.index() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Absolute index into `x` of this element's first branch current.
    #[must_use]
    pub fn branch_base_abs(&self) -> usize {
        self.n_nodes + self.branch_base
    }
}

/// Cached stamp-pointer sequence for one sparse assembly pass.
///
/// While stamping into a [`CsrMatrix`], the stamper records the flat
/// value-slot of every matrix write in call order. On the next pass over
/// the same elements, each write is satisfied by the cached slot after a
/// cheap `(row, col)` check — no binary search, no triplet rebuild. A
/// mismatch (e.g. a MOSFET reordering its drain/source writes between
/// Newton iterations) self-heals via binary search on the CSR row, so
/// correctness never depends on the cache being right.
#[derive(Debug, Default, Clone)]
pub struct StampSlots {
    seq: Vec<(usize, usize, usize)>,
    cursor: usize,
    missing: bool,
}

impl StampSlots {
    /// Starts a new assembly pass at the head of the cached sequence.
    pub fn begin_pass(&mut self) {
        self.cursor = 0;
        self.missing = false;
    }

    /// Whether a write in the last pass hit a position absent from the
    /// matrix pattern — the signal for the analysis driver to rebuild
    /// the pattern (or fall back to dense assembly).
    #[must_use]
    pub fn missing(&self) -> bool {
        self.missing
    }

    /// Drops the cached sequence (used when the pattern is rebuilt).
    pub fn clear(&mut self) {
        self.seq.clear();
        self.cursor = 0;
        self.missing = false;
    }
}

/// Where matrix writes of a [`Stamper`] go.
#[derive(Debug)]
enum MatSink<'a> {
    /// Discard matrix writes (RHS-only assembly over a cached Jacobian).
    Discard,
    /// Accumulate into a dense MNA matrix.
    Dense(&'a mut DenseMatrix),
    /// Record `(row, col)` of every write; values are discarded. Used
    /// once per topology to discover the sparsity pattern.
    Pattern(&'a mut Vec<(usize, usize)>),
    /// Accumulate into the reserved slots of a fixed-pattern CSR matrix,
    /// with stamp-pointer caching through `slots`.
    Sparse {
        mat: &'a mut CsrMatrix,
        slots: &'a mut StampSlots,
    },
}

/// Write access to the real MNA matrix and right-hand side, with
/// ground-aware indexing.
///
/// The matrix side is pluggable: analyses that have a still-valid cached
/// Jacobian (see factorization reuse in `analysis`) construct the stamper
/// with [`Stamper::rhs_only`] and every matrix write is dropped; the
/// sparse solve path uses [`Stamper::pattern`] once per topology and
/// [`Stamper::sparse`] on every subsequent assembly.
#[derive(Debug)]
pub struct Stamper<'a> {
    matrix: MatSink<'a>,
    rhs: &'a mut [f64],
    n_nodes: usize,
}

impl<'a> Stamper<'a> {
    /// Creates a stamper over an MNA system with `n_nodes` non-ground nodes.
    pub fn new(matrix: &'a mut DenseMatrix, rhs: &'a mut [f64], n_nodes: usize) -> Self {
        Stamper {
            matrix: MatSink::Dense(matrix),
            rhs,
            n_nodes,
        }
    }

    /// Creates a stamper that assembles only the right-hand side,
    /// discarding matrix writes (used when a cached factorization of the
    /// unchanged Jacobian is being reused).
    pub fn rhs_only(rhs: &'a mut [f64], n_nodes: usize) -> Self {
        Stamper {
            matrix: MatSink::Discard,
            rhs,
            n_nodes,
        }
    }

    /// Creates a stamper that records the `(row, col)` position of every
    /// matrix write into `positions` instead of accumulating values —
    /// the pattern-discovery pass of the sparse solve path.
    pub fn pattern(
        positions: &'a mut Vec<(usize, usize)>,
        rhs: &'a mut [f64],
        n_nodes: usize,
    ) -> Self {
        Stamper {
            matrix: MatSink::Pattern(positions),
            rhs,
            n_nodes,
        }
    }

    /// Creates a stamper that accumulates matrix writes directly into the
    /// reserved nonzero slots of `matrix` (a fixed-pattern CSR built by
    /// the analysis), using — and maintaining — the stamp-pointer cache
    /// in `slots`. Call [`StampSlots::begin_pass`] before each assembly.
    pub fn sparse(
        matrix: &'a mut CsrMatrix,
        slots: &'a mut StampSlots,
        rhs: &'a mut [f64],
        n_nodes: usize,
    ) -> Self {
        Stamper {
            matrix: MatSink::Sparse { mat: matrix, slots },
            rhs,
            n_nodes,
        }
    }

    /// Row/column index of a branch unknown.
    #[must_use]
    pub fn branch(&self, branch: usize) -> usize {
        self.n_nodes + branch
    }

    /// Adds `v` at matrix position (`r`, `c`); either index may be a ground
    /// node (`None`), in which case the write is dropped. In rhs-only mode
    /// all matrix writes are dropped.
    pub fn mat(&mut self, r: Option<usize>, c: Option<usize>, v: f64) {
        let (Some(r), Some(c)) = (r, c) else { return };
        match &mut self.matrix {
            MatSink::Discard => {}
            MatSink::Dense(m) => m[(r, c)] += v,
            MatSink::Pattern(p) => p.push((r, c)),
            MatSink::Sparse { mat, slots } => {
                let cur = slots.cursor;
                if let Some(&(er, ec, es)) = slots.seq.get(cur) {
                    if er == r && ec == c {
                        mat.vals_mut()[es] += v;
                        slots.cursor = cur + 1;
                        return;
                    }
                }
                // Cache miss: the write order changed since the cache was
                // recorded. Repair this position and keep going.
                match mat.find(r, c) {
                    Some(s) => {
                        mat.vals_mut()[s] += v;
                        if cur < slots.seq.len() {
                            slots.seq[cur] = (r, c, s);
                        } else {
                            slots.seq.push((r, c, s));
                        }
                        slots.cursor = cur + 1;
                    }
                    None => slots.missing = true,
                }
            }
        }
    }

    /// Adds `v` to the RHS at row `r` (ignored for ground).
    pub fn rhs(&mut self, r: Option<usize>, v: f64) {
        if let Some(r) = r {
            self.rhs[r] += v;
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b` (standard
    /// two-terminal pattern).
    pub fn conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        self.mat(a, a, g);
        self.mat(b, b, g);
        self.mat(a, b, -g);
        self.mat(b, a, -g);
    }

    /// Stamps a current source of value `i` flowing from node `a` through
    /// the element to node `b` (SPICE convention: `i` leaves `a`, enters `b`).
    pub fn current_source(&mut self, a: Option<usize>, b: Option<usize>, i: f64) {
        self.rhs(a, -i);
        self.rhs(b, i);
    }
}

/// Where matrix writes of an [`AcStamper`] go — the complex mirror of
/// [`MatSink`], minus the discard mode (AC has no RHS-only reuse: the
/// matrix changes at every frequency).
#[derive(Debug)]
enum AcMatSink<'a> {
    /// Accumulate into a dense complex MNA matrix.
    Dense(&'a mut ComplexMatrix),
    /// Record `(row, col)` of every write; values are discarded. Used
    /// once per topology to discover the frequency-independent union
    /// pattern of `G + jωC`.
    Pattern(&'a mut Vec<(usize, usize)>),
    /// Accumulate into the reserved slots of a fixed-pattern complex CSR
    /// matrix, with stamp-pointer caching through `slots`.
    Sparse {
        mat: &'a mut CsrMatrix<Complex64>,
        slots: &'a mut StampSlots,
    },
}

/// Write access to the complex small-signal MNA system.
///
/// Like [`Stamper`], the matrix side is pluggable: the sparse AC path
/// discovers the stamp pattern once per topology via
/// [`AcStamper::pattern`] and then re-stamps values into the reserved
/// CSR slots via [`AcStamper::sparse`] at every frequency point.
#[derive(Debug)]
pub struct AcStamper<'a> {
    matrix: AcMatSink<'a>,
    rhs: &'a mut [Complex64],
    n_nodes: usize,
}

impl<'a> AcStamper<'a> {
    /// Creates an AC stamper over a system with `n_nodes` non-ground nodes.
    pub fn new(matrix: &'a mut ComplexMatrix, rhs: &'a mut [Complex64], n_nodes: usize) -> Self {
        AcStamper {
            matrix: AcMatSink::Dense(matrix),
            rhs,
            n_nodes,
        }
    }

    /// Creates an AC stamper that records the `(row, col)` position of
    /// every matrix write into `positions` instead of accumulating values
    /// — the pattern-discovery pass of the sparse AC path. The recorded
    /// union pattern is frequency-independent because every element
    /// writes its full `G + jωC` footprint regardless of `omega`.
    pub fn pattern(
        positions: &'a mut Vec<(usize, usize)>,
        rhs: &'a mut [Complex64],
        n_nodes: usize,
    ) -> Self {
        AcStamper {
            matrix: AcMatSink::Pattern(positions),
            rhs,
            n_nodes,
        }
    }

    /// Creates an AC stamper that accumulates matrix writes directly into
    /// the reserved nonzero slots of `matrix` (a fixed-pattern complex
    /// CSR built by the analysis), using — and maintaining — the
    /// stamp-pointer cache in `slots`. Call [`StampSlots::begin_pass`]
    /// before each assembly.
    pub fn sparse(
        matrix: &'a mut CsrMatrix<Complex64>,
        slots: &'a mut StampSlots,
        rhs: &'a mut [Complex64],
        n_nodes: usize,
    ) -> Self {
        AcStamper {
            matrix: AcMatSink::Sparse { mat: matrix, slots },
            rhs,
            n_nodes,
        }
    }

    /// Row/column index of a branch unknown.
    #[must_use]
    pub fn branch(&self, branch: usize) -> usize {
        self.n_nodes + branch
    }

    /// Adds `v` at (`r`, `c`), dropping ground writes.
    pub fn mat(&mut self, r: Option<usize>, c: Option<usize>, v: Complex64) {
        let (Some(r), Some(c)) = (r, c) else { return };
        match &mut self.matrix {
            AcMatSink::Dense(m) => m[(r, c)] += v,
            AcMatSink::Pattern(p) => p.push((r, c)),
            AcMatSink::Sparse { mat, slots } => {
                let cur = slots.cursor;
                if let Some(&(er, ec, es)) = slots.seq.get(cur) {
                    if er == r && ec == c {
                        mat.vals_mut()[es] += v;
                        slots.cursor = cur + 1;
                        return;
                    }
                }
                // Cache miss: repair this position and keep going, as in
                // the real-valued stamper.
                match mat.find(r, c) {
                    Some(s) => {
                        mat.vals_mut()[s] += v;
                        if cur < slots.seq.len() {
                            slots.seq[cur] = (r, c, s);
                        } else {
                            slots.seq.push((r, c, s));
                        }
                        slots.cursor = cur + 1;
                    }
                    None => slots.missing = true,
                }
            }
        }
    }

    /// Adds `v` to the RHS at `r` (dropped for ground).
    pub fn rhs(&mut self, r: Option<usize>, v: Complex64) {
        if let Some(r) = r {
            self.rhs[r] += v;
        }
    }

    /// Stamps a complex admittance `y` between nodes `a` and `b`.
    pub fn admittance(&mut self, a: Option<usize>, b: Option<usize>, y: Complex64) {
        self.mat(a, a, y);
        self.mat(b, b, y);
        self.mat(a, b, -y);
        self.mat(b, a, -y);
    }

    /// Stamps a real conductance between nodes `a` and `b`.
    pub fn conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        self.admittance(a, b, Complex64::from_real(g));
    }

    /// Stamps a capacitance `c` between `a` and `b` at angular frequency `omega`.
    pub fn capacitance(&mut self, a: Option<usize>, b: Option<usize>, c: f64, omega: f64) {
        self.admittance(a, b, Complex64::new(0.0, omega * c));
    }

    /// Stamps a transconductance: current `gm·(v_cp − v_cn)` flowing from
    /// `a` to `b`.
    pub fn transconductance(
        &mut self,
        a: Option<usize>,
        b: Option<usize>,
        cp: Option<usize>,
        cn: Option<usize>,
        gm: f64,
    ) {
        let g = Complex64::from_real(gm);
        self.mat(a, cp, g);
        self.mat(a, cn, -g);
        self.mat(b, cp, -g);
        self.mat(b, cn, g);
    }
}

/// Coarse element classification, used by the netlist linter
/// ([`crate::lint`]) and other diagnostics to reason about an element
/// without downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    /// Linear resistor.
    Resistor,
    /// Linear capacitor.
    Capacitor,
    /// Linear inductor.
    Inductor,
    /// Independent voltage source.
    VoltageSource,
    /// Independent current source.
    CurrentSource,
    /// Voltage-controlled voltage source.
    Vcvs,
    /// Voltage-controlled current source.
    Vccs,
    /// MOSFET device.
    Mosfet,
    /// Diode device.
    Diode,
    /// Anything else (custom or behavioural elements).
    Other,
}

/// How a pair of element terminals is coupled at DC, as seen by the
/// netlist linter's connectivity and loop analyses ([`crate::lint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcCoupling {
    /// A finite, generically nonzero DC conductance links the two nodes
    /// (resistor, diode, MOSFET channel, VCCS output that can hold its
    /// node).
    Conductive(NodeId, NodeId),
    /// The element forces the DC voltage difference between the two
    /// nodes through a branch-current unknown (voltage source, inductor
    /// as a DC short, VCVS output branch). Loops of such couplings make
    /// the MNA system singular.
    VoltageDefined(NodeId, NodeId),
    /// A guess-independent current is pushed between the nodes with no
    /// matrix entries at all (independent current source). Cutsets made
    /// only of such couplings leave the island's potential undefined.
    CurrentInjection(NodeId, NodeId),
}

/// Abstract DC transfer model of an element, consumed by the static
/// analyzer ([`crate::analyze`]).
///
/// Where [`DcCoupling`] answers the linter's *structural* questions (is
/// there a path?), `DcTransfer` carries the *quantitative* model the
/// interval abstract interpretation needs: conductances, source values
/// and full device cards. Elements outside this vocabulary report
/// [`DcTransfer::Opaque`]; the analyzer then refuses to tighten any node
/// they touch (sound, just imprecise) and flags the node `A001`.
#[derive(Debug, Clone)]
pub enum DcTransfer {
    /// Linear conductance `g` siemens between `a` and `b`.
    Conductance {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Conductance, siemens.
        g: f64,
    },
    /// Branch element forcing `v_a − v_b = v` at DC (voltage source with
    /// its DC value, inductor with `v = 0`).
    VoltageDefined {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Forced DC voltage difference, volts.
        v: f64,
    },
    /// Independent DC current `i` flowing from `a` through the element
    /// into `b` (SPICE convention: `i` leaves node `a`).
    CurrentSource {
        /// Terminal the current leaves.
        a: NodeId,
        /// Terminal the current enters.
        b: NodeId,
        /// DC current, amps.
        i: f64,
    },
    /// No DC coupling at all (capacitor).
    Open,
    /// Square-law MOSFET channel between drain and source, gate sensing.
    MosChannel {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Full Level-1 model card.
        params: crate::devices::mosfet::MosParams,
    },
    /// Exponential diode junction from anode to cathode.
    Junction {
        /// Anode.
        a: NodeId,
        /// Cathode.
        k: NodeId,
        /// Diode model card.
        params: crate::devices::diode::DiodeParams,
    },
    /// Element outside the analyzer's vocabulary; nodes it touches keep
    /// their global envelope bounds.
    Opaque,
}

/// A circuit element that can stamp itself into the MNA system.
///
/// Implementors live in [`crate::elements`] and [`crate::devices`]. The
/// trait is object-safe; circuits own elements as `Box<dyn Element>`.
pub trait Element: fmt::Debug + Send + Sync {
    /// Unique name of the element instance (used in diagnostics and for
    /// branch-current lookup).
    fn name(&self) -> &str;

    /// Nodes this element connects to (used for connectivity checks).
    fn nodes(&self) -> Vec<NodeId>;

    /// Number of extra branch-current unknowns this element adds to the
    /// MNA system (voltage sources and inductors need one).
    fn num_branches(&self) -> usize {
        0
    }

    /// Number of `f64` state slots the element needs across transient
    /// timesteps (e.g. capacitor: previous voltage and current).
    fn state_size(&self) -> usize {
        0
    }

    /// Initializes transient state from a converged DC solution `x`.
    fn init_state(&self, _ctx: &StampCtx<'_>, _state: &mut [f64]) {}

    /// Whether this element's stamp depends on the Newton guess `ctx.x`.
    ///
    /// When this returns `false` (the default), the element promises that
    /// its **entire** stamp — matrix *and* RHS — is a function of
    /// `ctx.mode` and `ctx.state` only, never of `ctx.x`. The analysis
    /// drivers exploit the promise to cache linear-element stamps and
    /// reuse matrix factorizations across Newton iterations and
    /// timesteps; a violating element would silently converge to wrong
    /// answers, so nonlinear devices (MOSFET, diode) must override this
    /// to return `true`.
    fn is_nonlinear(&self) -> bool {
        false
    }

    /// Stamps the element's (linearized) contribution for the mode in
    /// `ctx.mode`.
    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>);

    /// Writes the element's next-timestep state after a converged step.
    /// `ctx.x` holds the converged solution; `ctx.state` the previous state.
    fn update_state(&self, _ctx: &StampCtx<'_>, _state_next: &mut [f64]) {}

    /// Appends the times in `[0, t_stop]` at which this element's
    /// behaviour has a corner (PWL knots, pulse edges, …). The adaptive
    /// transient controller lands a step exactly on every breakpoint so
    /// sharp source edges are never straddled by a large step. Stateless
    /// smooth elements keep the empty default.
    fn breakpoints(&self, _t_stop: f64, _out: &mut Vec<f64>) {}

    /// Stamps the small-signal contribution at angular frequency `omega`,
    /// linearized around the operating point `x_op`.
    fn stamp_ac(&self, x_op: &[f64], branch_base: usize, omega: f64, out: &mut AcStamper<'_>);

    /// DC power dissipated by the element at operating point `x_op`, in
    /// watts; `None` when the notion does not apply. Sources report the
    /// power they *deliver* as negative dissipation.
    fn dc_power(&self, _x_op: &[f64], _branch_base: usize) -> Option<f64> {
        None
    }

    /// Coarse classification of this element for diagnostics. Custom
    /// elements may keep the [`ElementKind::Other`] default.
    fn kind(&self) -> ElementKind {
        ElementKind::Other
    }

    /// DC couplings between this element's terminals, consumed by the
    /// netlist linter's connectivity, loop and cutset analyses.
    ///
    /// The default is deliberately generous — every terminal pair is
    /// reported [`DcCoupling::Conductive`] — so that unknown custom
    /// elements can never cause false-positive "no DC path" errors;
    /// genuinely broken topologies are still caught by the structural
    /// rank check, which works from the recorded stamp pattern alone.
    /// Built-in elements override this with their true couplings.
    fn dc_couplings(&self) -> Vec<DcCoupling> {
        let nodes = self.nodes();
        let mut out = Vec::new();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                out.push(DcCoupling::Conductive(nodes[i], nodes[j]));
            }
        }
        out
    }

    /// DC value of an independent source, `None` for everything else.
    /// Used by the linter's bias-path heuristics.
    fn dc_source_value(&self) -> Option<f64> {
        None
    }

    /// Quantitative DC model for the static analyzer ([`crate::analyze`]).
    ///
    /// The default [`DcTransfer::Opaque`] is always sound: the analyzer
    /// treats opaque elements as "could inject anything" and keeps the
    /// global envelope on their nodes. Built-in elements override this
    /// with their true transfer model so interval bounds stay tight.
    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::Opaque
    }

    /// Element-local sanity findings (degenerate connections, dead
    /// sources, implausible parameter magnitudes) as `(code, message)`
    /// pairs; the linter wraps them into full diagnostics. The default
    /// reports nothing.
    fn lint_self(&self) -> Vec<(crate::lint::LintCode, String)> {
        Vec::new()
    }

    /// SPICE-netlist card for this element, using `node_name` to render
    /// node references. The default lists the name and nodes as a
    /// comment; concrete elements override with real SPICE syntax so
    /// [`crate::circuit::Circuit::netlist`] round-trips into other
    /// simulators.
    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        let nodes: Vec<String> = self.nodes().iter().map(|&n| node_name(n)).collect();
        format!("* {} {}", self.name(), nodes.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamper_ground_writes_are_dropped() {
        let mut m = DenseMatrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut s = Stamper::new(&mut m, &mut rhs, 2);
        s.conductance(Some(0), None, 2.0);
        s.current_source(None, Some(1), 1.5);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(1, 1)], 0.0);
        assert_eq!(rhs, vec![0.0, 1.5]);
    }

    #[test]
    fn conductance_pattern_is_symmetric() {
        let mut m = DenseMatrix::zeros(2, 2);
        let mut rhs = vec![0.0; 2];
        let mut s = Stamper::new(&mut m, &mut rhs, 2);
        s.conductance(Some(0), Some(1), 3.0);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(1, 1)], 3.0);
        assert_eq!(m[(0, 1)], -3.0);
        assert_eq!(m[(1, 0)], -3.0);
    }

    #[test]
    fn branch_indices_follow_nodes() {
        let mut m = DenseMatrix::zeros(5, 5);
        let mut rhs = vec![0.0; 5];
        let s = Stamper::new(&mut m, &mut rhs, 3);
        assert_eq!(s.branch(0), 3);
        assert_eq!(s.branch(1), 4);
    }

    #[test]
    fn ac_capacitance_is_imaginary() {
        let mut m = ComplexMatrix::zeros(1, 1);
        let mut rhs = vec![Complex64::ZERO; 1];
        let mut s = AcStamper::new(&mut m, &mut rhs, 1);
        s.capacitance(Some(0), None, 1e-12, 2.0 * std::f64::consts::PI * 1e9);
        assert_eq!(m[(0, 0)].re, 0.0);
        assert!(m[(0, 0)].im > 0.0);
    }

    #[test]
    fn transconductance_pattern() {
        let mut m = ComplexMatrix::zeros(4, 4);
        let mut rhs = vec![Complex64::ZERO; 4];
        let mut s = AcStamper::new(&mut m, &mut rhs, 4);
        s.transconductance(Some(0), Some(1), Some(2), Some(3), 0.01);
        assert_eq!(m[(0, 2)].re, 0.01);
        assert_eq!(m[(0, 3)].re, -0.01);
        assert_eq!(m[(1, 2)].re, -0.01);
        assert_eq!(m[(1, 3)].re, 0.01);
    }

    #[test]
    fn ac_sparse_sink_matches_dense() {
        // Record the pattern, then stamp the same contributions into a
        // dense matrix and into the fixed-pattern CSR: identical entries.
        let n = 3;
        let omega = 2.0 * std::f64::consts::PI * 1e9;
        let stamp_all = |s: &mut AcStamper<'_>| {
            s.conductance(Some(0), Some(1), 1e-3);
            s.capacitance(Some(1), Some(2), 2e-12, omega);
            s.transconductance(Some(2), None, Some(0), Some(1), 0.02);
            s.rhs(Some(0), Complex64::ONE);
        };

        let mut positions = Vec::new();
        let mut rhs_p = vec![Complex64::ZERO; n];
        let mut rec = AcStamper::pattern(&mut positions, &mut rhs_p, n);
        stamp_all(&mut rec);
        let mut csr = CsrMatrix::<Complex64>::from_pattern(n, n, &positions).unwrap();
        let mut slots = StampSlots::default();

        let mut dense = ComplexMatrix::zeros(n, n);
        let mut rhs_d = vec![Complex64::ZERO; n];
        let mut ds = AcStamper::new(&mut dense, &mut rhs_d, n);
        stamp_all(&mut ds);

        // Two sparse passes: the first fills the slot cache, the second
        // replays it; both must agree with the dense stamp.
        for _ in 0..2 {
            csr.clear_vals();
            let mut rhs_s = vec![Complex64::ZERO; n];
            slots.begin_pass();
            let mut ss = AcStamper::sparse(&mut csr, &mut slots, &mut rhs_s, n);
            stamp_all(&mut ss);
            assert!(!slots.missing());
            for r in 0..n {
                for c in 0..n {
                    assert_eq!(csr.get(r, c), dense[(r, c)], "({r},{c})");
                }
            }
            assert_eq!(rhs_s, rhs_d);
        }
    }

    #[test]
    fn ac_sparse_sink_flags_missing_position() {
        let mut positions = vec![(0usize, 0usize)];
        let mut csr = CsrMatrix::<Complex64>::from_pattern(2, 2, &positions).unwrap();
        positions.clear();
        let mut slots = StampSlots::default();
        let mut rhs = vec![Complex64::ZERO; 2];
        slots.begin_pass();
        let mut s = AcStamper::sparse(&mut csr, &mut slots, &mut rhs, 2);
        s.mat(Some(1), Some(1), Complex64::ONE); // not in the pattern
        assert!(slots.missing());
    }

    #[test]
    fn stamp_ctx_ground_voltage_is_zero() {
        let x = [1.5, 2.5];
        let ctx = StampCtx {
            x: &x,
            state: &[],
            branch_base: 0,
            n_nodes: 2,
            mode: StampMode::dc(),
        };
        assert_eq!(ctx.v(NodeId::GROUND), 0.0);
        assert_eq!(ctx.v(NodeId::from_raw(1)), 1.5);
    }
}
