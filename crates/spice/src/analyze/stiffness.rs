//! Pass 3: stiffness / time-constant spectrum.
//!
//! Estimates a per-node RC time constant `τ_i = C_ii / G_ii` from the local
//! AC stamps evaluated at the interval-box midpoint: one `G + jωC` assembly
//! at `ω = 1 rad/s` gives `C_ii` as the imaginary diagonal and `G_ii` as the
//! real diagonal (plus the solver's gmin, which really is in the transient
//! Jacobian). The diagonal Gershgorin-style estimate ignores off-diagonal
//! coupling, so it is a *spectrum sketch*, not an eigensolve — good enough
//! to recommend an initial `dt` and to flag spectra whose `τ_max/τ_min`
//! ratio will make LTE-adaptive stepping thrash (`A005`).
//!
//! Nodes incident to voltage-defined branches are excluded: their voltage is
//! pinned by the branch equation, so the local RC estimate is meaningless
//! there (a source-driven gate would otherwise report `G_ii ≈ 0` and a
//! spuriously infinite τ).

use super::{AnalyzeCode, AnalyzeOptions, Finding, StiffnessSummary};
use crate::circuit::{Circuit, NodeId};
use crate::element::{AcStamper, DcTransfer};
use cml_numeric::{Complex64, ComplexMatrix, Interval};

pub(crate) fn stiffness(
    ckt: &Circuit,
    bounds: &[Interval],
    opts: &AnalyzeOptions,
) -> (Option<StiffnessSummary>, Vec<Finding>) {
    let n_nodes = ckt.num_unknown_nodes();
    let mut n_branches = 0;
    let mut pinned = vec![false; n_nodes];
    for e in ckt.elements() {
        n_branches += e.num_branches();
        if let DcTransfer::VoltageDefined { a, b, .. } = e.dc_transfer() {
            for id in [a, b] {
                if let Some(i) = id.index() {
                    pinned[i] = true;
                }
            }
        }
    }
    let dim = n_nodes + n_branches;

    // Sample at the box midpoint, clamped to a supply-scale excursion: a
    // node the interval pass could only bound loosely (active-inductor legs,
    // opaque neighborhoods) would otherwise be sampled at an absurd bias
    // where device transconductances — and hence τ — are meaningless.
    let limit = 10.0
        + ckt
            .elements()
            .filter_map(|e| match e.dc_transfer() {
                DcTransfer::VoltageDefined { v, .. } => Some(v.abs()),
                _ => None,
            })
            .sum::<f64>();
    let mut x_mid = vec![0.0; dim];
    for (raw, b) in bounds.iter().enumerate().skip(1) {
        if raw - 1 < n_nodes {
            let m = b.midpoint();
            x_mid[raw - 1] = if m.is_finite() {
                m.clamp(-limit, limit)
            } else {
                0.0
            };
        }
    }

    let omega = 1.0;
    let mut matrix = ComplexMatrix::zeros(dim, dim);
    let mut rhs = vec![Complex64::ZERO; dim];
    let mut bb = 0;
    for e in ckt.elements() {
        let mut stamper = AcStamper::new(&mut matrix, &mut rhs, n_nodes);
        e.stamp_ac(&x_mid, bb, omega, &mut stamper);
        bb += e.num_branches();
    }

    let mut taus: Vec<(usize, f64)> = Vec::new();
    for i in 0..n_nodes {
        if pinned[i] {
            continue;
        }
        let d = matrix[(i, i)];
        let c = d.im / omega;
        if c <= 1e-21 {
            continue; // no usable local capacitance
        }
        let g = d.re.abs() + opts.gmin;
        taus.push((i, c / g));
    }

    if taus.is_empty() {
        return (None, Vec::new());
    }

    let (mut i_min, mut tau_min) = taus[0];
    let (mut i_max, mut tau_max) = taus[0];
    for &(i, tau) in &taus[1..] {
        if tau < tau_min {
            (i_min, tau_min) = (i, tau);
        }
        if tau > tau_max {
            (i_max, tau_max) = (i, tau);
        }
    }
    let name = |i: usize| {
        ckt.node_name(NodeId::from_raw(u32::try_from(i + 1).unwrap_or(u32::MAX)))
            .to_string()
    };
    let ratio = tau_max / tau_min;
    let summary = StiffnessSummary {
        tau_min,
        tau_max,
        tau_min_node: name(i_min),
        tau_max_node: name(i_max),
        stiffness_ratio: ratio,
        recommended_dt: tau_min / 4.0,
        reactive_nodes: taus.len(),
    };

    let mut findings = Vec::new();
    if ratio > opts.stiffness_limit {
        findings.push(Finding {
            code: AnalyzeCode::StiffSpectrum,
            element: None,
            nodes: vec![summary.tau_min_node.clone(), summary.tau_max_node.clone()],
            message: format!(
                "RC time constants span {:.1e}× (τ = {:.3e} s at {} to \
                 {:.3e} s at {}); LTE-adaptive stepping will thrash — start \
                 at dt ≈ {:.3e} s",
                ratio,
                tau_min,
                summary.tau_min_node,
                tau_max,
                summary.tau_max_node,
                summary.recommended_dt
            ),
        });
    }
    (Some(summary), findings)
}
