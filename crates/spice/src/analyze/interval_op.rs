//! Pass 1: interval abstract interpretation of the DC operating point.
//!
//! Computes a per-node box `[lo, hi]` guaranteed to contain the converged
//! Newton operating point. Three rules run to a monotone fixpoint:
//!
//! * **Voltage propagation** — a voltage-defined branch `v_a − v_b = v`
//!   intersects each terminal's box with the other's shifted box.
//! * **Algebraic enclosure** — node `n`'s own KCL equation solved for `v_n`
//!   with every other term ranging over its box (interval Gauss–Seidel);
//!   contracts multiplicatively through conductance chains.
//! * **KCL feasibility pruning** — at a node `n` held only by modeled
//!   elements, the residual interval `R(v)` (possible net current injection
//!   when `v_n = v` and every neighbor ranges over its box) has *both*
//!   endpoints monotone non-increasing in `v`, because every modeled element
//!   is passive with respect to its own terminal: raising `v_n` can only
//!   reduce current flowing in. Hence `{v : R.hi(v) ≥ 0}` is a down-set and
//!   `{v : R.lo(v) ≤ 0}` is an up-set, and the feasible set (where KCL can
//!   possibly balance) is an interval found by two bisections. The true
//!   solution satisfies KCL exactly, so it is always feasible — pruning to
//!   the feasible set is sound.
//!
//! The passivity argument covers every [`DcTransfer`] variant: conductances
//! trivially, MOSFET channels because normalized `ids` is monotone in both
//! `vgs` and `vds` (so raising the drain voltage cannot push current *out of*
//! the drain, and symmetrically for the source via the swapped-terminal
//! evaluation), junctions by monotonicity of the Shockley curve, and the
//! solver's `gmin` shunt which is modeled explicitly.
//!
//! Circuits containing [`DcTransfer::Opaque`] elements start from the
//! unbounded box (the passivity argument does not survive controlled
//! sources); bounds then stay loose near the opaque region but remain sound
//! everywhere.
//!
//! Known precision limit: per-node boxes are a *non-relational* domain, so
//! correlations between node voltages are lost. The active-inductor load
//! idiom (drain and gate tied through a gate resistor that carries no DC
//! current) hinges on exactly such a correlation — legs behind a peaking
//! PMOS can stay supply-budget wide. That is looseness, not unsoundness:
//! every downstream consumer (warm start, conditioning, stiffness) gates on
//! box width before trusting a midpoint.

use super::{AnalyzeCode, AnalyzeOptions, Finding, MosPrediction};
use crate::circuit::{Circuit, NodeId};
use crate::devices::diode::{junction_iv, DiodeParams};
use crate::devices::mosfet::{square_law, MosParams};
use crate::element::DcTransfer;
use cml_numeric::Interval;

/// Raw node id (0 = ground) for attachment bookkeeping.
fn raw(n: NodeId) -> usize {
    n.index().map_or(0, |i| i + 1)
}

/// Result of the interval pass, in raw-node-id space.
pub(crate) struct IntervalDcResult {
    /// Bounds per raw node id; `bounds[0]` is ground `[0, 0]`.
    pub bounds: Vec<Interval>,
    /// Region envelopes per MOSFET, element order.
    pub mosfets: Vec<MosPrediction>,
    /// `A001` / `A002` findings.
    pub findings: Vec<Finding>,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the fixpoint stabilized before the sweep cap.
    pub converged: bool,
    /// KCL feasibility conflicts (no feasible voltage found in a box).
    pub conflicts: usize,
}

/// How a node participates in a channel / junction.
#[derive(Clone, Copy)]
enum Role {
    /// Drain terminal (channel) or anode (junction).
    Pos,
    /// Source terminal (channel) or cathode (junction).
    Neg,
}

/// One element attachment at a node, used to evaluate the KCL residual.
#[derive(Clone, Copy)]
enum Attach {
    /// Linear conductance `g` to node `other`.
    Cond { other: usize, g: f64 },
    /// MOSFET channel `channels[idx]`; `Pos` = this node is the drain.
    Chan { idx: usize, role: Role },
    /// Junction `junctions[idx]`; `Pos` = this node is the anode.
    Junc { idx: usize, role: Role },
}

struct Channel {
    name: String,
    d: usize,
    g: usize,
    s: usize,
    params: MosParams,
}

struct Junction {
    a: usize,
    k: usize,
    params: DiodeParams,
}

/// Pads an interval outward by a relative epsilon, guarding the pointwise
/// (non-interval) f64 evaluation of device curves inside residuals.
fn pad_rel(i: Interval) -> Interval {
    let pad = |x: f64, dir: f64| {
        if x.is_finite() {
            x + dir * (1e-12 * x.abs() + 1e-18)
        } else {
            x
        }
    };
    Interval {
        lo: pad(i.lo, -1.0),
        hi: pad(i.hi, 1.0),
    }
}

/// Interval of possible current *into the drain terminal* of a channel, with
/// terminal voltages ranging over the given boxes. Sound because normalized
/// `ids(vgs, vds)` is monotone non-decreasing in both arguments (λ ≥ 0).
fn channel_current(params: &MosParams, vd: Interval, vg: Interval, vs: Interval) -> Interval {
    let p = params.mos_type.polarity();
    let vds = vd.sub(vs).scale(p);
    let vgs = vg.sub(vs).scale(p);
    let vgd = vg.sub(vd).scale(p);
    // Normalized magnitude helper; 0 outside the conducting quadrant.
    let f = |vgs: f64, vds: f64| -> f64 {
        if vds <= 0.0 || vgs <= params.vth0 {
            0.0
        } else {
            square_law(params, vgs, vds).ids
        }
    };
    // Normalized channel current (drain → source positive). Forward flow is
    // maximized at the (vgs.hi, vds.hi) corner; reverse flow (terminal swap,
    // gate-to-drain controlled) at the (vgd.hi, −vds.lo) corner.
    let hi_n = if vds.hi >= 0.0 {
        f(vgs.hi, vds.hi)
    } else {
        -f(vgd.lo, -vds.hi)
    };
    let lo_n = if vds.lo >= 0.0 {
        f(vgs.lo, vds.lo)
    } else {
        -f(vgd.hi, -vds.lo)
    };
    pad_rel(Interval::new(lo_n, hi_n)).scale(p)
}

/// Interval of junction current `a → k` with `v_ak` ranging over `vak`.
fn junction_current(params: &DiodeParams, vak: Interval) -> Interval {
    let f = |v: f64| {
        if v == f64::NEG_INFINITY {
            -params.is
        } else if v == f64::INFINITY {
            f64::INFINITY
        } else {
            junction_iv(params, v).0
        }
    };
    pad_rel(Interval::new(f(vak.lo), f(vak.hi)))
}

struct Model {
    n: usize,
    gmin: f64,
    bounds: Vec<Interval>,
    attach: Vec<Vec<Attach>>,
    const_inj: Vec<f64>,
    vdefs: Vec<(usize, usize, f64)>,
    /// Node may be pruned by KCL feasibility.
    prunable: Vec<bool>,
    channels: Vec<Channel>,
    junctions: Vec<Junction>,
    conflicts: usize,
}

impl Model {
    fn bv(&self, node: usize) -> Interval {
        self.bounds[node]
    }

    /// KCL residual interval at node `n` with `v_n = v` fixed and all
    /// neighbors ranging over their boxes. Both endpoints are monotone
    /// non-increasing in `v`.
    fn residual(&self, n: usize, v: f64) -> Interval {
        let vp = Interval::point(v);
        let mut r = Interval::point(self.const_inj[n]).add(vp.scale(-self.gmin));
        for at in &self.attach[n] {
            match *at {
                Attach::Cond { other, g } => {
                    r = r.add(self.bv(other).sub(vp).scale(g));
                }
                Attach::Chan { idx, role } => {
                    let ch = &self.channels[idx];
                    let sub = |t: usize| if t == n { vp } else { self.bv(t) };
                    let id = channel_current(&ch.params, sub(ch.d), sub(ch.g), sub(ch.s));
                    r = r.add(match role {
                        Role::Pos => id.neg(),
                        Role::Neg => id,
                    });
                }
                Attach::Junc { idx, role } => {
                    let j = &self.junctions[idx];
                    let sub = |t: usize| if t == n { vp } else { self.bv(t) };
                    let i = junction_current(&j.params, sub(j.a).sub(sub(j.k)));
                    r = r.add(match role {
                        Role::Pos => i.neg(),
                        Role::Neg => i,
                    });
                }
            }
        }
        r
    }

    /// Intersects each voltage-defined pair's boxes; chains settle within
    /// `len + 1` passes. Empty intersections (inconsistent constraints) are
    /// counted as conflicts and the old bound kept.
    fn propagate_vdefs(&mut self) {
        for _ in 0..=self.vdefs.len() {
            let mut moved = false;
            for k in 0..self.vdefs.len() {
                let (a, b, v) = self.vdefs[k];
                let vi = Interval::point(v);
                if a != 0 {
                    let cand = self.bounds[a].intersect(self.bv(b).add(vi));
                    moved |= self.update(a, cand);
                }
                if b != 0 {
                    let cand = self.bounds[b].intersect(self.bv(a).sub(vi));
                    moved |= self.update(b, cand);
                }
            }
            if !moved {
                break;
            }
        }
    }

    /// Replaces `bounds[n]` with `cand` if it is a genuine (non-empty)
    /// shrink; returns whether the bound moved meaningfully.
    fn update(&mut self, n: usize, cand: Interval) -> bool {
        if cand.is_empty() {
            self.conflicts += 1;
            return false;
        }
        let old = self.bounds[n];
        let eps = |x: f64| 1e-6 * (1.0 + x.abs());
        let moved = (old.lo.is_infinite() && cand.lo.is_finite())
            || (old.hi.is_infinite() && cand.hi.is_finite())
            || (cand.lo.is_finite() && cand.lo - old.lo > eps(cand.lo))
            || (cand.hi.is_finite() && old.hi - cand.hi > eps(cand.hi));
        self.bounds[n] = cand;
        moved
    }

    /// Algebraic interval enclosure of `v_n` from its own KCL equation:
    /// `0 = c − gmin·v + Σ g·(v_o − v) + Σ inj_nl(v)` solved for `v` gives
    /// `v = (c + Σ g·v_o + Σ inj_nl) / (Σ g + gmin)`, with every right-hand
    /// term ranging over its box. The true solution satisfies the equation
    /// exactly, so it lies in the enclosure. Unlike bisection feasibility,
    /// this contracts *multiplicatively* through conductance chains whose
    /// endpoints are both still wide.
    fn algebraic(&self, n: usize) -> Interval {
        let mut g_sum = self.gmin;
        let mut num = Interval::point(self.const_inj[n]);
        for at in &self.attach[n] {
            match *at {
                Attach::Cond { other, g } => {
                    g_sum += g;
                    num = num.add(self.bv(other).scale(g));
                }
                Attach::Chan { idx, role } => {
                    let ch = &self.channels[idx];
                    let id =
                        channel_current(&ch.params, self.bv(ch.d), self.bv(ch.g), self.bv(ch.s));
                    num = num.add(match role {
                        Role::Pos => id.neg(),
                        Role::Neg => id,
                    });
                }
                Attach::Junc { idx, role } => {
                    let j = &self.junctions[idx];
                    let i = junction_current(&j.params, self.bv(j.a).sub(self.bv(j.k)));
                    num = num.add(match role {
                        Role::Pos => i.neg(),
                        Role::Neg => i,
                    });
                }
            }
        }
        pad_rel(num.scale(1.0 / g_sum))
    }

    /// Shrinks node `n`'s box to the KCL-feasible set via the algebraic
    /// enclosure plus two monotone bisections. `slack` absorbs pointwise
    /// evaluation noise.
    fn prune(&mut self, n: usize, iters: usize) -> bool {
        let alg = self.bounds[n].intersect(self.algebraic(n));
        let mut moved = false;
        if !alg.is_empty() {
            moved |= self.update(n, alg);
        } else {
            self.conflicts += 1;
        }
        let cur = self.bounds[n];
        let slack = 1e-9 + 1e-6 * self.const_inj[n].abs();
        // Upper bound: feasible(v) := R.hi(v) ≥ −slack, a down-set in v.
        let (hi, c1) = self.prune_dir(n, cur, iters, |r| r.hi >= -slack, true);
        let cur = Interval {
            lo: cur.lo,
            hi: hi.min(cur.hi),
        };
        // Lower bound: feasible(v) := R.lo(v) ≤ slack, an up-set in v.
        let (lo, c2) = self.prune_dir(n, cur, iters, |r| r.lo <= slack, false);
        let cand = Interval {
            lo: lo.max(cur.lo),
            hi: cur.hi,
        };
        self.conflicts += usize::from(c1) + usize::from(c2);
        moved | self.update(n, cand)
    }

    /// One-sided prune. For `upper = true`, `feasible` must define a
    /// down-set `(-inf, v*]`; returns a safe outer estimate of `v*` (or the
    /// current endpoint when no progress is provable) plus a conflict flag
    /// set when the whole box turned out KCL-infeasible. For `upper = false`
    /// the set is an up-set and everything mirrors.
    fn prune_dir(
        &self,
        n: usize,
        cur: Interval,
        iters: usize,
        feasible: impl Fn(Interval) -> bool,
        upper: bool,
    ) -> (f64, bool) {
        // Mirror the lower-bound case so we always shrink from the top.
        let m = if upper { 1.0 } else { -1.0 };
        let fs = |v: f64| feasible(self.residual(n, m * v));
        let (c_lo, c_hi) = if upper {
            (cur.lo, cur.hi)
        } else {
            (-cur.hi, -cur.lo)
        };
        let fallback = if upper { cur.hi } else { cur.lo };

        // Bracket: a feasible, b infeasible, a < b.
        if c_hi.is_finite() && fs(c_hi) {
            return (fallback, false); // endpoint feasible: no shrink possible
        }
        let mut b = c_hi;
        if !c_hi.is_finite() {
            // Expand a finite probe upward until infeasibility appears.
            let mut p = 1.0;
            let mut found = None;
            for _ in 0..64 {
                if !fs(p) {
                    found = Some(p);
                    break;
                }
                p *= 8.0;
            }
            match found {
                Some(x) => b = x,
                None => return (fallback, false), // feasible arbitrarily far
            }
        }
        // Find a feasible point below b; the feasible set is a down-set, so
        // geometric descent cannot jump over it.
        let mut step = 1.0;
        let clamp_lo = |x: f64| if c_lo.is_finite() { c_lo.max(x) } else { x };
        let mut a = clamp_lo(b - step);
        let mut found = false;
        for _ in 0..64 {
            if fs(a) {
                found = true;
                break;
            }
            if a <= c_lo {
                break;
            }
            step *= 8.0;
            a = clamp_lo(b - step);
        }
        if !found {
            // The whole box is KCL-infeasible — either the circuit has no DC
            // solution under this model or slack was too tight. Keep the old
            // (sound) bound and flag the conflict.
            return (fallback, true);
        }
        // Bisect; return the infeasible end (safe outer bound).
        for _ in 0..iters {
            if b - a <= 1e-9 * (1.0 + a.abs().max(b.abs())) {
                break;
            }
            let mid = 0.5 * (a + b);
            if !mid.is_finite() || mid <= a || mid >= b {
                break;
            }
            if fs(mid) {
                a = mid;
            } else {
                b = mid;
            }
        }
        (if upper { b } else { -b }, false)
    }
}

/// Runs the interval fixpoint for `ckt`.
pub(crate) fn interval_dc(ckt: &Circuit, opts: &AnalyzeOptions) -> IntervalDcResult {
    let n = ckt.num_nodes();
    let gmin = opts.gmin.max(f64::MIN_POSITIVE);

    let mut attach: Vec<Vec<Attach>> = vec![Vec::new(); n];
    let mut const_inj = vec![0.0; n];
    let mut vdefs = Vec::new();
    let mut vdef_inc = vec![false; n];
    let mut opaque_inc = vec![false; n];
    let mut channels = Vec::new();
    let mut junctions = Vec::new();
    let mut findings = Vec::new();
    let mut sum_v = 0.0;
    let mut sum_i = 0.0;
    let mut has_opaque = false;

    for e in ckt.elements() {
        let mut opaque = |findings: &mut Vec<Finding>| {
            has_opaque = true;
            let nodes: Vec<String> = e
                .nodes()
                .iter()
                .map(|&id| ckt.node_name(id).to_string())
                .collect();
            for &id in &e.nodes() {
                opaque_inc[raw(id)] = true;
            }
            findings.push(Finding {
                code: AnalyzeCode::UnmodeledElement,
                element: Some(e.name().to_string()),
                nodes,
                message: format!(
                    "{:?} element has no DC transfer model; interval bounds \
                     near it are worst-case",
                    e.kind()
                ),
            });
        };
        match e.dc_transfer() {
            DcTransfer::Conductance { a, b, g } => {
                let (ra, rb) = (raw(a), raw(b));
                if !(g.is_finite() && g >= 0.0) {
                    opaque(&mut findings);
                } else if ra != rb {
                    attach[ra].push(Attach::Cond { other: rb, g });
                    attach[rb].push(Attach::Cond { other: ra, g });
                }
            }
            DcTransfer::VoltageDefined { a, b, v } => {
                let (ra, rb) = (raw(a), raw(b));
                vdef_inc[ra] = true;
                vdef_inc[rb] = true;
                vdefs.push((ra, rb, v));
                sum_v += v.abs();
            }
            DcTransfer::CurrentSource { a, b, i } => {
                const_inj[raw(a)] -= i;
                const_inj[raw(b)] += i;
                sum_i += i.abs();
            }
            DcTransfer::Open => {}
            DcTransfer::MosChannel { d, g, s, params } => {
                let (rd, rg, rs) = (raw(d), raw(g), raw(s));
                if rd != rs {
                    let idx = channels.len();
                    channels.push(Channel {
                        name: e.name().to_string(),
                        d: rd,
                        g: rg,
                        s: rs,
                        params,
                    });
                    attach[rd].push(Attach::Chan {
                        idx,
                        role: Role::Pos,
                    });
                    attach[rs].push(Attach::Chan {
                        idx,
                        role: Role::Neg,
                    });
                }
            }
            DcTransfer::Junction { a, k, params } => {
                let (ra, rk) = (raw(a), raw(k));
                if ra != rk {
                    let idx = junctions.len();
                    junctions.push(Junction {
                        a: ra,
                        k: rk,
                        params,
                    });
                    attach[ra].push(Attach::Junc {
                        idx,
                        role: Role::Pos,
                    });
                    attach[rk].push(Attach::Junc {
                        idx,
                        role: Role::Neg,
                    });
                }
            }
            DcTransfer::Opaque => opaque(&mut findings),
        }
    }

    // Initial box. With every element modeled and passive, the maximum
    // principle bounds every node by Σ|V| (voltage-source chains) plus
    // Σ|I|/gmin (worst case: all source current through one gmin shunt).
    // Opaque elements break the passivity argument, so those circuits start
    // from the unbounded box instead.
    let init = if has_opaque {
        Interval::TOP
    } else {
        Interval::symmetric(sum_v + sum_i / gmin + 1.0)
    };
    let mut bounds = vec![init; n];
    bounds[0] = Interval::point(0.0);

    let mut prunable = vec![true; n];
    prunable[0] = false;
    for i in 0..n {
        if vdef_inc[i] || opaque_inc[i] {
            // Voltage-defined branch currents are unbounded a priori, and
            // opaque elements inject unknown currents: KCL pruning is
            // unsound at such nodes. Voltage propagation still applies.
            prunable[i] = false;
        }
    }

    let mut model = Model {
        n,
        gmin,
        bounds,
        attach,
        const_inj,
        vdefs,
        prunable,
        channels,
        junctions,
        conflicts: 0,
    };

    let mut sweeps = 0;
    let mut converged = false;
    while sweeps < opts.max_sweeps {
        sweeps += 1;
        model.propagate_vdefs();
        let mut moved = false;
        for node in 1..model.n {
            if model.prunable[node] {
                moved |= model.prune(node, opts.bisect_iters);
            }
        }
        if !moved {
            converged = true;
            break;
        }
    }

    // Final outward pad: the Newton stop criterion tolerates a step of
    // `vntol + reltol·|x|`, so the *computed* solution may sit that far from
    // the exact model solution the feasibility argument bounds.
    let pad = |x: f64, dir: f64| {
        if x.is_finite() {
            x + dir * (1e-5 + 2e-3 * x.abs())
        } else {
            x
        }
    };
    for node in 1..model.n {
        let b = model.bounds[node];
        model.bounds[node] = Interval {
            lo: pad(b.lo, -1.0),
            hi: pad(b.hi, 1.0),
        };
    }

    // Region envelopes + definite-cutoff findings.
    let mut mosfets = Vec::new();
    for ch in &model.channels {
        let p = ch.params.mos_type.polarity();
        let (vd, vg, vs) = (model.bv(ch.d), model.bv(ch.g), model.bv(ch.s));
        let vds = vd.sub(vs).scale(p);
        let vgs = vg.sub(vs).scale(p);
        let vgd = vg.sub(vd).scale(p);
        let vth = ch.params.vth0;
        let definite_cutoff = vgs.hi <= vth && vgd.hi <= vth;
        let conducts = vgs.hi > vth || vgd.hi > vth;
        let vov_hi = vgs.hi - vth;
        let vov_lo = vgs.lo - vth;
        let may_saturation = conducts && vds.hi >= vov_lo.max(0.0);
        let may_triode = conducts && vds.hi > 0.0 && vov_hi > 0.0 && vds.lo < vov_hi;
        let pred = MosPrediction {
            element: ch.name.clone(),
            vgs: (vgs.lo, vgs.hi),
            vds: (vds.lo, vds.hi),
            may_cutoff: vgs.lo <= vth,
            may_triode,
            may_saturation,
            definite_cutoff,
        };
        if definite_cutoff {
            findings.push(Finding {
                code: AnalyzeCode::PredictedCutoff,
                element: Some(ch.name.clone()),
                nodes: vec![
                    ckt.node_name(node_id(ch.d)).to_string(),
                    ckt.node_name(node_id(ch.g)).to_string(),
                    ckt.node_name(node_id(ch.s)).to_string(),
                ],
                message: format!(
                    "provably cut off: vgs ≤ {:.3} V and vgd ≤ {:.3} V over \
                     the whole feasible box (vth = {:.3} V)",
                    vgs.hi, vgd.hi, vth
                ),
            });
        }
        mosfets.push(pred);
    }

    IntervalDcResult {
        bounds: model.bounds,
        mosfets,
        findings,
        sweeps,
        converged,
        conflicts: model.conflicts,
    }
}

/// Inverse of [`raw`].
fn node_id(r: usize) -> NodeId {
    if r == 0 {
        NodeId::GROUND
    } else {
        NodeId::from_raw(u32::try_from(r).unwrap_or(u32::MAX))
    }
}
