//! Pass 2: structural conditioning prediction.
//!
//! Samples the dense MNA Jacobian at the midpoint and at the corners of the
//! interval box from pass 1, builds a per-position magnitude envelope, and
//! inspects per-row statistics:
//!
//! * a row whose envelope is numerically empty (`A004`) means the unknown is
//!   held only by the solver's gmin — the LU pivot there is gmin-sized and
//!   the computed value is numerically arbitrary;
//! * a row whose nonzero magnitudes span many decades (`A003`) predicts
//!   pivot-growth trouble for the factorization;
//! * the global dimension/density summary recommends dense vs sparse and a
//!   batch sparse threshold.
//!
//! Corner node voltages are clamped to a supply-scale excursion so that
//! unbounded boxes (opaque-element circuits) still produce a usable sample;
//! the envelope is a *sample*, not a proof, and all findings here are
//! advisory.

use super::{AnalyzeCode, AnalyzeOptions, ConditioningSummary, Finding};
use crate::analysis::{NewtonOptions, System};
use crate::circuit::Circuit;
use crate::element::{DcTransfer, StampMode};
use crate::lint::unknown_name;
use cml_numeric::{DenseMatrix, Interval};

pub(crate) struct CondResult {
    pub summary: ConditioningSummary,
    pub findings: Vec<Finding>,
}

/// Clamp a corner voltage to a finite supply-scale excursion.
fn clamp_corner(v: f64, limit: f64) -> f64 {
    if v.is_finite() {
        v.clamp(-limit, limit)
    } else if v > 0.0 {
        limit
    } else {
        -limit
    }
}

pub(crate) fn conditioning(
    ckt: &Circuit,
    bounds: &[Interval],
    opts: &AnalyzeOptions,
) -> CondResult {
    let sys = System::new(ckt);
    let dim = sys.dim();
    let n_nodes = sys.n_nodes();

    let mut branch_owner: Vec<String> = Vec::new();
    for e in ckt.elements() {
        for _ in 0..e.num_branches() {
            branch_owner.push(e.name().to_string());
        }
    }

    // Corner excursions stay within a supply-scale window even when pass 1
    // could not bound a node: conditioning predicts the factorization near a
    // *plausible* operating point, and no healthy node exceeds the summed
    // source budget.
    let limit = 10.0
        + ckt
            .elements()
            .filter_map(|e| match e.dc_transfer() {
                DcTransfer::VoltageDefined { v, .. } => Some(v.abs()),
                _ => None,
            })
            .sum::<f64>();

    let corner = |pick: fn(&Interval) -> f64| -> Vec<f64> {
        let mut x = vec![0.0; dim];
        for (raw, b) in bounds.iter().enumerate().skip(1) {
            if raw - 1 < n_nodes {
                x[raw - 1] = clamp_corner(pick(b), limit);
            }
        }
        x
    };
    let samples = [corner(|b| b.midpoint()), corner(|b| b.lo), corner(|b| b.hi)];

    let mut envelope = vec![0.0f64; dim * dim];
    let mut matrix = DenseMatrix::zeros(dim, dim);
    let mut rhs = Vec::new();
    for x in &samples {
        // gmin = 0: the envelope should show what the *elements* hold, so a
        // gmin-only row is visible as numerically empty.
        sys.assemble(x, &[], StampMode::dc(), 0.0, &mut matrix, &mut rhs);
        for r in 0..dim {
            for c in 0..dim {
                let m = matrix[(r, c)].abs();
                if m > envelope[r * dim + c] {
                    envelope[r * dim + c] = m;
                }
            }
        }
    }

    let mut findings = Vec::new();
    let mut empty_rows = Vec::new();
    let mut spread_rows: Vec<(String, f64)> = Vec::new();
    let mut max_row_spread = 1.0f64;
    let mut worst_row = None;
    let mut nnz = 0usize;

    for r in 0..dim {
        let row = &envelope[r * dim..(r + 1) * dim];
        let mut row_max = 0.0f64;
        let mut row_min = f64::INFINITY;
        for &m in row {
            if m > 0.0 {
                nnz += 1;
            }
            // Sub-eps entries are treated as numerically absent for both the
            // empty-row and the spread statistics.
            if m > opts.empty_row_eps {
                row_max = row_max.max(m);
                row_min = row_min.min(m);
            }
        }
        let name = unknown_name(ckt, r, n_nodes, &branch_owner);
        if row_max == 0.0 {
            empty_rows.push(name);
            continue;
        }
        let spread = row_max / row_min;
        if spread > max_row_spread {
            max_row_spread = spread;
            worst_row = Some(name.clone());
        }
        if spread >= opts.row_spread_limit {
            spread_rows.push((name, spread));
        }
    }

    if !empty_rows.is_empty() {
        findings.push(Finding {
            code: AnalyzeCode::EmptyRow,
            element: None,
            nodes: empty_rows.clone(),
            message: format!(
                "{} MNA row(s) are numerically empty (every element entry \
                 ≤ {:.0e}) at every sampled corner of the interval box; \
                 these unknowns are held only by gmin",
                empty_rows.len(),
                opts.empty_row_eps
            ),
        });
    }
    if !spread_rows.is_empty() {
        let mut nodes: Vec<String> = spread_rows.iter().map(|(n, _)| n.clone()).collect();
        nodes.truncate(4);
        let worst = spread_rows.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
        findings.push(Finding {
            code: AnalyzeCode::RowScaleImbalance,
            element: None,
            nodes,
            message: format!(
                "{} row(s) mix magnitudes spanning ≥ {:.1e}× (worst {:.1e}×); \
                 LU pivoting is likely to lose precision or fall back",
                spread_rows.len(),
                opts.row_spread_limit,
                worst
            ),
        });
    }

    let threshold = NewtonOptions::default().sparse_threshold;
    let density = if dim == 0 {
        0.0
    } else {
        nnz as f64 / (dim * dim) as f64
    };
    let summary = ConditioningSummary {
        dim,
        n_nodes,
        nnz,
        density,
        recommended_sparse: dim >= threshold && density < 0.25,
        recommended_sparse_threshold: threshold,
        max_row_spread,
        worst_row,
        empty_rows,
    };
    CondResult { summary, findings }
}
