//! Static circuit analysis: facts about a circuit *without* simulating it.
//!
//! Three passes over the MNA graph, each emitting typed [`Finding`]s with
//! stable `A###` codes (same severity model as [`crate::lint`]):
//!
//! 1. **Interval operating-point bounds** ([`interval_op`]) — a monotone
//!    fixpoint over per-node voltage intervals. Every element contributes a
//!    [`crate::element::DcTransfer`] model; nodes are pruned by *interval KCL
//!    feasibility*: since every modeled element's injection into a node is
//!    monotone non-increasing in that node's own voltage (passivity), the set
//!    of node voltages admitting `0 ∈ KCL residual` is itself an interval,
//!    computable by bisection. The converged Newton solution is guaranteed to
//!    lie inside the resulting box — the soundness contract checked by
//!    [`check_op_traced`].
//! 2. **Structural conditioning** ([`conditioning`]) — assembles the Jacobian
//!    at corner points of the interval box and inspects the per-row magnitude
//!    envelope: near-empty rows predict pivot death, huge row spreads predict
//!    ill-conditioning, and the density/dimension summary recommends the
//!    dense-vs-sparse path.
//! 3. **Stiffness spectrum** ([`stiffness`]) — per-node RC time-constant
//!    bounds from the local G and C stamps, recommending an initial `dt` and
//!    flagging spectra wide enough to make LTE-adaptive stepping thrash.
//!
//! The analyzer is *advisory but sound*: it may return loose bounds (and
//! flags nodes it cannot bound via `A001`), but it must never exclude the
//! true operating point. `*_traced` entry points cross-check predictions
//! against runtime telemetry and surface violations as `A006`
//! prediction-violation findings — see `tests/analyze_soundness.rs`.
//!
//! Set `CML_ANALYZE=off` to disable the opt-in hooks (Newton warm starting)
//! without touching call sites.

mod conditioning;
mod interval_op;
mod stiffness;

use crate::analysis::op::OpResult;
use crate::circuit::Circuit;
use crate::lint::Severity;
use cml_numeric::Interval;
use cml_telemetry::{Counters, Phase, Telemetry};

/// Stable analyzer diagnostic codes (`A001`…). Codes are append-only: once
/// published, a code keeps its meaning forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalyzeCode {
    /// A001: an element has no DC transfer model; incident nodes keep the
    /// worst-case global bound and downstream passes lose precision.
    UnmodeledElement,
    /// A002: a MOSFET is provably cut off at every point of the interval box
    /// (both `vgs` and `vgd` upper bounds below threshold).
    PredictedCutoff,
    /// A003: the magnitude spread within one Jacobian row exceeds the
    /// conditioning limit; LU pivoting will struggle.
    RowScaleImbalance,
    /// A004: a Jacobian row is numerically empty over the whole interval box;
    /// the matrix is structurally singular or gmin-dominated.
    EmptyRow,
    /// A005: the RC time-constant spectrum is wide enough that LTE-adaptive
    /// transient stepping will thrash between the extremes.
    StiffSpectrum,
    /// A006: a closed-loop soundness check failed — runtime behaviour
    /// contradicted a static prediction. Only emitted by the `check_*`
    /// cross-check entry points, never by [`analyze`] itself.
    PredictionViolation,
}

impl AnalyzeCode {
    /// Every code, in numeric order.
    pub const ALL: [AnalyzeCode; 6] = [
        AnalyzeCode::UnmodeledElement,
        AnalyzeCode::PredictedCutoff,
        AnalyzeCode::RowScaleImbalance,
        AnalyzeCode::EmptyRow,
        AnalyzeCode::StiffSpectrum,
        AnalyzeCode::PredictionViolation,
    ];

    /// Stable code string, e.g. `"A003"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AnalyzeCode::UnmodeledElement => "A001",
            AnalyzeCode::PredictedCutoff => "A002",
            AnalyzeCode::RowScaleImbalance => "A003",
            AnalyzeCode::EmptyRow => "A004",
            AnalyzeCode::StiffSpectrum => "A005",
            AnalyzeCode::PredictionViolation => "A006",
        }
    }

    /// Severity under the shared lint severity model.
    #[must_use]
    pub fn severity(self) -> Severity {
        // All analyzer findings are advisory today; the cross-check violation
        // is the loudest because it means the analyzer itself is wrong.
        Severity::Warning
    }

    /// One-line human title for SARIF / report headers.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            AnalyzeCode::UnmodeledElement => "element has no DC transfer model",
            AnalyzeCode::PredictedCutoff => "MOSFET provably cut off at DC",
            AnalyzeCode::RowScaleImbalance => "Jacobian row magnitude spread is extreme",
            AnalyzeCode::EmptyRow => "Jacobian row numerically empty",
            AnalyzeCode::StiffSpectrum => "stiff RC time-constant spectrum",
            AnalyzeCode::PredictionViolation => "static prediction contradicted by runtime",
        }
    }

    /// Actionable hint rendered with the finding.
    #[must_use]
    pub fn hint(self) -> &'static str {
        match self {
            AnalyzeCode::UnmodeledElement => {
                "interval bounds near this element fall back to worst-case; \
                 add a DcTransfer model to tighten them"
            }
            AnalyzeCode::PredictedCutoff => {
                "the device conducts nowhere in the feasible box; check bias \
                 wiring or remove the device"
            }
            AnalyzeCode::RowScaleImbalance => {
                "rescale element values or expect pivot fallbacks; sparse \
                 Markowitz ordering is recommended"
            }
            AnalyzeCode::EmptyRow => {
                "the unknown is held only by gmin; the operating point there \
                 is numerically arbitrary"
            }
            AnalyzeCode::StiffSpectrum => {
                "use the recommended initial dt and expect LTE step-size \
                 oscillation; consider relaxing the slowest pole"
            }
            AnalyzeCode::PredictionViolation => {
                "file a bug: the analyzer's soundness contract was violated"
            }
        }
    }
}

impl std::fmt::Display for AnalyzeCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single analyzer diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which check fired.
    pub code: AnalyzeCode,
    /// Offending element name, when the finding is element-scoped.
    pub element: Option<String>,
    /// Node / unknown names involved.
    pub nodes: Vec<String>,
    /// Human-readable detail.
    pub message: String,
}

impl Finding {
    /// Severity of this finding (delegates to the code).
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.severity(), self.code)?;
        if let Some(el) = &self.element {
            write!(f, " {el}:")?;
        }
        write!(f, " {}", self.message)?;
        if !self.nodes.is_empty() {
            write!(f, " (nodes: {})", self.nodes.join(", "))?;
        }
        Ok(())
    }
}

/// Proven voltage bounds for one circuit node.
#[derive(Debug, Clone)]
pub struct NodeBound {
    /// Node name as registered in the circuit.
    pub node: String,
    /// Proven lower bound, volts (may be -inf when unbounded).
    pub lo: f64,
    /// Proven upper bound, volts (may be +inf when unbounded).
    pub hi: f64,
}

impl NodeBound {
    /// The bound as an [`Interval`].
    #[must_use]
    pub fn interval(&self) -> Interval {
        Interval {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

/// Predicted DC operating envelope for one MOSFET.
#[derive(Debug, Clone)]
pub struct MosPrediction {
    /// Device name.
    pub element: String,
    /// Normalized (polarity-corrected) gate-source voltage bounds.
    pub vgs: (f64, f64),
    /// Normalized drain-source voltage bounds.
    pub vds: (f64, f64),
    /// Cutoff is possible somewhere in the box.
    pub may_cutoff: bool,
    /// Triode operation is possible somewhere in the box.
    pub may_triode: bool,
    /// Saturation is possible somewhere in the box.
    pub may_saturation: bool,
    /// The device is cut off at *every* point of the box.
    pub definite_cutoff: bool,
}

impl MosPrediction {
    /// The possible regions as short names, e.g. `["cutoff", "saturation"]`.
    #[must_use]
    pub fn regions(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.may_cutoff {
            out.push("cutoff");
        }
        if self.may_triode {
            out.push("triode");
        }
        if self.may_saturation {
            out.push("saturation");
        }
        out
    }
}

/// Summary of the structural conditioning pass.
#[derive(Debug, Clone)]
pub struct ConditioningSummary {
    /// MNA system dimension (nodes + branch currents).
    pub dim: usize,
    /// Number of unknown node voltages.
    pub n_nodes: usize,
    /// Nonzeros in the magnitude envelope of the Jacobian.
    pub nnz: usize,
    /// `nnz / dim²`.
    pub density: f64,
    /// Whether the batch/sparse path is recommended for this circuit.
    pub recommended_sparse: bool,
    /// Recommended `sparse_threshold` for [`crate::analysis::NewtonOptions`].
    pub recommended_sparse_threshold: usize,
    /// Worst row magnitude spread `max/min` over nonzero envelope entries.
    pub max_row_spread: f64,
    /// Unknown name of the worst-spread row, if any row has ≥ 2 nonzeros.
    pub worst_row: Option<String>,
    /// Unknowns whose rows are numerically empty over the whole box.
    pub empty_rows: Vec<String>,
}

/// Summary of the stiffness / time-constant pass.
#[derive(Debug, Clone)]
pub struct StiffnessSummary {
    /// Fastest per-node RC time constant, seconds.
    pub tau_min: f64,
    /// Slowest per-node RC time constant, seconds.
    pub tau_max: f64,
    /// Node owning `tau_min`.
    pub tau_min_node: String,
    /// Node owning `tau_max`.
    pub tau_max_node: String,
    /// `tau_max / tau_min`.
    pub stiffness_ratio: f64,
    /// Recommended initial transient step (resolves the fastest pole).
    pub recommended_dt: f64,
    /// Number of nodes with a usable local capacitance.
    pub reactive_nodes: usize,
}

/// Convergence statistics of the interval fixpoint.
#[derive(Debug, Clone, Copy)]
pub struct FixpointStats {
    /// Sweeps executed before convergence (or the cap).
    pub sweeps: usize,
    /// Whether the fixpoint converged before the sweep cap.
    pub converged: bool,
    /// Nodes whose KCL feasibility check found no feasible voltage (kept
    /// their previous bound; indicates a circuit with no DC solution or an
    /// analyzer bug).
    pub conflicts: usize,
}

/// Full result of [`analyze`]: per-node bounds, per-device predictions, the
/// conditioning and stiffness summaries, and all findings.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Proven voltage bounds per unknown node, in node-id order.
    pub node_bounds: Vec<NodeBound>,
    /// Operating-region envelopes per MOSFET, in element order.
    pub mosfets: Vec<MosPrediction>,
    /// Conditioning pass output.
    pub conditioning: ConditioningSummary,
    /// Stiffness pass output (`None` when the circuit has no usable C).
    pub stiffness: Option<StiffnessSummary>,
    /// All findings from all passes.
    pub findings: Vec<Finding>,
    /// Interval fixpoint statistics.
    pub fixpoint: FixpointStats,
}

impl AnalysisReport {
    /// Whether any finding is [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.at_least(Severity::Error)
    }

    /// Whether the report has no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings at exactly `sev`.
    #[must_use]
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity() == sev).count()
    }

    /// Whether any finding is at `sev` or worse.
    #[must_use]
    pub fn at_least(&self, sev: Severity) -> bool {
        self.findings.iter().any(|f| f.severity() >= sev)
    }

    /// Bound for a node by name, if the node exists.
    #[must_use]
    pub fn bound_for(&self, node: &str) -> Option<&NodeBound> {
        self.node_bounds.iter().find(|b| b.node == node)
    }

    /// Renders findings at `min_severity` or worse, one per line, followed by
    /// a one-line summary. Mirrors `LintReport::render`.
    #[must_use]
    pub fn render(&self, min_severity: Severity) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.severity() >= min_severity {
                out.push_str(&f.to_string());
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "analysis: {} error(s), {} warning(s), {} info; {} node(s) bounded, {} sweep(s){}\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.node_bounds
                .iter()
                .filter(|b| !b.interval().is_unbounded() && b.hi - b.lo < 1e3)
                .count(),
            self.fixpoint.sweeps,
            if self.fixpoint.converged {
                ""
            } else {
                " (fixpoint hit sweep cap)"
            },
        ));
        out
    }
}

/// Tuning knobs for [`analyze_with`]. The defaults match the solver's
/// defaults (gmin) and the thresholds used by the golden tests.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Shunt conductance to ground assumed at every node; must match the
    /// final-polish gmin of the Newton solve being predicted.
    pub gmin: f64,
    /// Cap on fixpoint sweeps.
    pub max_sweeps: usize,
    /// Bisection iterations per node-bound prune.
    pub bisect_iters: usize,
    /// Row `max/min` spread that triggers `A003`.
    pub row_spread_limit: f64,
    /// Envelope magnitude below which a row entry counts as zero (`A004`).
    pub empty_row_eps: f64,
    /// `tau_max/tau_min` ratio that triggers `A005`.
    pub stiffness_limit: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            gmin: 1e-12,
            max_sweeps: 30,
            bisect_iters: 50,
            row_spread_limit: 1e10,
            empty_row_eps: 1e-9,
            stiffness_limit: 1e6,
        }
    }
}

/// Whether the analyzer's opt-in hooks are enabled. Controlled by the
/// `CML_ANALYZE` environment variable: `off`, `0`, `false`, or `no` disable
/// it. Explicit [`analyze`] calls always run; this gate only affects
/// behaviour wired into other paths (Newton warm starting).
pub fn enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("CML_ANALYZE").as_deref(),
            Ok("off" | "0" | "false" | "no")
        )
    })
}

/// Runs all passes with default options.
#[must_use]
pub fn analyze(ckt: &Circuit) -> AnalysisReport {
    analyze_with(ckt, &AnalyzeOptions::default())
}

/// Runs all passes with explicit options.
#[must_use]
pub fn analyze_with(ckt: &Circuit, opts: &AnalyzeOptions) -> AnalysisReport {
    let iv = interval_op::interval_dc(ckt, opts);
    let mut findings = iv.findings.clone();

    let cond = conditioning::conditioning(ckt, &iv.bounds, opts);
    findings.extend(cond.findings);

    let (stiff, stiff_findings) = stiffness::stiffness(ckt, &iv.bounds, opts);
    findings.extend(stiff_findings);

    let node_bounds = (1..ckt.num_nodes())
        .map(|raw| {
            let b = iv.bounds[raw];
            NodeBound {
                node: ckt
                    .node_name(crate::circuit::NodeId::from_raw(
                        u32::try_from(raw).unwrap_or(0),
                    ))
                    .to_string(),
                lo: b.lo,
                hi: b.hi,
            }
        })
        .collect();

    AnalysisReport {
        node_bounds,
        mosfets: iv.mosfets,
        conditioning: cond.summary,
        stiffness: stiff,
        findings,
        fixpoint: FixpointStats {
            sweeps: iv.sweeps,
            converged: iv.converged,
            conflicts: iv.conflicts,
        },
    }
}

/// [`analyze_with`] under a telemetry span; bumps the `analyze_runs` counter.
#[must_use]
pub fn analyze_traced(ckt: &Circuit, opts: &AnalyzeOptions, tel: &Telemetry) -> AnalysisReport {
    let _t = tel.timer(Phase::Analyze);
    tel.count(|c| c.analyze_runs += 1);
    analyze_with(ckt, opts)
}

/// Interval-only pass used by the Newton warm start: returns per-raw-node
/// bounds without running the conditioning/stiffness passes.
#[must_use]
pub fn dc_bounds(ckt: &Circuit, gmin: f64) -> Vec<Interval> {
    let opts = AnalyzeOptions {
        gmin: gmin.max(f64::MIN_POSITIVE),
        ..AnalyzeOptions::default()
    };
    interval_op::interval_dc(ckt, &opts).bounds
}

/// Builds the Newton starting vector from interval midpoints. Branch
/// currents start at zero. Called from the solver when
/// `NewtonOptions::warm_start_from_analysis` is set and [`enabled`] is true.
pub(crate) fn warm_start_vector(ckt: &Circuit, gmin: f64, dim: usize, tel: &Telemetry) -> Vec<f64> {
    let _t = tel.timer(Phase::Analyze);
    tel.count(|c| c.analyze_runs += 1);
    let bounds = dc_bounds(ckt, gmin);
    let mut x0 = vec![0.0; dim];
    for raw in 1..ckt.num_nodes() {
        // Only trust midpoints of boxes the fixpoint actually tightened; a
        // half-pruned worst-case box has a midpoint far worse than zero.
        if raw - 1 < x0.len() && bounds[raw].width() <= 10.0 {
            x0[raw - 1] = bounds[raw].midpoint();
        }
    }
    x0
}

/// Closed-loop soundness check: every converged node voltage must lie inside
/// the predicted interval. Returns `A006` findings for violations and bumps
/// the prediction counters.
#[must_use]
pub fn check_op_traced(
    ckt: &Circuit,
    report: &AnalysisReport,
    op: &OpResult,
    tel: &Telemetry,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let n = report
        .node_bounds
        .len()
        .min(ckt.num_nodes().saturating_sub(1));
    for (i, nb) in report.node_bounds.iter().take(n).enumerate() {
        let node = crate::circuit::NodeId::from_raw(u32::try_from(i + 1).unwrap_or(0));
        let v = op.voltage(node);
        tel.count(|c| c.prediction_checks += 1);
        if !(v >= nb.lo && v <= nb.hi) {
            tel.count(|c| c.prediction_violations += 1);
            out.push(Finding {
                code: AnalyzeCode::PredictionViolation,
                element: None,
                nodes: vec![nb.node.clone()],
                message: format!(
                    "converged op voltage {v:.6e} V escapes predicted bounds \
                     [{:.6e}, {:.6e}] V",
                    nb.lo, nb.hi
                ),
            });
        }
    }
    out
}

/// Non-traced wrapper around [`check_op_traced`].
#[must_use]
pub fn check_op(ckt: &Circuit, report: &AnalysisReport, op: &OpResult) -> Vec<Finding> {
    check_op_traced(ckt, report, op, &Telemetry::default())
}

/// Closed-loop conditioning check: a circuit the analyzer predicted healthy
/// (no `A003`/`A004`) must not have needed dense fallbacks or pivot rescue at
/// runtime. Returns `A006` findings for contradictions.
#[must_use]
pub fn check_counters_traced(
    report: &AnalysisReport,
    counters: &Counters,
    tel: &Telemetry,
) -> Vec<Finding> {
    tel.count(|c| c.prediction_checks += 1);
    let predicted_trouble = report.findings.iter().any(|f| {
        matches!(
            f.code,
            AnalyzeCode::RowScaleImbalance | AnalyzeCode::EmptyRow
        )
    });
    let mut out = Vec::new();
    if !predicted_trouble && counters.dense_fallbacks > 0 {
        tel.count(|c| c.prediction_violations += 1);
        out.push(Finding {
            code: AnalyzeCode::PredictionViolation,
            element: None,
            nodes: Vec::new(),
            message: format!(
                "analyzer predicted a well-conditioned system but the sparse \
                 solver fell back to dense {} time(s)",
                counters.dense_fallbacks
            ),
        });
    }
    out
}

/// Non-traced wrapper around [`check_counters_traced`].
#[must_use]
pub fn check_counters(report: &AnalysisReport, counters: &Counters) -> Vec<Finding> {
    check_counters_traced(report, counters, &Telemetry::default())
}
