//! A compact SPICE-class analog circuit simulator.
//!
//! This crate is the substrate that replaces HSPICE in the reproduction of
//! the 10 Gb/s CML I/O interface paper: the paper's entire evaluation is
//! circuit simulation, so the simulator itself had to be built. It
//! implements the same algorithm family production simulators use:
//!
//! * **Modified nodal analysis (MNA)** — node voltages plus branch currents
//!   for voltage-defined elements ([`circuit::Circuit`] / [`element`]),
//! * **DC operating point** — damped Newton-Raphson with voltage step
//!   limiting, gmin stepping and source stepping fallbacks
//!   ([`analysis::op`]),
//! * **DC sweep** — operating points along a swept source value
//!   ([`analysis::dc`]),
//! * **AC small-signal analysis** — complex MNA linearized around the
//!   operating point ([`analysis::ac`]),
//! * **Transient analysis** — trapezoidal (default) or backward-Euler
//!   companion models with per-step Newton iteration ([`analysis::tran`]),
//!   streaming accepted samples through columnar [`analysis::sink`]s
//!   (with a compressed disk spill + checkpoint/resume sink in
//!   [`analysis::spill`]) so run length is not bounded by memory.
//!
//! Device models: resistor, capacitor, inductor, independent V/I sources
//! (DC / pulse / sine / PWL waveforms), VCVS/VCCS controlled sources, a
//! junction diode, and a Level-1 MOSFET with channel-length modulation and
//! Meyer-style terminal capacitances — adequate for first-order 0.18 µm
//! design work (the process parameters live in `cml-pdk`).
//!
//! # Example
//!
//! A resistive divider:
//!
//! ```
//! use cml_spice::prelude::*;
//!
//! # fn main() -> Result<(), cml_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 2.0));
//! ckt.add(Resistor::new("R1", vin, out, 1.0e3));
//! ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1.0e3));
//! let op = cml_spice::analysis::op::solve(&ckt)?;
//! assert!((op.voltage(out) - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod analyze;
pub mod circuit;
pub mod devices;
pub mod element;
pub mod elements;
mod error;
pub mod flight;
pub mod lint;
pub mod waveform;

pub use circuit::{Circuit, NodeId};
pub use error::SpiceError;

// Solver instrumentation: every analysis has a `*_traced` variant taking
// a `telemetry::Telemetry` handle (see `cml-telemetry`). Re-exported so
// downstream crates need no extra dependency edge to use it.
pub use cml_telemetry as telemetry;

/// Convenient glob-import surface for building and simulating circuits.
pub mod prelude {
    pub use crate::analysis::ac::{self, AcResult};
    pub use crate::analysis::batch::{self, BatchOpResult, BatchTranResult};
    pub use crate::analysis::dc::{self, DcSweepResult};
    pub use crate::analysis::op::{self, OpResult};
    pub use crate::analysis::sink::{
        DenseSink, Tee, TranMeta, TranProbes, TranStats, WaveChunk, WaveSink,
    };
    pub use crate::analysis::spill::{SpillReader, SpillSink};
    pub use crate::analysis::tran::{self, TranConfig, TranResult};
    pub use crate::analyze::{self, AnalysisReport, AnalyzeCode, Finding as AnalyzeFinding};
    pub use crate::circuit::{Circuit, NodeId};
    pub use crate::devices::diode::{Diode, DiodeParams};
    pub use crate::devices::mosfet::{MosParams, MosType, Mosfet};
    pub use crate::elements::controlled::{Vccs, Vcvs};
    pub use crate::elements::sources::{Isource, Vsource};
    pub use crate::elements::two_terminal::{Capacitor, Inductor, Resistor};
    pub use crate::waveform::Waveform;
}

/// Thermal voltage `kT/q` at the given temperature, in volts.
///
/// Used by the diode and subthreshold models.
///
/// ```
/// let vt = cml_spice::thermal_voltage(27.0);
/// assert!((vt - 0.02585).abs() < 2e-4);
/// ```
#[must_use]
pub fn thermal_voltage(temp_celsius: f64) -> f64 {
    const K_OVER_Q: f64 = 8.617_333_262e-5; // eV/K
    K_OVER_Q * (temp_celsius + 273.15)
}

#[cfg(test)]
mod tests {
    #[test]
    fn thermal_voltage_at_room_temp() {
        let vt = super::thermal_voltage(27.0);
        assert!((vt - 0.02585).abs() < 2e-4, "vt = {vt}");
    }

    #[test]
    fn thermal_voltage_scales_with_temperature() {
        assert!(super::thermal_voltage(125.0) > super::thermal_voltage(-40.0));
    }
}
