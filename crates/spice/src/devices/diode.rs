//! Junction diode (Shockley model with junction capacitance).
//!
//! Used by the bandgap-style reference studies and available for ESD /
//! clamping structures. The exponential is argument-limited for Newton
//! robustness, the standard SPICE trick.

use super::DeviceCap;
use crate::circuit::NodeId;
use crate::element::{
    AcStamper, DcCoupling, DcTransfer, Element, ElementKind, StampCtx, StampMode, Stamper,
};

/// Maximum exponent argument before linear extrapolation takes over.
const MAX_EXP_ARG: f64 = 40.0;

/// Diode model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DiodeParams {
    /// Saturation current, amps.
    pub is: f64,
    /// Emission coefficient (ideality factor).
    pub n: f64,
    /// Zero-bias junction capacitance, farads.
    pub cj0: f64,
    /// Operating temperature, °C (sets the thermal voltage).
    pub temp_c: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            is: 1e-14,
            n: 1.0,
            cj0: 0.0,
            temp_c: 27.0,
        }
    }
}

/// Exponential with linear continuation beyond [`MAX_EXP_ARG`] — value and
/// slope are continuous at the switchover.
fn limited_exp(x: f64) -> (f64, f64) {
    if x <= MAX_EXP_ARG {
        let e = x.exp();
        (e, e)
    } else {
        let e = MAX_EXP_ARG.exp();
        (e * (1.0 + (x - MAX_EXP_ARG)), e)
    }
}

/// A two-terminal junction diode, anode `a` → cathode `k`.
#[derive(Debug, Clone)]
pub struct Diode {
    name: String,
    a: NodeId,
    k: NodeId,
    params: DiodeParams,
}

impl Diode {
    /// Creates a diode with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `is <= 0` or `n <= 0`.
    #[must_use]
    pub fn new(name: &str, a: NodeId, k: NodeId, params: DiodeParams) -> Self {
        assert!(
            params.is > 0.0 && params.is.is_finite(),
            "diode {name}: saturation current must be positive"
        );
        assert!(
            params.n > 0.0 && params.n.is_finite(),
            "diode {name}: emission coefficient must be positive"
        );
        Diode {
            name: name.to_string(),
            a,
            k,
            params,
        }
    }

    /// Current and conductance at junction voltage `v`.
    #[must_use]
    pub fn iv(&self, v: f64) -> (f64, f64) {
        junction_iv(&self.params, v)
    }
}

/// Current and conductance for a junction with `params` at voltage `v` —
/// the exact curve the Newton stamps use, shared with the static analyzer so
/// its interval bounds match the solver's model bit-for-bit.
pub(crate) fn junction_iv(params: &DiodeParams, v: f64) -> (f64, f64) {
    let vt = crate::thermal_voltage(params.temp_c) * params.n;
    let (e, de) = limited_exp(v / vt);
    let i = params.is * (e - 1.0);
    let g = params.is * de / vt;
    (i, g)
}

impl Element for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.k]
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn state_size(&self) -> usize {
        2
    }

    fn init_state(&self, ctx: &StampCtx<'_>, state: &mut [f64]) {
        DeviceCap::init(ctx.v(self.a), ctx.v(self.k), state);
    }

    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        let v = ctx.v(self.a) - ctx.v(self.k);
        let (i, g) = self.iv(v);
        let (a, k) = (self.a.index(), self.k.index());
        out.conductance(a, k, g);
        out.current_source(a, k, i - g * v);
        if matches!(ctx.mode, StampMode::Tran { .. }) {
            DeviceCap::stamp(ctx, out, self.params.cj0, a, k, ctx.state);
        }
    }

    fn update_state(&self, ctx: &StampCtx<'_>, state_next: &mut [f64]) {
        DeviceCap::update(
            ctx,
            self.params.cj0,
            ctx.v(self.a),
            ctx.v(self.k),
            ctx.state,
            state_next,
        );
    }

    fn stamp_ac(&self, x_op: &[f64], _bb: usize, omega: f64, out: &mut AcStamper<'_>) {
        let va = self.a.index().map_or(0.0, |i| x_op[i]);
        let vk = self.k.index().map_or(0.0, |i| x_op[i]);
        let (_, g) = self.iv(va - vk);
        out.conductance(self.a.index(), self.k.index(), g);
        out.capacitance(self.a.index(), self.k.index(), self.params.cj0, omega);
    }

    fn dc_power(&self, x_op: &[f64], _bb: usize) -> Option<f64> {
        let va = self.a.index().map_or(0.0, |i| x_op[i]);
        let vk = self.k.index().map_or(0.0, |i| x_op[i]);
        let (i, _) = self.iv(va - vk);
        Some((va - vk) * i)
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Diode
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        vec![DcCoupling::Conductive(self.a, self.k)]
    }

    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::Junction {
            a: self.a,
            k: self.k,
            params: self.params.clone(),
        }
    }

    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        format!(
            "D{} {} {} IS={:.3e} N={:.3}",
            self.name,
            node_name(self.a),
            node_name(self.k),
            self.params.is,
            self.params.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_current_is_exponential() {
        let d = Diode::new(
            "D1",
            NodeId::from_raw(1),
            NodeId::GROUND,
            DiodeParams::default(),
        );
        let (i1, _) = d.iv(0.6);
        let (i2, _) = d.iv(0.66);
        // One decade per ~60 mV at n=1, T=27 °C.
        let ratio = i2 / i1;
        assert!(ratio > 8.0 && ratio < 12.5, "ratio = {ratio}");
    }

    #[test]
    fn reverse_current_saturates() {
        let d = Diode::new(
            "D1",
            NodeId::from_raw(1),
            NodeId::GROUND,
            DiodeParams::default(),
        );
        let (i, g) = d.iv(-1.0);
        assert!((i + 1e-14).abs() < 1e-16);
        assert!(g > 0.0, "conductance must stay positive for Newton");
    }

    #[test]
    fn limited_exp_is_continuous() {
        let below = limited_exp(MAX_EXP_ARG - 1e-9);
        let above = limited_exp(MAX_EXP_ARG + 1e-9);
        assert!((below.0 - above.0).abs() / below.0 < 1e-6);
        assert!((below.1 - above.1).abs() / below.1 < 1e-6);
    }

    #[test]
    fn limited_exp_grows_linearly_beyond_cap() {
        let (v1, _) = limited_exp(MAX_EXP_ARG + 1.0);
        let (v2, _) = limited_exp(MAX_EXP_ARG + 2.0);
        let (v3, _) = limited_exp(MAX_EXP_ARG + 3.0);
        assert!(((v3 - v2) - (v2 - v1)).abs() / v1 < 1e-12);
    }

    #[test]
    #[should_panic(expected = "saturation current")]
    fn invalid_is_panics() {
        let p = DiodeParams {
            is: 0.0,
            ..DiodeParams::default()
        };
        let _ = Diode::new("D1", NodeId::from_raw(1), NodeId::GROUND, p);
    }

    #[test]
    fn conductance_matches_numeric_derivative() {
        let d = Diode::new(
            "D1",
            NodeId::from_raw(1),
            NodeId::GROUND,
            DiodeParams::default(),
        );
        let v = 0.55;
        let h = 1e-8;
        let num = (d.iv(v + h).0 - d.iv(v - h).0) / (2.0 * h);
        let ana = d.iv(v).1;
        assert!((num - ana).abs() / ana < 1e-5);
    }
}
