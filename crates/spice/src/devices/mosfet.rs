//! Level-1 MOSFET with channel-length modulation and fixed terminal
//! capacitances.
//!
//! The model implements the square-law equations every 0.18 µm hand design
//! starts from. Second-order effects that matter to the paper's circuits —
//! output conductance (λ), gate capacitance loading, drain/source junction
//! capacitance — are included; velocity saturation and body effect are
//! approximated by parameter choice (see `cml-pdk` for calibration notes).
//! Terminal capacitances use the operating-region-independent Meyer
//! averages (`2/3·W·L·Cox` gate-source in saturation plus overlaps), kept
//! constant across the simulation for robustness.

use super::DeviceCap;
use crate::circuit::NodeId;
use crate::element::{
    AcStamper, DcCoupling, DcTransfer, Element, ElementKind, StampCtx, StampMode, Stamper,
};
use crate::lint::LintCode;
use std::fmt;

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosType {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

impl MosType {
    /// +1 for NMOS, −1 for PMOS.
    #[must_use]
    pub fn polarity(self) -> f64 {
        match self {
            MosType::Nmos => 1.0,
            MosType::Pmos => -1.0,
        }
    }
}

impl fmt::Display for MosType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosType::Nmos => write!(f, "nmos"),
            MosType::Pmos => write!(f, "pmos"),
        }
    }
}

/// Level-1 model card plus geometry.
///
/// All voltages are magnitudes in the device's own polarity: `vth0` is
/// positive for both NMOS and PMOS.
#[derive(Debug, Clone, PartialEq)]
pub struct MosParams {
    /// Channel polarity.
    pub mos_type: MosType,
    /// Drawn channel width, meters.
    pub w: f64,
    /// Drawn channel length, meters.
    pub l: f64,
    /// Zero-bias threshold voltage magnitude, volts.
    pub vth0: f64,
    /// Transconductance parameter `µ·Cox`, A/V².
    pub kp: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Gate-source/drain overlap capacitance per width, F/m.
    pub cov: f64,
    /// Junction capacitance per area, F/m² (drain/source to body).
    pub cj: f64,
    /// Source/drain diffusion length used for junction area, meters.
    pub ldiff: f64,
}

impl MosParams {
    /// Validates the parameter set, returning a message on violation.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !(self.w > 0.0 && self.w.is_finite()) {
            return Err(format!("width must be positive, got {}", self.w));
        }
        if !(self.l > 0.0 && self.l.is_finite()) {
            return Err(format!("length must be positive, got {}", self.l));
        }
        if !(self.kp > 0.0 && self.kp.is_finite()) {
            return Err(format!("kp must be positive, got {}", self.kp));
        }
        if !(self.vth0.is_finite() && self.vth0 >= 0.0) {
            return Err(format!(
                "vth0 must be a non-negative magnitude, got {}",
                self.vth0
            ));
        }
        if !(self.lambda >= 0.0 && self.lambda.is_finite()) {
            return Err(format!("lambda must be non-negative, got {}", self.lambda));
        }
        Ok(())
    }

    /// Device beta `kp·W/L`, A/V².
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }

    /// Gate-source capacitance (Meyer saturation average + overlap).
    #[must_use]
    pub fn cgs(&self) -> f64 {
        2.0 / 3.0 * self.w * self.l * self.cox + self.cov * self.w
    }

    /// Gate-drain capacitance (overlap only, saturation assumption).
    #[must_use]
    pub fn cgd(&self) -> f64 {
        self.cov * self.w
    }

    /// Drain (or source) junction capacitance to body.
    #[must_use]
    pub fn cjunc(&self) -> f64 {
        self.cj * self.w * self.ldiff
    }
}

/// Large-signal evaluation in the normalized (NMOS, `vds ≥ 0`) frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Drain current, amps (≥ 0 in the normalized frame).
    pub ids: f64,
    /// `∂ids/∂vgs`, siemens.
    pub gm: f64,
    /// `∂ids/∂vds`, siemens.
    pub gds: f64,
    /// Operating region.
    pub region: MosRegion,
}

/// Operating region of the square-law model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// `vgs < vth`.
    Cutoff,
    /// `0 ≤ vds < vgs − vth`.
    Triode,
    /// `vds ≥ vgs − vth`.
    Saturation,
}

/// Square-law current and derivatives in the normalized frame.
///
/// `vgs`, `vds` must already be polarity-corrected with `vds ≥ 0`.
#[must_use]
pub fn square_law(params: &MosParams, vgs: f64, vds: f64) -> MosEval {
    debug_assert!(vds >= 0.0, "square_law requires normalized vds");
    let beta = params.beta();
    let vov = vgs - params.vth0;
    if vov <= 0.0 {
        return MosEval {
            ids: 0.0,
            gm: 0.0,
            gds: 0.0,
            region: MosRegion::Cutoff,
        };
    }
    let clm = 1.0 + params.lambda * vds;
    if vds < vov {
        // Triode.
        let core = vov * vds - 0.5 * vds * vds;
        MosEval {
            ids: beta * core * clm,
            gm: beta * vds * clm,
            gds: beta * ((vov - vds) * clm + core * params.lambda),
            region: MosRegion::Triode,
        }
    } else {
        // Saturation.
        let core = 0.5 * vov * vov;
        MosEval {
            ids: beta * core * clm,
            gm: beta * vov * clm,
            gds: beta * core * params.lambda,
            region: MosRegion::Saturation,
        }
    }
}

/// A four-terminal MOSFET instance (body terminal accepted for netlist
/// fidelity; the Level-1 equations here use `gamma = 0`, so it only loads
/// the circuit through junction capacitance).
#[derive(Debug, Clone)]
pub struct Mosfet {
    name: String,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    b: NodeId,
    params: MosParams,
}

impl Mosfet {
    /// Creates a MOSFET. Terminal order: drain, gate, source, body.
    ///
    /// # Panics
    ///
    /// Panics if the parameter card is invalid (non-positive W/L/KP, …).
    #[must_use]
    pub fn new(name: &str, d: NodeId, g: NodeId, s: NodeId, b: NodeId, params: MosParams) -> Self {
        if let Err(msg) = params.validate() {
            panic!("mosfet {name}: {msg}");
        }
        Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            b,
            params,
        }
    }

    /// The model card.
    #[must_use]
    pub fn params(&self) -> &MosParams {
        &self.params
    }

    /// Large-signal evaluation at the given terminal voltages (actual,
    /// un-normalized). Returns the evaluation in the normalized frame plus
    /// whether drain/source were swapped.
    fn eval_at(&self, vd: f64, vg: f64, vs: f64) -> (MosEval, bool) {
        let p = self.params.mos_type.polarity();
        let vds_raw = p * (vd - vs);
        if vds_raw >= 0.0 {
            (square_law(&self.params, p * (vg - vs), vds_raw), false)
        } else {
            // Effective drain and source swap.
            (square_law(&self.params, p * (vg - vd), -vds_raw), true)
        }
    }

    /// Small-signal parameters at an operating point (gm, gds referred to
    /// the *actual* drain/source orientation).
    #[must_use]
    pub fn small_signal(&self, x_op: &[f64]) -> MosEval {
        let vd = self.d.index().map_or(0.0, |i| x_op[i]);
        let vg = self.g.index().map_or(0.0, |i| x_op[i]);
        let vs = self.s.index().map_or(0.0, |i| x_op[i]);
        self.eval_at(vd, vg, vs).0
    }

    /// Drain current at an operating point, in the device's own polarity
    /// (positive = conventional current into the drain for NMOS, out of
    /// the drain for PMOS).
    #[must_use]
    pub fn drain_current(&self, x_op: &[f64]) -> f64 {
        let vd = self.d.index().map_or(0.0, |i| x_op[i]);
        let vg = self.g.index().map_or(0.0, |i| x_op[i]);
        let vs = self.s.index().map_or(0.0, |i| x_op[i]);
        let (ev, swapped) = self.eval_at(vd, vg, vs);
        let p = self.params.mos_type.polarity();
        if swapped {
            -p * ev.ids
        } else {
            p * ev.ids
        }
    }
}

/// State slots: 3 internal caps × 2 (cgs, cgd, cdb). Source junction cap is
/// merged into cgs loading for simplicity (source is the low-impedance
/// terminal in every topology used here).
const N_CAPS: usize = 3;

impl Element for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.d, self.g, self.s, self.b]
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn state_size(&self) -> usize {
        2 * N_CAPS
    }

    fn init_state(&self, ctx: &StampCtx<'_>, state: &mut [f64]) {
        let (vd, vg, vs) = (ctx.v(self.d), ctx.v(self.g), ctx.v(self.s));
        let vb = ctx.v(self.b);
        DeviceCap::init(vg, vs, &mut state[0..2]);
        DeviceCap::init(vg, vd, &mut state[2..4]);
        DeviceCap::init(vd, vb, &mut state[4..6]);
    }

    fn stamp(&self, ctx: &StampCtx<'_>, out: &mut Stamper<'_>) {
        let (vd, vg, vs) = (ctx.v(self.d), ctx.v(self.g), ctx.v(self.s));
        let p = self.params.mos_type.polarity();
        let (ev, swapped) = self.eval_at(vd, vg, vs);

        // Effective (normalized-frame) drain and source node indices.
        let (nd, ns) = if swapped {
            (self.s.index(), self.d.index())
        } else {
            (self.d.index(), self.s.index())
        };
        let ng = self.g.index();
        let (vde, vse) = if swapped { (vs, vd) } else { (vd, vs) };

        // Current from effective drain to effective source:
        // I = p · ids(vgs_eff, vds_eff), with vgs_eff = p(vg − vse),
        // vds_eff = p(vde − vse). Chain rule gives real-frame stamps:
        let (gm, gds) = (ev.gm, ev.gds);
        out.mat(nd, ng, gm);
        out.mat(nd, nd, gds);
        out.mat(nd, ns, -(gm + gds));
        out.mat(ns, ng, -gm);
        out.mat(ns, nd, -gds);
        out.mat(ns, ns, gm + gds);
        let i_actual = p * ev.ids;
        let ieq = i_actual - gm * vg - gds * vde + (gm + gds) * vse;
        out.current_source(nd, ns, ieq);

        // Internal capacitances (transient only; no-ops in DC).
        if matches!(ctx.mode, StampMode::Tran { .. }) {
            let (g, d, s, b) = (
                self.g.index(),
                self.d.index(),
                self.s.index(),
                self.b.index(),
            );
            DeviceCap::stamp(ctx, out, self.params.cgs(), g, s, &ctx.state[0..2]);
            DeviceCap::stamp(ctx, out, self.params.cgd(), g, d, &ctx.state[2..4]);
            DeviceCap::stamp(ctx, out, self.params.cjunc(), d, b, &ctx.state[4..6]);
        }
    }

    fn update_state(&self, ctx: &StampCtx<'_>, state_next: &mut [f64]) {
        let (vd, vg, vs, vb) = (ctx.v(self.d), ctx.v(self.g), ctx.v(self.s), ctx.v(self.b));
        DeviceCap::update(
            ctx,
            self.params.cgs(),
            vg,
            vs,
            &ctx.state[0..2],
            &mut state_next[0..2],
        );
        DeviceCap::update(
            ctx,
            self.params.cgd(),
            vg,
            vd,
            &ctx.state[2..4],
            &mut state_next[2..4],
        );
        DeviceCap::update(
            ctx,
            self.params.cjunc(),
            vd,
            vb,
            &ctx.state[4..6],
            &mut state_next[4..6],
        );
    }

    fn stamp_ac(&self, x_op: &[f64], _bb: usize, omega: f64, out: &mut AcStamper<'_>) {
        let vd = self.d.index().map_or(0.0, |i| x_op[i]);
        let vg = self.g.index().map_or(0.0, |i| x_op[i]);
        let vs = self.s.index().map_or(0.0, |i| x_op[i]);
        let (ev, swapped) = self.eval_at(vd, vg, vs);
        let (nd, ns) = if swapped {
            (self.s.index(), self.d.index())
        } else {
            (self.d.index(), self.s.index())
        };
        let ng = self.g.index();
        // gm current from effective drain to effective source controlled
        // by (g, s_eff); gds between d_eff and s_eff.
        out.transconductance(nd, ns, ng, ns, ev.gm);
        out.conductance(nd, ns, ev.gds);
        // Capacitances at the physical terminals.
        let (g, d, s, b) = (
            self.g.index(),
            self.d.index(),
            self.s.index(),
            self.b.index(),
        );
        out.capacitance(g, s, self.params.cgs(), omega);
        out.capacitance(g, d, self.params.cgd(), omega);
        out.capacitance(d, b, self.params.cjunc(), omega);
    }

    fn dc_power(&self, x_op: &[f64], _bb: usize) -> Option<f64> {
        let vd = self.d.index().map_or(0.0, |i| x_op[i]);
        let vs = self.s.index().map_or(0.0, |i| x_op[i]);
        Some((vd - vs) * self.drain_current(x_op))
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Mosfet
    }

    fn dc_couplings(&self) -> Vec<DcCoupling> {
        // Only the channel conducts at DC: the gate is an open circuit
        // and the bulk junctions are modelled as capacitances only.
        vec![DcCoupling::Conductive(self.d, self.s)]
    }

    fn dc_transfer(&self) -> DcTransfer {
        DcTransfer::MosChannel {
            d: self.d,
            g: self.g,
            s: self.s,
            params: self.params.clone(),
        }
    }

    fn lint_self(&self) -> Vec<(LintCode, String)> {
        if self.d == self.s {
            vec![(
                LintCode::MosfetDegenerate,
                format!(
                    "mosfet '{}' has drain and source on the same node",
                    self.name
                ),
            )]
        } else {
            Vec::new()
        }
    }

    fn card(&self, node_name: &dyn Fn(NodeId) -> String) -> String {
        format!(
            "M{} {} {} {} {} {} W={:.3e} L={:.3e}",
            self.name,
            node_name(self.d),
            node_name(self.g),
            node_name(self.s),
            node_name(self.b),
            self.params.mos_type,
            self.params.w,
            self.params.l
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos_params() -> MosParams {
        MosParams {
            mos_type: MosType::Nmos,
            w: 10e-6,
            l: 0.18e-6,
            vth0: 0.45,
            kp: 170e-6,
            lambda: 0.1,
            cox: 8.4e-3,
            cov: 3.0e-10,
            cj: 1.0e-3,
            ldiff: 0.5e-6,
        }
    }

    #[test]
    fn cutoff_below_threshold() {
        let ev = square_law(&nmos_params(), 0.3, 1.0);
        assert_eq!(ev.region, MosRegion::Cutoff);
        assert_eq!(ev.ids, 0.0);
        assert_eq!(ev.gm, 0.0);
    }

    #[test]
    fn saturation_current_matches_formula() {
        let p = nmos_params();
        let (vgs, vds) = (0.9, 1.5);
        let ev = square_law(&p, vgs, vds);
        assert_eq!(ev.region, MosRegion::Saturation);
        let vov = vgs - p.vth0;
        let want = 0.5 * p.beta() * vov * vov * (1.0 + p.lambda * vds);
        assert!((ev.ids - want).abs() / want < 1e-12);
    }

    #[test]
    fn triode_current_matches_formula() {
        let p = nmos_params();
        let (vgs, vds) = (1.2, 0.2);
        let ev = square_law(&p, vgs, vds);
        assert_eq!(ev.region, MosRegion::Triode);
        let vov = vgs - p.vth0;
        let want = p.beta() * (vov * vds - 0.5 * vds * vds) * (1.0 + p.lambda * vds);
        assert!((ev.ids - want).abs() / want < 1e-12);
    }

    #[test]
    fn current_is_continuous_at_sat_boundary() {
        let p = nmos_params();
        let vgs = 1.0;
        let vdsat = vgs - p.vth0;
        let below = square_law(&p, vgs, vdsat - 1e-9);
        let above = square_law(&p, vgs, vdsat + 1e-9);
        assert!((below.ids - above.ids).abs() < 1e-9 * p.beta());
        assert!((below.gm - above.gm).abs() < 1e-6);
    }

    #[test]
    fn gm_matches_numeric_derivative() {
        let p = nmos_params();
        let (vgs, vds) = (1.0, 1.2);
        let h = 1e-7;
        let num = (square_law(&p, vgs + h, vds).ids - square_law(&p, vgs - h, vds).ids) / (2.0 * h);
        let ana = square_law(&p, vgs, vds).gm;
        assert!((num - ana).abs() / ana < 1e-5);
    }

    #[test]
    fn gds_matches_numeric_derivative_in_triode() {
        let p = nmos_params();
        let (vgs, vds) = (1.4, 0.3);
        let h = 1e-7;
        let num = (square_law(&p, vgs, vds + h).ids - square_law(&p, vgs, vds - h).ids) / (2.0 * h);
        let ana = square_law(&p, vgs, vds).gds;
        assert!((num - ana).abs() / ana.abs() < 1e-5);
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let p = nmos_params();
        let mut wide = p.clone();
        wide.w *= 2.0;
        assert!(wide.cgs() > p.cgs());
        assert!((wide.cgd() - 2.0 * p.cgd()).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn invalid_width_panics() {
        let mut p = nmos_params();
        p.w = 0.0;
        let _ = Mosfet::new(
            "M1",
            NodeId::from_raw(1),
            NodeId::from_raw(2),
            NodeId::GROUND,
            NodeId::GROUND,
            p,
        );
    }

    #[test]
    fn pmos_polarity() {
        assert_eq!(MosType::Pmos.polarity(), -1.0);
        assert_eq!(MosType::Nmos.polarity(), 1.0);
    }

    #[test]
    fn drain_current_sign_for_pmos() {
        let mut p = nmos_params();
        p.mos_type = MosType::Pmos;
        // PMOS: s at 1.8, g at 0.9, d at 0.0 → conducting, current flows
        // source→drain; drain_current (into drain, NMOS convention flipped)
        // is negative of the normalized ids.
        let m = Mosfet::new(
            "MP",
            NodeId::from_raw(1), // d
            NodeId::from_raw(2), // g
            NodeId::from_raw(3), // s
            NodeId::from_raw(3), // b
            p,
        );
        let x = [0.0, 0.9, 1.8];
        let i = m.drain_current(&x);
        assert!(i < 0.0, "pmos drain current should be negative, got {i}");
    }

    #[test]
    fn eval_swaps_when_vds_negative() {
        let m = Mosfet::new(
            "M1",
            NodeId::from_raw(1),
            NodeId::from_raw(2),
            NodeId::from_raw(3),
            NodeId::GROUND,
            nmos_params(),
        );
        // vd < vs: effective terminals swap, current reverses.
        let x = [0.0, 1.5, 1.0];
        let i = m.drain_current(&x);
        assert!(i < 0.0);
    }
}
