//! Nonlinear semiconductor device models.

pub mod diode;
pub mod mosfet;

use crate::element::{Integration, StampCtx, StampMode, Stamper};

/// Shared companion-model helper for the fixed capacitances inside device
/// models (MOSFET terminal caps, diode junction cap).
///
/// State layout per capacitance: `[v_prev, i_prev]`.
pub(crate) struct DeviceCap;

impl DeviceCap {
    /// Stamps one internal capacitance for the current mode. `state` is the
    /// 2-slot state slice for this capacitance.
    pub(crate) fn stamp(
        ctx: &StampCtx<'_>,
        out: &mut Stamper<'_>,
        c: f64,
        a: Option<usize>,
        b: Option<usize>,
        state: &[f64],
    ) {
        if c <= 0.0 {
            return;
        }
        if let StampMode::Tran { dt, method, .. } = ctx.mode {
            let (geq, ieq) = Self::companion(c, dt, method, state[0], state[1]);
            out.conductance(a, b, geq);
            out.current_source(b, a, ieq);
        }
    }

    /// Writes next state for one internal capacitance after convergence.
    pub(crate) fn update(
        ctx: &StampCtx<'_>,
        c: f64,
        va: f64,
        vb: f64,
        state_prev: &[f64],
        state_next: &mut [f64],
    ) {
        if let StampMode::Tran { dt, method, .. } = ctx.mode {
            let (geq, ieq) = Self::companion(c, dt, method, state_prev[0], state_prev[1]);
            let v_new = va - vb;
            state_next[0] = v_new;
            state_next[1] = geq * v_new - ieq;
        }
    }

    /// Initializes state from a DC solution.
    pub(crate) fn init(va: f64, vb: f64, state: &mut [f64]) {
        state[0] = va - vb;
        state[1] = 0.0;
    }

    fn companion(c: f64, dt: f64, method: Integration, v_prev: f64, i_prev: f64) -> (f64, f64) {
        match method {
            Integration::Trapezoidal => {
                let geq = 2.0 * c / dt;
                (geq, geq * v_prev + i_prev)
            }
            Integration::BackwardEuler => {
                let geq = c / dt;
                (geq, geq * v_prev)
            }
        }
    }
}
