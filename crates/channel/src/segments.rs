//! Multi-segment channels: line cards, connectors and backplane traces
//! cascaded into one end-to-end response (the physical topology of the
//! paper's Fig. 1 switch-fabric system).

use crate::Backplane;
use cml_numeric::Complex64;
use cml_sig::UniformWave;

/// One element of a channel cascade.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A distributed trace.
    Trace(Backplane),
    /// A connector, modeled as a frequency-tilted loss:
    /// `loss_db + tilt_db·(f/10 GHz)` with linear phase from `delay`.
    Connector {
        /// Flat insertion loss, dB.
        loss_db: f64,
        /// Additional loss at 10 GHz, dB.
        tilt_db: f64,
        /// Group delay, seconds.
        delay: f64,
    },
}

impl Segment {
    /// Complex transfer of this segment at `f` Hz.
    #[must_use]
    pub fn transfer(&self, f: f64) -> Complex64 {
        match self {
            Segment::Trace(bp) => bp.transfer(f),
            Segment::Connector {
                loss_db,
                tilt_db,
                delay,
            } => {
                let db = loss_db + tilt_db * (f / 10e9);
                let mag = 10f64.powf(-db / 20.0);
                let phase = -2.0 * std::f64::consts::PI * f * delay;
                Complex64::from_polar(mag, phase)
            }
        }
    }

    /// Nominal delay of the segment, seconds.
    #[must_use]
    pub fn delay(&self) -> f64 {
        match self {
            Segment::Trace(bp) => bp.bulk_delay(),
            Segment::Connector { delay, .. } => *delay,
        }
    }
}

/// A cascade of segments — transfer is the product of the parts.
///
/// ```
/// use cml_channel::segments::{CompositeChannel, Segment};
/// use cml_channel::Backplane;
///
/// let ch = CompositeChannel::new(vec![
///     Segment::Trace(Backplane::fr4_trace(0.1)),
///     Segment::Connector { loss_db: 0.5, tilt_db: 1.0, delay: 30e-12 },
///     Segment::Trace(Backplane::fr4_trace(0.4)),
/// ]);
/// assert!(ch.attenuation_db(5e9) > Backplane::fr4_trace(0.5).attenuation_db(5e9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeChannel {
    segments: Vec<Segment>,
}

impl CompositeChannel {
    /// Creates a cascade.
    ///
    /// # Panics
    ///
    /// Panics on an empty segment list.
    #[must_use]
    pub fn new(segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "cascade needs at least one segment");
        CompositeChannel { segments }
    }

    /// The paper's Fig. 1 path: line card trace → connector → backplane
    /// trace → connector → line card trace.
    #[must_use]
    pub fn switch_fabric_path(backplane_m: f64) -> Self {
        let connector = Segment::Connector {
            loss_db: 0.4,
            tilt_db: 1.2,
            delay: 35e-12,
        };
        CompositeChannel::new(vec![
            Segment::Trace(Backplane::fr4_trace(0.08)),
            connector.clone(),
            Segment::Trace(Backplane::fr4_trace(backplane_m)),
            connector,
            Segment::Trace(Backplane::fr4_trace(0.08)),
        ])
    }

    /// The segments.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// End-to-end complex transfer at `f` Hz.
    #[must_use]
    pub fn transfer(&self, f: f64) -> Complex64 {
        self.segments
            .iter()
            .fold(Complex64::ONE, |acc, s| acc * s.transfer(f))
    }

    /// End-to-end insertion loss at `f`, positive dB.
    #[must_use]
    pub fn attenuation_db(&self, f: f64) -> f64 {
        -self.transfer(f).db()
    }

    /// Total nominal delay, seconds.
    #[must_use]
    pub fn total_delay(&self) -> f64 {
        self.segments.iter().map(Segment::delay).sum()
    }

    /// Propagates a waveform through the cascade (frequency-domain
    /// filtering, optionally removing the bulk delay).
    #[must_use]
    // Lengths are forced to a power of two via `next_pow2` right before
    // the FFT calls, so the Err arms are unreachable by construction.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, wave: &UniformWave, remove_delay: bool) -> UniformWave {
        use cml_numeric::fft;
        let dt = wave.dt();
        let delay_samples = (self.total_delay() / dt).round() as usize;
        let tail = ((4.0 * self.total_delay() / dt).ceil() as usize).max((2e-9 / dt) as usize);
        let n = fft::next_pow2(wave.len() + delay_samples + tail);
        // Impulse response via Hermitian IFFT of the cascade transfer.
        let df = 1.0 / (n as f64 * dt);
        let mut spec = vec![Complex64::ZERO; n];
        spec[0] = self.transfer(0.0);
        for k in 1..=n / 2 {
            let h = self.transfer(k as f64 * df);
            spec[k] = h;
            if k < n / 2 {
                spec[n - k] = h.conj();
            }
        }
        spec[n / 2] = Complex64::from_real(spec[n / 2].re);
        let h = fft::ifft_real(&spec).expect("power-of-two by construction");
        let y = fft::convolve(wave.samples(), &h).expect("non-empty");
        let skip = if remove_delay { delay_samples } else { 0 };
        let data: Vec<f64> = (0..wave.len())
            .map(|i| y.get(i + skip).copied().unwrap_or(0.0))
            .collect();
        UniformWave::new(wave.t0(), dt, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;
    use cml_sig::EyeDiagram;

    #[test]
    fn cascade_loss_is_sum_of_parts() {
        let a = Backplane::fr4_trace(0.2);
        let b = Backplane::fr4_trace(0.3);
        let ch = CompositeChannel::new(vec![Segment::Trace(a.clone()), Segment::Trace(b.clone())]);
        let f = 5e9;
        let want = a.attenuation_db(f) + b.attenuation_db(f);
        assert!((ch.attenuation_db(f) - want).abs() < 1e-9);
    }

    #[test]
    fn connector_tilt_grows_with_frequency() {
        let c = Segment::Connector {
            loss_db: 0.5,
            tilt_db: 2.0,
            delay: 30e-12,
        };
        let lo = -c.transfer(1e9).db();
        let hi = -c.transfer(10e9).db();
        assert!((lo - 0.7).abs() < 0.01);
        assert!((hi - 2.5).abs() < 0.01);
    }

    #[test]
    fn switch_fabric_path_is_lossier_than_bare_trace() {
        let path = CompositeChannel::switch_fabric_path(0.4);
        let bare = Backplane::fr4_trace(0.4);
        assert!(path.attenuation_db(5e9) > bare.attenuation_db(5e9) + 1.0);
        assert!(path.total_delay() > bare.bulk_delay());
    }

    #[test]
    fn apply_degrades_the_eye_like_its_loss_says() {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let tx = NrzConfig::new(100e-12, 0.5).render(&bits);
        let path = CompositeChannel::switch_fabric_path(0.3);
        let rx = path.apply(&tx, true);
        let m_in = EyeDiagram::fold(&tx.skip_initial(2e-9), 100e-12).metrics();
        let m_out = EyeDiagram::fold(&rx.skip_initial(2e-9), 100e-12).metrics();
        assert!(m_out.height < m_in.height);
        assert!(m_out.height > 0.0, "moderate path keeps some eye");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_cascade_rejected() {
        let _ = CompositeChannel::new(vec![]);
    }
}
