//! Backplane / PCB-trace channel models.
//!
//! The paper's I/O interface exists to survive a lossy backplane: "serial
//! interconnect signals show a lot of high-frequency attenuation, skin
//! loss after propagation through long PCB trace on the backplane". The
//! authors used a physical backplane; this crate substitutes the standard
//! physical abstraction — a distributed RLGC transmission line with
//! frequency-dependent skin-effect resistance and dielectric loss:
//!
//! ```text
//! γ(f) = √( (R_dc + R_s·√f·(1+j)) + jωL' ) · ( G' + jωC' ) )
//! H(f) = e^{−γ(f)·length}
//! ```
//!
//! which is causal by construction, so the impulse response obtained by
//! inverse FFT ([`Backplane::impulse_response`]) has the realistic
//! long ISI tail that closes a 10 Gb/s eye (Fig. 15a of the paper).
//!
//! [`lumped`] provides single-pole RC approximations used in unit tests
//! and quick experiments.
//!
//! # Example
//!
//! ```
//! use cml_channel::Backplane;
//!
//! let bp = Backplane::fr4_trace(0.5); // 50 cm FR-4 trace
//! let a1 = bp.attenuation_db(1e9);
//! let a5 = bp.attenuation_db(5e9);
//! assert!(a5 > a1, "loss grows with frequency");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosstalk;
pub mod lumped;
pub mod segments;
pub mod touchstone;

use cml_numeric::{fft, Complex64};
use cml_sig::UniformWave;

/// A uniform lossy transmission line (distributed RLGC with skin-effect
/// and dielectric-loss frequency dependence), matched-terminated at both
/// ends so reflections are ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct Backplane {
    /// Physical length, meters.
    pub length: f64,
    /// DC conductor resistance, Ω/m.
    pub rdc: f64,
    /// Skin-effect coefficient: `R_s·√f` Ω/m with `f` in Hz.
    pub rskin: f64,
    /// Series inductance, H/m.
    pub l_per_m: f64,
    /// Shunt capacitance, F/m.
    pub c_per_m: f64,
    /// Dielectric loss tangent (`G' = ω·C'·tanδ`).
    pub tan_delta: f64,
}

impl Backplane {
    /// A 50 Ω FR-4 microstrip trace of the given length (meters):
    /// 0.2 mm copper trace, εeff ≈ 3.4, tanδ = 0.02.
    ///
    /// A 0.5 m instance loses roughly 3 dB at 1 GHz and 12 dB at 5 GHz —
    /// representative of the mid-2000s backplanes the paper targets.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not strictly positive.
    #[must_use]
    pub fn fr4_trace(length: f64) -> Self {
        assert!(length > 0.0, "length must be positive");
        Backplane {
            length,
            rdc: 8.0,
            rskin: 1.3e-3,
            l_per_m: 307e-9,
            c_per_m: 123e-12,
            tan_delta: 0.02,
        }
    }

    /// Characteristic impedance at high frequency, ohms.
    #[must_use]
    pub fn z0(&self) -> f64 {
        (self.l_per_m / self.c_per_m).sqrt()
    }

    /// Nominal propagation delay through the line, seconds.
    #[must_use]
    pub fn bulk_delay(&self) -> f64 {
        self.length * (self.l_per_m * self.c_per_m).sqrt()
    }

    /// Complex propagation factor `H(f) = e^{−γ·L}` at frequency `f` (Hz).
    /// `H(0)` is the (near-unity) DC transmission.
    #[must_use]
    pub fn transfer(&self, f: f64) -> Complex64 {
        let omega = 2.0 * std::f64::consts::PI * f;
        // Skin effect contributes equal real resistance and internal
        // inductive reactance: R_s·√f·(1 + j).
        let r_skin = self.rskin * f.max(0.0).sqrt();
        let z = Complex64::new(self.rdc + r_skin, r_skin + omega * self.l_per_m);
        let y = Complex64::new(omega * self.c_per_m * self.tan_delta, omega * self.c_per_m);
        if f == 0.0 {
            // γ = √(R_dc · G) → with G(0) = 0 the DC loss is only the
            // resistive divider against the terminations.
            let att = self.rdc * self.length / (2.0 * self.z0());
            return Complex64::from_real((-att).exp());
        }
        let gamma = (z * y).sqrt();
        (gamma.scale(-self.length)).exp()
    }

    /// Insertion loss magnitude at `f`, in positive dB.
    #[must_use]
    pub fn attenuation_db(&self, f: f64) -> f64 {
        -self.transfer(f).db()
    }

    /// Impulse response sampled at `dt`, `n` samples (`n` must be a power
    /// of two). Constructed by Hermitian-symmetric inverse FFT of the
    /// transfer function, so it is real and causal.
    ///
    /// # Errors
    ///
    /// Returns the underlying FFT error for invalid `n`.
    pub fn impulse_response(
        &self,
        dt: f64,
        n: usize,
    ) -> Result<Vec<f64>, cml_numeric::NumericError> {
        let df = 1.0 / (n as f64 * dt);
        let mut spec = vec![Complex64::ZERO; n];
        spec[0] = self.transfer(0.0);
        for k in 1..=n / 2 {
            let h = self.transfer(k as f64 * df);
            spec[k] = h;
            if k < n / 2 {
                spec[n - k] = h.conj();
            }
        }
        // Nyquist bin must be real for a real signal.
        spec[n / 2] = Complex64::from_real(spec[n / 2].re);
        let h = fft::ifft_real(&spec)?;
        // Normalize: IFFT of H(k) sampled this way yields h[k]·dt⁻¹ scaling
        // such that convolution with `dt`-spaced samples reproduces H; the
        // discrete impulse response is h[k] directly (sum ≈ H(0)).
        Ok(h)
    }

    /// Propagates a waveform through the channel (FFT convolution with
    /// the impulse response), optionally removing the bulk line delay so
    /// the output stays aligned with the input bit grid for eye folding.
    ///
    /// The output has the same grid and length as the input.
    #[must_use]
    // Lengths are forced to a power of two via `next_pow2` right before
    // the FFT calls, so the Err arms are unreachable by construction.
    #[allow(clippy::expect_used)]
    pub fn apply(&self, wave: &UniformWave, remove_delay: bool) -> UniformWave {
        let dt = wave.dt();
        let delay_samples = (self.bulk_delay() / dt).round() as usize;
        // Room for the response tail: 4× the bulk delay or 2 ns, whichever
        // is larger.
        let tail = ((4.0 * self.bulk_delay() / dt).ceil() as usize).max((2e-9 / dt) as usize);
        let n = fft::next_pow2(wave.len() + delay_samples + tail);
        let h = self
            .impulse_response(dt, n)
            .expect("power-of-two length by construction");
        let y = fft::convolve(wave.samples(), &h).expect("non-empty inputs");
        let skip = if remove_delay { delay_samples } else { 0 };
        let data: Vec<f64> = (0..wave.len())
            .map(|i| y.get(i + skip).copied().unwrap_or(0.0))
            .collect();
        UniformWave::new(wave.t0(), dt, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;
    use cml_sig::EyeDiagram;

    #[test]
    fn dc_transmission_is_near_unity() {
        let bp = Backplane::fr4_trace(0.5);
        let h0 = bp.transfer(0.0);
        assert!(h0.re > 0.9 && h0.re <= 1.0, "H(0) = {h0}");
        assert_eq!(h0.im, 0.0);
    }

    #[test]
    fn attenuation_is_monotone_in_frequency() {
        let bp = Backplane::fr4_trace(0.5);
        let freqs = [1e8, 5e8, 1e9, 2e9, 5e9, 1e10];
        let atts: Vec<f64> = freqs.iter().map(|&f| bp.attenuation_db(f)).collect();
        assert!(atts.windows(2).all(|w| w[1] > w[0]), "{atts:?}");
    }

    #[test]
    fn loss_scales_with_length() {
        let short = Backplane::fr4_trace(0.1);
        let long = Backplane::fr4_trace(0.5);
        let f = 5e9;
        let ratio = long.attenuation_db(f) / short.attenuation_db(f);
        assert!((ratio - 5.0).abs() < 0.2, "ratio = {ratio}");
    }

    #[test]
    fn representative_loss_magnitudes() {
        // The design target: a 0.5 m trace with ~10–15 dB loss at the
        // 5 GHz Nyquist of a 10 Gb/s stream.
        let bp = Backplane::fr4_trace(0.5);
        let a5 = bp.attenuation_db(5e9);
        assert!(a5 > 8.0 && a5 < 20.0, "5 GHz loss = {a5} dB");
    }

    #[test]
    fn z0_is_about_50_ohms() {
        let bp = Backplane::fr4_trace(0.3);
        assert!((bp.z0() - 50.0).abs() < 2.0, "z0 = {}", bp.z0());
    }

    #[test]
    fn impulse_response_is_causal_and_normalized() {
        let bp = Backplane::fr4_trace(0.3);
        let dt = 5e-12;
        let h = bp.impulse_response(dt, 8192).unwrap();
        // Nothing (beyond numerical noise) before the bulk delay.
        let delay_idx = (bp.bulk_delay() / dt) as usize;
        let pre: f64 = h[..delay_idx.saturating_sub(20)]
            .iter()
            .map(|v| v.abs())
            .fold(0.0, f64::max);
        let peak = h.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(pre < peak * 0.05, "pre-cursor energy {pre} vs peak {peak}");
        // Sum of the response equals the DC transmission.
        let sum: f64 = h.iter().sum();
        assert!((sum - bp.transfer(0.0).re).abs() < 0.02, "sum = {sum}");
    }

    #[test]
    fn long_trace_closes_the_eye_and_short_does_not() {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let tx = NrzConfig::new(100e-12, 0.5).render(&bits);

        let short = Backplane::fr4_trace(0.05).apply(&tx, true);
        let long = Backplane::fr4_trace(0.8).apply(&tx, true);

        // Skip the first bits (startup) before folding.
        let m_in = EyeDiagram::fold(&tx.skip_initial(1e-9), 100e-12).metrics();
        let m_short = EyeDiagram::fold(&short.skip_initial(1e-9), 100e-12).metrics();
        let m_long = EyeDiagram::fold(&long.skip_initial(1e-9), 100e-12).metrics();

        assert!(
            m_short.opening > 0.6 * m_in.opening,
            "short trace eye should stay open"
        );
        assert!(
            m_long.opening < 0.5 * m_short.opening,
            "long trace ISI should crush the eye: long {} vs short {}",
            m_long.opening,
            m_short.opening
        );
    }

    #[test]
    fn apply_preserves_grid() {
        let bits = [true, false, true, true, false];
        let tx = NrzConfig::new(100e-12, 0.5).render(&bits);
        let rx = Backplane::fr4_trace(0.2).apply(&tx, true);
        assert_eq!(rx.len(), tx.len());
        assert_eq!(rx.dt(), tx.dt());
        assert_eq!(rx.t0(), tx.t0());
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        let _ = Backplane::fr4_trace(0.0);
    }
}
