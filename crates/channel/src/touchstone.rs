//! Touchstone (`.s2p`) export of channel responses.
//!
//! The paper's channel was a physical backplane that the authors would
//! have characterized with a VNA into S-parameter files; this module
//! closes the loop in the other direction, exporting our RLGC model as a
//! standard 2-port Touchstone file so external tools (ADS, scikit-rf,
//! IBIS-AMI flows) can consume the same channel the Rust benches use.
//!
//! The matched-terminated line maps onto S-parameters as `S21 = S12 =
//! H(f)` (the transfer we compute) and `S11 = S22 = 0` (ideal match —
//! reflections are outside the model's scope, and the file says so in
//! its comment header).

use crate::segments::CompositeChannel;
use crate::Backplane;
use cml_numeric::Complex64;
use std::fmt::Write as _;

/// Anything exportable as a matched 2-port: returns `S21(f)`.
pub trait TwoPort {
    /// Forward transmission at `f` Hz.
    fn s21(&self, f: f64) -> Complex64;
    /// A short description for the file header.
    fn description(&self) -> String;
}

impl TwoPort for Backplane {
    fn s21(&self, f: f64) -> Complex64 {
        self.transfer(f)
    }

    fn description(&self) -> String {
        format!(
            "RLGC trace: {:.3} m, Z0 = {:.1} ohm, {:.2} dB @ 5 GHz",
            self.length,
            self.z0(),
            self.attenuation_db(5e9)
        )
    }
}

impl TwoPort for CompositeChannel {
    fn s21(&self, f: f64) -> Complex64 {
        self.transfer(f)
    }

    fn description(&self) -> String {
        format!(
            "composite path: {} segments, {:.2} dB @ 5 GHz, {:.2} ns delay",
            self.segments().len(),
            self.attenuation_db(5e9),
            self.total_delay() * 1e9
        )
    }
}

/// Renders a Touchstone v1 `.s2p` file body (RI format, Hz, 50 Ω
/// reference) over the given frequency grid.
///
/// # Panics
///
/// Panics if `freqs` is empty or not strictly increasing.
#[must_use]
pub fn to_s2p(port: &dyn TwoPort, freqs: &[f64]) -> String {
    assert!(!freqs.is_empty(), "need at least one frequency");
    assert!(
        freqs.windows(2).all(|w| w[1] > w[0]),
        "frequencies must be strictly increasing"
    );
    let mut out = String::new();
    let _ = writeln!(out, "! cml-channel export: {}", port.description());
    let _ = writeln!(out, "! S11 = S22 = 0 (model assumes matched terminations)");
    let _ = writeln!(out, "# Hz S RI R 50");
    for &f in freqs {
        let s21 = port.s21(f);
        // Column order per Touchstone 2-port: S11 S21 S12 S22.
        let _ = writeln!(
            out,
            "{:.6e} 0 0 {:.6e} {:.6e} {:.6e} {:.6e} 0 0",
            f, s21.re, s21.im, s21.re, s21.im
        );
    }
    out
}

/// Parses the `S21` column back out of an `.s2p` body produced by
/// [`to_s2p`] (round-trip support for tests and tooling).
///
/// Returns `(freqs, s21)` pairs; ignores comment and option lines.
#[must_use]
pub fn parse_s2p_s21(body: &str) -> Vec<(f64, Complex64)> {
    body.lines()
        .filter(|l| !l.trim_start().starts_with(['!', '#']) && !l.trim().is_empty())
        .filter_map(|l| {
            let cols: Vec<f64> = l
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .ok()?;
            if cols.len() == 9 {
                Some((cols[0], Complex64::new(cols[3], cols[4])))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::{CompositeChannel, Segment};

    #[test]
    fn s2p_roundtrip_preserves_transfer() {
        let bp = Backplane::fr4_trace(0.4);
        let freqs: Vec<f64> = (1..=50).map(|k| k as f64 * 0.5e9).collect();
        let body = to_s2p(&bp, &freqs);
        let parsed = parse_s2p_s21(&body);
        assert_eq!(parsed.len(), freqs.len());
        for ((f, s21), &f_want) in parsed.iter().zip(&freqs) {
            assert!((f - f_want).abs() < 1.0);
            let want = bp.transfer(f_want);
            assert!((*s21 - want).abs() < 1e-5, "mismatch at {f:.3e}");
        }
    }

    #[test]
    fn header_declares_format_and_reference() {
        let bp = Backplane::fr4_trace(0.1);
        let body = to_s2p(&bp, &[1e9, 2e9]);
        assert!(body.contains("# Hz S RI R 50"));
        assert!(body.starts_with('!'));
    }

    #[test]
    fn composite_channel_exports() {
        let path = CompositeChannel::new(vec![
            Segment::Trace(Backplane::fr4_trace(0.2)),
            Segment::Connector {
                loss_db: 0.5,
                tilt_db: 1.0,
                delay: 30e-12,
            },
        ]);
        let body = to_s2p(&path, &[1e9, 5e9, 10e9]);
        let parsed = parse_s2p_s21(&body);
        assert_eq!(parsed.len(), 3);
        // Magnitude decreases with frequency.
        assert!(parsed[2].1.abs() < parsed[0].1.abs());
        assert!(body.contains("2 segments"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_freqs_rejected() {
        let bp = Backplane::fr4_trace(0.1);
        let _ = to_s2p(&bp, &[2e9, 1e9]);
    }
}
