//! Lumped single-pole channel approximations.
//!
//! A first-order RC is the textbook stand-in for a short interconnect:
//! useful for unit tests (its step response is known in closed form) and
//! for quick what-if experiments where the full RLGC line is overkill.

use cml_numeric::Complex64;
use cml_sig::UniformWave;

/// A single-pole low-pass channel `H(f) = 1 / (1 + j·f/f_pole)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcChannel {
    f_pole: f64,
}

impl RcChannel {
    /// Creates a channel with the given pole frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `f_pole` is not strictly positive.
    #[must_use]
    pub fn new(f_pole: f64) -> Self {
        assert!(f_pole > 0.0, "pole frequency must be positive");
        RcChannel { f_pole }
    }

    /// Pole frequency, Hz.
    #[must_use]
    pub fn f_pole(&self) -> f64 {
        self.f_pole
    }

    /// Complex transfer at `f` Hz.
    #[must_use]
    pub fn transfer(&self, f: f64) -> Complex64 {
        Complex64::ONE / Complex64::new(1.0, f / self.f_pole)
    }

    /// Filters a waveform through the pole using the exact discrete
    /// (zero-order-hold) recursion, which is unconditionally stable.
    #[must_use]
    pub fn apply(&self, wave: &UniformWave) -> UniformWave {
        let tau = 1.0 / (2.0 * std::f64::consts::PI * self.f_pole);
        let alpha = 1.0 - (-wave.dt() / tau).exp();
        let mut y = Vec::with_capacity(wave.len());
        let mut state = wave.samples()[0];
        for &x in wave.samples() {
            state += alpha * (x - state);
            y.push(state);
        }
        UniformWave::new(wave.t0(), wave.dt(), y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_at_pole_is_minus_3db() {
        let ch = RcChannel::new(5e9);
        let h = ch.transfer(5e9);
        assert!((h.db() + 3.0103).abs() < 0.01);
    }

    #[test]
    fn step_response_matches_exponential() {
        let ch = RcChannel::new(1.0 / (2.0 * std::f64::consts::PI * 1e-9)); // τ = 1 ns
        let mut data = vec![0.0; 10];
        data.extend(vec![1.0; 4000]);
        let w = UniformWave::new(0.0, 1e-12, data);
        let y = ch.apply(&w);
        // After 1 τ from the step: 63.2 %.
        let v_1tau = y.value_at(10e-12 + 1e-9);
        assert!((v_1tau - 0.632).abs() < 0.01, "v(τ) = {v_1tau}");
        // After 3 τ: 95 %.
        let v_3tau = y.value_at(10e-12 + 3e-9);
        assert!((v_3tau - 0.950).abs() < 0.01, "v(3τ) = {v_3tau}");
    }

    #[test]
    fn dc_passes_unchanged() {
        let ch = RcChannel::new(1e9);
        let w = UniformWave::new(0.0, 1e-12, vec![0.7; 100]);
        let y = ch.apply(&w);
        for &v in y.samples() {
            assert!((v - 0.7).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_pole_rejected() {
        let _ = RcChannel::new(-1.0);
    }
}
