//! Near/far-end crosstalk injection.
//!
//! In the paper's switch-fabric deployment (Fig. 1) many serial lanes run
//! side by side; adjacent-lane coupling is the second signal-integrity
//! impairment after loss. The standard first-order model: the coupled
//! voltage is the time derivative of the aggressor scaled by a coupling
//! coefficient (capacitive/inductive coupling is differentiating), with
//! NEXT seeing the aggressor's near-end (un-attenuated) edge rate.

use cml_sig::UniformWave;

/// A single-aggressor crosstalk coupling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crosstalk {
    /// Coupling coefficient, volts of victim per volt/ns of aggressor
    /// slew (i.e. the derivative gain has units of seconds).
    pub k: f64,
}

impl Crosstalk {
    /// A representative adjacent-lane coupling: ~2 % of a 25 ps-edge
    /// swing.
    #[must_use]
    pub fn adjacent_lane() -> Self {
        Crosstalk { k: 0.5e-12 }
    }

    /// Creates a coupling with an explicit coefficient (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative.
    #[must_use]
    pub fn new(k: f64) -> Self {
        assert!(k >= 0.0, "coupling must be non-negative");
        Crosstalk { k }
    }

    /// The crosstalk waveform induced by `aggressor` (central-difference
    /// derivative times `k`).
    #[must_use]
    pub fn induced(&self, aggressor: &UniformWave) -> UniformWave {
        let dt = aggressor.dt();
        let s = aggressor.samples();
        let n = s.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let d = if i == 0 {
                (s[1] - s[0]) / dt
            } else if i == n - 1 {
                (s[n - 1] - s[n - 2]) / dt
            } else {
                (s[i + 1] - s[i - 1]) / (2.0 * dt)
            };
            out.push(self.k * d);
        }
        UniformWave::new(aggressor.t0(), dt, out)
    }

    /// Adds the induced noise onto a victim waveform (grids must match).
    ///
    /// # Panics
    ///
    /// Panics if the victim and aggressor grids differ.
    #[must_use]
    pub fn inject(&self, victim: &UniformWave, aggressor: &UniformWave) -> UniformWave {
        let noise = self.induced(aggressor);
        assert!(
            (victim.dt() - noise.dt()).abs() < 1e-18 && victim.len() == noise.len(),
            "victim and aggressor grids must match"
        );
        let data: Vec<f64> = victim
            .samples()
            .iter()
            .zip(noise.samples())
            .map(|(v, x)| v + x)
            .collect();
        UniformWave::new(victim.t0(), victim.dt(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;
    use cml_sig::EyeDiagram;

    fn aggressor() -> UniformWave {
        let bits: Vec<bool> = Prbs::with_seed(7, (7, 1), 0x55).take(254).collect();
        NrzConfig::new(100e-12, 0.5).render(&bits)
    }

    fn victim() -> UniformWave {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        NrzConfig::new(100e-12, 0.5).render(&bits)
    }

    #[test]
    fn induced_noise_is_zero_on_flat_aggressor() {
        let flat = UniformWave::new(0.0, 1e-12, vec![0.25; 512]);
        let xt = Crosstalk::adjacent_lane();
        let noise = xt.induced(&flat);
        assert!(noise.samples().iter().all(|v| v.abs() < 1e-15));
    }

    #[test]
    fn induced_noise_spikes_on_edges() {
        let xt = Crosstalk::adjacent_lane();
        let noise = xt.induced(&aggressor());
        let peak = noise.samples().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        // 0.5 V swing over ~25 ps edge × 0.5 ps coupling → ≈ 10 mV spikes.
        assert!(peak > 3e-3 && peak < 40e-3, "peak = {peak:.3e}");
    }

    #[test]
    fn crosstalk_closes_the_eye_proportionally() {
        let v = victim();
        // Worst case: aggressor edges land at the victim's sampling
        // instant — rotate the aggressor by half a UI (16 of 32 samples).
        let a_raw = aggressor();
        let n = a_raw.len();
        let rotated: Vec<f64> = (0..n).map(|i| a_raw.samples()[(i + 16) % n]).collect();
        let a = UniformWave::new(a_raw.t0(), a_raw.dt(), rotated);
        let clean = EyeDiagram::fold(&v.skip_initial(2e-9), 100e-12).metrics();
        let weak = Crosstalk::new(0.3e-12).inject(&v, &a);
        let strong = Crosstalk::new(3e-12).inject(&v, &a);
        let m_weak = EyeDiagram::fold(&weak.skip_initial(2e-9), 100e-12).metrics();
        let m_strong = EyeDiagram::fold(&strong.skip_initial(2e-9), 100e-12).metrics();
        assert!(m_weak.height <= clean.height + 1e-9);
        assert!(
            m_strong.height < m_weak.height,
            "stronger coupling must close the eye more: {} vs {}",
            m_strong.height,
            m_weak.height
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coupling_rejected() {
        let _ = Crosstalk::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "grids must match")]
    fn mismatched_grids_rejected() {
        let v = UniformWave::new(0.0, 1e-12, vec![0.0; 10]);
        let a = UniformWave::new(0.0, 2e-12, vec![0.0; 10]);
        let _ = Crosstalk::adjacent_lane().inject(&v, &a);
    }
}
