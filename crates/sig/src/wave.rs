//! Uniformly sampled waveforms.
//!
//! Simulator output arrives on (possibly non-uniform) solver time grids;
//! everything downstream — channel convolution, eye folding, FFTs — wants
//! a uniform grid. [`UniformWave`] is that common currency.

use cml_numeric::interp;

/// A real waveform on a uniform time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformWave {
    t0: f64,
    dt: f64,
    data: Vec<f64>,
}

impl UniformWave {
    /// Creates a waveform from a start time, sample interval and samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `data` is empty.
    #[must_use]
    pub fn new(t0: f64, dt: f64, data: Vec<f64>) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        assert!(!data.is_empty(), "waveform must be non-empty");
        UniformWave { t0, dt, data }
    }

    /// Resamples a non-uniform `(times, values)` series onto a uniform
    /// grid with the given `dt` (linear interpolation).
    ///
    /// The grid always covers the full series span: when the span is not
    /// an exact multiple of `dt`, the grid extends past the final knot
    /// (by less than one `dt`) and the trailing samples hold the final
    /// value, rather than truncating the last partial interval and
    /// losing the end of the wave.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty, unsorted, or `dt <= 0`.
    #[must_use]
    #[allow(clippy::expect_used)] // documented panic contract above
    pub fn from_series(times: &[f64], values: &[f64], dt: f64) -> Self {
        assert!(!times.is_empty(), "empty series");
        assert!(dt > 0.0, "dt must be positive");
        let t0 = times[0];
        let t1 = times[times.len() - 1];
        let n = grid_len(t1 - t0, dt);
        let data: Vec<f64> = (0..n)
            .map(|i| {
                interp::linear(times, values, t0 + i as f64 * dt)
                    .expect("series must be sorted and consistent")
            })
            .collect();
        UniformWave::new(t0, dt, data)
    }

    /// Start time, seconds.
    #[must_use]
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sample interval, seconds.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the waveform holds no samples (constructors forbid this,
    /// so only possible through `Default`-like misuse upstream).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.data
    }

    /// Time of sample `i`.
    #[must_use]
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + i as f64 * self.dt
    }

    /// Total duration (last minus first sample time).
    #[must_use]
    pub fn duration(&self) -> f64 {
        (self.data.len() - 1) as f64 * self.dt
    }

    /// Value at an arbitrary time via linear interpolation (clamped at
    /// the ends).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        let pos = (t - self.t0) / self.dt;
        if pos <= 0.0 {
            return self.data[0];
        }
        let n = self.data.len();
        if pos >= (n - 1) as f64 {
            return self.data[n - 1];
        }
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        self.data[i] * (1.0 - frac) + self.data[i + 1] * frac
    }

    /// Explicit time grid (allocates).
    #[must_use]
    pub fn times(&self) -> Vec<f64> {
        (0..self.data.len()).map(|i| self.time_at(i)).collect()
    }

    /// Maps every sample through `f`, preserving the grid.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        UniformWave {
            t0: self.t0,
            dt: self.dt,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Pointwise difference `self − other` (grids must match).
    ///
    /// # Panics
    ///
    /// Panics if grids differ in `dt` or length.
    #[must_use]
    pub fn sub(&self, other: &UniformWave) -> Self {
        assert!(
            (self.dt - other.dt).abs() < 1e-18 && self.len() == other.len(),
            "waveform grids must match"
        );
        UniformWave {
            t0: self.t0,
            dt: self.dt,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Drops the first `seconds` of the waveform (used to discard
    /// start-up transients before eye folding).
    ///
    /// # Panics
    ///
    /// Panics if nothing would remain.
    #[must_use]
    pub fn skip_initial(&self, seconds: f64) -> Self {
        let n_skip = (seconds / self.dt).ceil() as usize;
        assert!(n_skip < self.data.len(), "skip would empty the waveform");
        UniformWave {
            t0: self.t0 + n_skip as f64 * self.dt,
            dt: self.dt,
            data: self.data[n_skip..].to_vec(),
        }
    }

    /// Consumes the waveform, returning its samples.
    #[must_use]
    pub fn into_samples(self) -> Vec<f64> {
        self.data
    }
}

/// Number of uniform samples covering a span of `span` seconds with step
/// `dt`: one more than the step count, where the step count snaps to the
/// nearest integer when `span / dt` is within relative rounding slop of
/// it, and otherwise rounds *up* so the grid reaches the end of the span.
///
/// The tolerance must be relative: the quotient of two doubles carries
/// ~1 ulp of *relative* error, so an absolute fudge (the previous
/// `+ 1e-9` here) stops protecting the endpoint once `span / dt`
/// exceeds ~1e7 — an end-of-wave off-by-one that silently drops the
/// final sample of long fine-grained resamples.
fn grid_len(span: f64, dt: f64) -> usize {
    let steps = span / dt;
    let nearest = steps.round();
    let k = if (steps - nearest).abs() <= 1e-9 * nearest.max(1.0) {
        nearest
    } else {
        steps.ceil()
    };
    k as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let w = UniformWave::new(1e-9, 1e-12, vec![0.0, 1.0, 2.0]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.t0(), 1e-9);
        assert!((w.duration() - 2e-12).abs() < 1e-24);
        assert!((w.time_at(2) - 1.002e-9).abs() < 1e-20);
    }

    #[test]
    fn from_series_resamples_linearly() {
        let times = [0.0, 1.0, 3.0];
        let vals = [0.0, 1.0, 5.0];
        let w = UniformWave::from_series(&times, &vals, 0.5);
        assert_eq!(w.len(), 7);
        assert!((w.samples()[1] - 0.5).abs() < 1e-12);
        assert!((w.samples()[4] - 3.0).abs() < 1e-12); // t=2.0 between 1→3
    }

    #[test]
    fn from_series_covers_nonintegral_span() {
        // Span 1.0 with dt 0.4 is not an exact multiple: the old floor
        // rule truncated the grid at t = 0.8, so reading back at the end
        // of the wave returned the value held from 0.2 s earlier (8.0).
        let times = [0.0, 1.0];
        let vals = [0.0, 10.0];
        let w = UniformWave::from_series(&times, &vals, 0.4);
        assert_eq!(w.len(), 4); // grid 0.0, 0.4, 0.8, 1.2 covers the span
        assert!(w.time_at(w.len() - 1) >= 1.0);
        assert!((w.samples()[3] - 10.0).abs() < 1e-12); // clamped past t1
                                                        // The end-of-wave read now interpolates toward the held final
                                                        // value instead of extrapolating from a truncated grid.
        assert!((w.value_at(1.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn grid_len_snaps_exact_multiples_at_any_scale() {
        // Small exact multiple (the recorded proptest regression shape).
        assert_eq!(grid_len(31.0 * 1e-12, 0.25e-12), 125);
        // Large exact multiple: 1e7 * 7e-12 / 7e-12 computes to
        // 9999999.999999998 — 1.9e-9 below the true integer, beyond any
        // absolute 1e-9 fudge but well within relative rounding slop.
        assert_eq!(grid_len(1e7 * 7e-12, 7e-12), 10_000_001);
        // Slightly-above-integer quotients snap down, not ceil up.
        assert_eq!(grid_len(3.1e-11, 2.5e-13), 125);
        // Genuinely non-integral spans round the step count up.
        assert_eq!(grid_len(1.0, 0.4), 4);
        // Degenerate single-point series.
        assert_eq!(grid_len(0.0, 1.0), 1);
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let w = UniformWave::new(0.0, 1.0, vec![0.0, 10.0]);
        assert!((w.value_at(0.25) - 2.5).abs() < 1e-12);
        assert_eq!(w.value_at(-5.0), 0.0);
        assert_eq!(w.value_at(99.0), 10.0);
    }

    #[test]
    fn map_and_sub() {
        let a = UniformWave::new(0.0, 1.0, vec![1.0, 2.0]);
        let b = a.map(|v| v * 3.0);
        assert_eq!(b.samples(), &[3.0, 6.0]);
        let d = b.sub(&a);
        assert_eq!(d.samples(), &[2.0, 4.0]);
    }

    #[test]
    fn skip_initial_shifts_origin() {
        let w = UniformWave::new(0.0, 1.0, vec![9.0, 8.0, 7.0, 6.0]);
        let s = w.skip_initial(2.0);
        assert_eq!(s.samples(), &[7.0, 6.0]);
        assert_eq!(s.t0(), 2.0);
    }

    #[test]
    #[should_panic(expected = "grids must match")]
    fn sub_rejects_mismatched() {
        let a = UniformWave::new(0.0, 1.0, vec![1.0, 2.0]);
        let b = UniformWave::new(0.0, 2.0, vec![1.0, 2.0]);
        let _ = a.sub(&b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = UniformWave::new(0.0, 1.0, vec![]);
    }
}
