//! Time- and frequency-domain measurements.
//!
//! The scalar extractors behind the paper's reported numbers: output
//! swing, rise/fall time, pre-emphasis overshoot, duty-cycle distortion,
//! and the Bode metrics (DC gain, −3 dB bandwidth, peaking) of Table I.

use crate::wave::UniformWave;
use cml_numeric::{interp, stats, Complex64};

/// Peak-to-peak swing of a waveform, volts.
#[must_use]
pub fn swing(wave: &UniformWave) -> f64 {
    stats::peak_to_peak(wave.samples()).unwrap_or(0.0)
}

/// Settled low/high levels estimated from the 5th/95th amplitude
/// percentiles (robust against overshoot spikes).
#[must_use]
pub fn settled_levels(wave: &UniformWave) -> (f64, f64) {
    let lo = stats::percentile(wave.samples(), 5.0).unwrap_or(0.0);
    let hi = stats::percentile(wave.samples(), 95.0).unwrap_or(0.0);
    (lo, hi)
}

/// 20–80 % rise time of the first rising transition, seconds.
/// Returns `None` when no full rising edge exists.
#[must_use]
pub fn rise_time(wave: &UniformWave) -> Option<f64> {
    edge_time(wave, true)
}

/// 80–20 % fall time of the first falling transition, seconds.
/// Returns `None` when no full falling edge exists.
#[must_use]
pub fn fall_time(wave: &UniformWave) -> Option<f64> {
    edge_time(wave, false)
}

fn edge_time(wave: &UniformWave, rising: bool) -> Option<f64> {
    let (lo, hi) = settled_levels(wave);
    if hi - lo <= 0.0 {
        return None;
    }
    let v20 = lo + 0.2 * (hi - lo);
    let v80 = lo + 0.8 * (hi - lo);
    let times = wave.times();
    let c20 = interp::level_crossings(&times, wave.samples(), v20).ok()?;
    let c80 = interp::level_crossings(&times, wave.samples(), v80).ok()?;
    // Local slope probe (half a sample either side).
    let h = wave.dt() / 2.0;
    let slope_up = |t: f64| wave.value_at(t + h) > wave.value_at(t - h);
    if rising {
        // First rising v20 crossing, then the next v80 crossing above it.
        let t20 = *c20.iter().find(|&&t| slope_up(t))?;
        let t80 = c80.iter().find(|&&t| t > t20)?;
        Some(t80 - t20)
    } else {
        // First falling v80 crossing, then the next v20 crossing below it.
        let t80 = *c80.iter().find(|&&t| !slope_up(t))?;
        let t20 = c20.iter().find(|&&t| t > t80)?;
        Some(t20 - t80)
    }
}

/// Overshoot of the waveform above its settled high level, as a fraction
/// of the settled swing (0.2 = 20 % peaking — the paper's voltage-peaking
/// tuning-range metric).
#[must_use]
pub fn overshoot(wave: &UniformWave) -> f64 {
    let (lo, hi) = settled_levels(wave);
    let span = hi - lo;
    if span <= 0.0 {
        return 0.0;
    }
    let peak = stats::max(wave.samples()).unwrap_or(hi);
    ((peak - hi) / span).max(0.0)
}

/// Duty-cycle distortion of a data waveform: deviation of the average
/// high-time fraction from 50 %, using the waveform midlevel as the
/// threshold. Returns a fraction (0.02 = 2 % DCD).
#[must_use]
pub fn duty_cycle_distortion(wave: &UniformWave) -> f64 {
    let (lo, hi) = settled_levels(wave);
    let mid = (lo + hi) / 2.0;
    let n_high = wave.samples().iter().filter(|&&v| v > mid).count();
    let frac = n_high as f64 / wave.len() as f64;
    (frac - 0.5).abs()
}

/// A frequency response: paired frequencies and complex gains.
///
/// ```
/// use cml_numeric::Complex64;
/// use cml_sig::measure::Bode;
///
/// let freqs = vec![1e6, 1e9, 10e9];
/// let gains = vec![
///     Complex64::from_real(100.0),
///     Complex64::from_real(70.0),
///     Complex64::from_real(7.0),
/// ];
/// let b = Bode::new(freqs, gains);
/// assert!((b.dc_gain_db() - 40.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bode {
    freqs: Vec<f64>,
    gains: Vec<Complex64>,
}

impl Bode {
    /// Creates a response from parallel frequency/gain arrays.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, fewer than two points are given, or
    /// frequencies are not strictly increasing and positive.
    #[must_use]
    pub fn new(freqs: Vec<f64>, gains: Vec<Complex64>) -> Self {
        assert_eq!(freqs.len(), gains.len(), "mismatched lengths");
        assert!(freqs.len() >= 2, "need at least two points");
        assert!(freqs[0] > 0.0, "frequencies must be positive");
        assert!(
            freqs.windows(2).all(|w| w[1] > w[0]),
            "frequencies must be strictly increasing"
        );
        Bode { freqs, gains }
    }

    /// Swept frequencies, Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex gains.
    #[must_use]
    pub fn gains(&self) -> &[Complex64] {
        &self.gains
    }

    /// Gain magnitudes in dB.
    #[must_use]
    pub fn magnitude_db(&self) -> Vec<f64> {
        self.gains.iter().map(|g| g.db()).collect()
    }

    /// Gain at the lowest swept frequency, dB (the "DC gain" when the
    /// sweep starts well below the first pole).
    #[must_use]
    pub fn dc_gain_db(&self) -> f64 {
        self.gains[0].db()
    }

    /// Magnitude in dB at an arbitrary frequency (log-frequency linear
    /// interpolation, clamped to the sweep range).
    #[must_use]
    #[allow(clippy::expect_used)] // sweep grid validated at construction
    pub fn gain_db_at(&self, freq: f64) -> f64 {
        let logf: Vec<f64> = self.freqs.iter().map(|f| f.log10()).collect();
        let mags = self.magnitude_db();
        interp::linear(&logf, &mags, freq.log10()).expect("validated grid")
    }

    /// −3 dB bandwidth relative to the DC gain, Hz. `None` if the gain
    /// never falls 3 dB within the sweep.
    #[must_use]
    pub fn bandwidth_3db(&self) -> Option<f64> {
        let target = self.dc_gain_db() - 3.0103;
        let mags = self.magnitude_db();
        for i in 1..mags.len() {
            if mags[i] <= target && mags[i - 1] > target {
                // Interpolate in log-frequency.
                let f0 = self.freqs[i - 1].log10();
                let f1 = self.freqs[i].log10();
                let frac = (mags[i - 1] - target) / (mags[i - 1] - mags[i]);
                return Some(10f64.powf(f0 + frac * (f1 - f0)));
            }
        }
        None
    }

    /// In-band peaking: maximum gain above the DC gain, dB (0 when the
    /// response is monotone).
    #[must_use]
    pub fn peaking_db(&self) -> f64 {
        let dc = self.dc_gain_db();
        self.magnitude_db()
            .into_iter()
            .fold(0.0, |m, g| m.max(g - dc))
    }

    /// Frequency of maximum gain, Hz.
    #[must_use]
    pub fn peak_freq(&self) -> f64 {
        let mags = self.magnitude_db();
        let idx = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        self.freqs[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_numeric::logspace;

    fn single_pole(f_pole: f64, dc: f64, freqs: &[f64]) -> Bode {
        let gains = freqs
            .iter()
            .map(|&f| Complex64::from_real(dc) / Complex64::new(1.0, f / f_pole))
            .collect();
        Bode::new(freqs.to_vec(), gains)
    }

    #[test]
    fn bandwidth_of_single_pole() {
        let freqs = logspace(1e6, 100e9, 400);
        let b = single_pole(9.5e9, 100.0, &freqs);
        let bw = b.bandwidth_3db().unwrap();
        assert!(
            (bw - 9.5e9).abs() / 9.5e9 < 0.02,
            "bw = {bw:.3e}, want 9.5 GHz"
        );
        assert!((b.dc_gain_db() - 40.0).abs() < 0.01);
        assert_eq!(b.peaking_db(), 0.0);
    }

    #[test]
    fn no_bandwidth_when_flat() {
        let freqs = logspace(1e6, 1e9, 10);
        let gains = vec![Complex64::from_real(5.0); 10];
        let b = Bode::new(freqs, gains);
        assert_eq!(b.bandwidth_3db(), None);
    }

    #[test]
    fn peaking_detected() {
        // Second-order response with Q > 0.707 shows peaking.
        let freqs = logspace(1e8, 1e11, 300);
        let (f0, q) = (5e9, 2.0);
        let gains: Vec<Complex64> = freqs
            .iter()
            .map(|&f| {
                let s = Complex64::new(0.0, f / f0);
                Complex64::ONE / (s * s + s / q + Complex64::ONE)
            })
            .collect();
        let b = Bode::new(freqs, gains);
        let peak = b.peaking_db();
        // Q = 2 → ~6.3 dB peaking near f0.
        assert!((peak - 6.3).abs() < 0.3, "peaking = {peak}");
        assert!((b.peak_freq() - f0).abs() / f0 < 0.1);
    }

    #[test]
    fn gain_at_interpolates() {
        let freqs = logspace(1e6, 1e10, 100);
        let b = single_pole(1e9, 10.0, &freqs);
        // At the pole: −3 dB from DC.
        assert!((b.gain_db_at(1e9) - (20.0 - 3.0103)).abs() < 0.05);
    }

    #[test]
    fn rise_and_fall_times() {
        // One full bit: low → high → low with known edge rate.
        let cfg = crate::nrz::NrzConfig::new(100e-12, 1.0)
            .with_rise_frac(0.3)
            .with_samples_per_ui(200);
        let w = cfg.render(&[false, true, false]);
        let tr = rise_time(&w).unwrap();
        let tf = fall_time(&w).unwrap();
        // Raised-cosine 0→100 % in 30 ps → 20–80 % ≈ 0.41·30 ps ≈ 12.3 ps.
        assert!((tr - 12.3e-12).abs() < 2e-12, "tr = {tr:.3e}");
        assert!((tf - 12.3e-12).abs() < 2e-12, "tf = {tf:.3e}");
    }

    #[test]
    fn overshoot_of_clean_wave_is_zero() {
        let cfg = crate::nrz::NrzConfig::new(100e-12, 1.0);
        let w = cfg.render(&[false, true, true, false]);
        assert!(overshoot(&w) < 0.01);
    }

    #[test]
    fn overshoot_detects_peaking_spike() {
        // Synthetic: settled rails ±0.5 with a 0.7 V spike.
        let mut data = vec![-0.5; 100];
        data.extend(vec![0.5; 100]);
        data[100] = 0.7;
        data[101] = 0.65;
        let w = UniformWave::new(0.0, 1e-12, data);
        let os = overshoot(&w);
        assert!((os - 0.2).abs() < 0.03, "overshoot = {os}");
    }

    #[test]
    fn dcd_of_balanced_square_wave_is_zero() {
        let cfg = crate::nrz::NrzConfig::new(100e-12, 1.0).with_rise_frac(0.05);
        let bits: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let w = cfg.render(&bits);
        assert!(duty_cycle_distortion(&w) < 0.02);
    }

    #[test]
    fn swing_measures_p2p() {
        let w = UniformWave::new(0.0, 1.0, vec![-0.125, 0.125, 0.0]);
        assert!((swing(&w) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bode_rejects_unsorted() {
        let _ = Bode::new(vec![1e9, 1e6], vec![Complex64::ONE, Complex64::ONE]);
    }
}
