//! Jitter extraction and BER estimation.
//!
//! The paper's eye diagrams imply timing margins; this module makes them
//! quantitative: time-interval-error (TIE) extraction, a dual-Dirac-style
//! split into random and deterministic jitter, and the Gaussian-tail
//! bathtub curve that converts an eye into "eye width at BER 10⁻¹²" — the
//! number a link designer actually signs off on.

use crate::wave::UniformWave;
use cml_numeric::{interp, stats};

/// Time-interval error: the deviation of each threshold crossing from
/// its nearest ideal bit-grid edge (`k·ui + phase`), where the grid
/// phase is recovered from the data itself (mean crossing residue).
///
/// Returns one TIE sample per crossing, seconds.
///
/// # Panics
///
/// Panics if the waveform has no crossings of its midlevel.
#[must_use]
#[allow(clippy::expect_used)] // documented panic contract above
pub fn tie(wave: &UniformWave, ui: f64) -> Vec<f64> {
    let samples = wave.samples();
    let lo = stats::percentile(samples, 5.0).expect("non-empty");
    let hi = stats::percentile(samples, 95.0).expect("non-empty");
    assert!(hi - lo > 1e-12, "no crossings found: waveform is flat");
    let mid = (lo + hi) / 2.0;
    let times = wave.times();
    let crossings = interp::level_crossings(&times, samples, mid).expect("valid grid");
    assert!(!crossings.is_empty(), "no crossings found");

    // Recover the grid phase via circular mean of the crossing residues.
    let two_pi = 2.0 * std::f64::consts::PI;
    let (mut s, mut c) = (0.0, 0.0);
    for &t in &crossings {
        let ang = (t / ui).fract() * two_pi;
        s += ang.sin();
        c += ang.cos();
    }
    let phase = s.atan2(c) / two_pi * ui;

    crossings
        .iter()
        .map(|&t| {
            let residue = (t - phase) / ui;
            (residue - residue.round()) * ui
        })
        .collect()
}

/// Dual-Dirac-style jitter decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JitterDecomposition {
    /// Random (Gaussian) jitter σ, seconds.
    pub rj_rms: f64,
    /// Deterministic jitter peak-to-peak, seconds.
    pub dj_pp: f64,
    /// Total jitter at the sampled population, peak-to-peak, seconds.
    pub tj_pp: f64,
}

/// Decomposes a TIE population with the standard tail-fit heuristic: the
/// outer 5 % tails estimate the Gaussian σ; the inner spread beyond what
/// that σ explains is deterministic.
///
/// # Panics
///
/// Panics on an empty TIE set.
#[must_use]
#[allow(clippy::expect_used)] // the assert below guards every expect
pub fn decompose(tie_samples: &[f64]) -> JitterDecomposition {
    assert!(!tie_samples.is_empty(), "empty TIE population");
    let tj_pp = stats::peak_to_peak(tie_samples).expect("non-empty");
    // Tail-based σ: the 2.5 %→0.15 % span of a Gaussian is ≈ 1 σ; use
    // p1/p99 vs p5/p95 spread difference as the tail slope estimate.
    let p1 = stats::percentile(tie_samples, 1.0).expect("non-empty");
    let p5 = stats::percentile(tie_samples, 5.0).expect("non-empty");
    let p95 = stats::percentile(tie_samples, 95.0).expect("non-empty");
    let p99 = stats::percentile(tie_samples, 99.0).expect("non-empty");
    // For a pure Gaussian: p99−p95 = (2.326−1.645)σ = 0.681σ per side.
    let tail = ((p99 - p95) + (p5 - p1)) / 2.0;
    let rj_rms = (tail / 0.681).max(0.0);
    // DJ: the p95 spread minus the Gaussian part it would have.
    let dj_pp = ((p95 - p5) - 2.0 * 1.645 * rj_rms).max(0.0);
    JitterDecomposition {
        rj_rms,
        dj_pp,
        tj_pp,
    }
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x)` via the
/// Abramowitz-Stegun complementary-error-function approximation
/// (max error < 1.5e-7 — far below any BER of interest).
#[must_use]
pub fn q_function(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - q_function(-x);
    }
    let t = 1.0 / (1.0 + 0.2316419 * x);
    // Standard normal pdf at x.
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    pdf * poly
}

/// Estimated eye width at the target BER, seconds: the UI minus the DJ,
/// minus the RJ tails extended to `Q⁻¹(ber)`·σ on each side.
///
/// Returns 0 when the eye is closed at that BER.
#[must_use]
pub fn eye_width_at_ber(ui: f64, j: &JitterDecomposition, ber: f64) -> f64 {
    let q_target = inverse_q(ber);
    (ui - j.dj_pp - 2.0 * q_target * j.rj_rms).max(0.0)
}

/// Inverse Q function via bisection (`Q(x) = p`).
#[must_use]
pub fn inverse_q(p: f64) -> f64 {
    assert!(p > 0.0 && p < 0.5, "inverse_q needs 0 < p < 0.5");
    let (mut lo, mut hi) = (0.0, 40.0);
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// One point of a bathtub curve: sampling offset from the eye center and
/// the estimated BER there.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BathtubPoint {
    /// Sampling position offset from the UI center, seconds.
    pub offset: f64,
    /// Estimated bit-error ratio.
    pub ber: f64,
}

/// Builds a bathtub curve from a jitter decomposition: at each sampling
/// offset the BER is the Gaussian tail of the nearer crossing
/// distribution (dual-Dirac model with the DJ split into two Diracs at
/// ±dj_pp/2 around each crossing).
#[must_use]
pub fn bathtub(ui: f64, j: &JitterDecomposition, points: usize) -> Vec<BathtubPoint> {
    assert!(points >= 3, "need at least three points");
    let mut out = Vec::with_capacity(points);
    for i in 0..points {
        let offset = (i as f64 / (points - 1) as f64 - 0.5) * ui;
        // Distance to the left crossing (at −UI/2) and right (+UI/2).
        let d_left = (offset + ui / 2.0 - j.dj_pp / 2.0).max(0.0);
        let d_right = (ui / 2.0 - offset - j.dj_pp / 2.0).max(0.0);
        let sigma = j.rj_rms.max(1e-18);
        let ber = 0.5 * q_function(d_left / sigma) + 0.5 * q_function(d_right / sigma);
        out.push(BathtubPoint {
            offset,
            ber: ber.min(0.5),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nrz::NrzConfig;
    use crate::prbs::Prbs;

    fn jittered_wave(rj: f64, seed: u64) -> UniformWave {
        let bits: Vec<bool> = Prbs::prbs7().take(508).collect();
        NrzConfig::new(100e-12, 1.0)
            .with_random_jitter(rj, seed)
            .render(&bits)
    }

    #[test]
    fn tie_of_clean_wave_is_tiny() {
        let w = jittered_wave(0.0, 0);
        let t = tie(&w, 100e-12);
        assert!(!t.is_empty());
        let worst = t.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(worst < 2e-12, "clean TIE = {worst:.3e}");
    }

    #[test]
    fn tie_recovers_injected_rj() {
        let rj = 3e-12;
        let w = jittered_wave(rj, 42);
        let t = tie(&w, 100e-12);
        let sigma = stats::std_dev(&t).unwrap();
        assert!(
            (sigma - rj).abs() < rj * 0.35,
            "recovered σ = {sigma:.3e}, injected {rj:.3e}"
        );
    }

    #[test]
    fn decompose_sees_rj_dominated_population() {
        let w = jittered_wave(2e-12, 7);
        let j = decompose(&tie(&w, 100e-12));
        assert!(j.rj_rms > 0.5e-12, "rj = {:.3e}", j.rj_rms);
        assert!(j.tj_pp > 2.0 * j.rj_rms);
    }

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
        assert!((q_function(1.0) - 0.1587).abs() < 1e-3);
        assert!((q_function(3.0) - 1.35e-3).abs() < 1e-4);
        // Deep tail: Q(7) ≈ 1.28e-12.
        let q7 = q_function(7.0);
        assert!(q7 > 1e-13 && q7 < 1e-11, "Q(7) = {q7:.3e}");
    }

    #[test]
    fn inverse_q_roundtrip() {
        for p in [1e-3, 1e-6, 1e-12] {
            let x = inverse_q(p);
            let back = q_function(x);
            assert!((back.log10() - p.log10()).abs() < 0.05, "p = {p}");
        }
    }

    #[test]
    fn eye_width_shrinks_with_ber_target() {
        let j = JitterDecomposition {
            rj_rms: 2e-12,
            dj_pp: 10e-12,
            tj_pp: 30e-12,
        };
        let w_1e9 = eye_width_at_ber(100e-12, &j, 1e-9);
        let w_1e15 = eye_width_at_ber(100e-12, &j, 1e-15);
        assert!(w_1e9 > w_1e15);
        assert!(w_1e15 > 0.0);
    }

    #[test]
    fn bathtub_is_bathtub_shaped() {
        let j = JitterDecomposition {
            rj_rms: 2e-12,
            dj_pp: 8e-12,
            tj_pp: 25e-12,
        };
        let curve = bathtub(100e-12, &j, 41);
        assert_eq!(curve.len(), 41);
        let center = curve[20].ber;
        let edge = curve[0].ber;
        assert!(center < 1e-9, "center BER = {center:.3e}");
        assert!(edge > 0.1, "edge BER = {edge:.3e}");
        // Monotone into the center from the left.
        for w in curve[..21].windows(2) {
            assert!(w[1].ber <= w[0].ber * 1.001);
        }
    }

    #[test]
    #[should_panic(expected = "no crossings")]
    fn tie_rejects_flat_wave() {
        let w = UniformWave::new(0.0, 1e-12, vec![0.5; 100]);
        let _ = tie(&w, 100e-12);
    }
}
