//! Linear-feedback shift-register PRBS generators.
//!
//! Fibonacci LFSRs with the ITU-standard maximal-length polynomials. The
//! paper's eye diagrams use the 2⁷−1 pattern ("PRBS-7"); longer patterns
//! are provided for stress tests (PRBS-31 exercises the DC-offset loop's
//! low-frequency cutoff harder than PRBS-7).

/// A maximal-length LFSR pseudo-random bit sequence generator.
///
/// Implements [`Iterator`] over `bool`; the sequence repeats with period
/// `2^order − 1`.
///
/// ```
/// use cml_sig::prbs::Prbs;
///
/// let first: Vec<bool> = Prbs::prbs7().take(10).collect();
/// let again: Vec<bool> = Prbs::prbs7().take(10).collect();
/// assert_eq!(first, again, "same seed, same sequence");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prbs {
    state: u32,
    /// Feedback taps as bit positions (1-based from LSB).
    taps: (u32, u32),
    order: u32,
}

impl Prbs {
    /// PRBS-7: `x⁷ + x⁶ + 1` (recurrence `x[n] = x[n−1] ⊕ x[n−7]`),
    /// period 127 (ITU-T O.150).
    #[must_use]
    pub fn prbs7() -> Self {
        Prbs::with_seed(7, (7, 1), 0x7F)
    }

    /// PRBS-15: `x¹⁵ + x¹⁴ + 1`, period 32767.
    #[must_use]
    pub fn prbs15() -> Self {
        Prbs::with_seed(15, (15, 1), 0x7FFF)
    }

    /// PRBS-23: `x²³ + x¹⁸ + 1`, period 8388607.
    #[must_use]
    pub fn prbs23() -> Self {
        Prbs::with_seed(23, (19, 1), 0x7F_FFFF)
    }

    /// PRBS-31: `x³¹ + x²⁸ + 1`, period 2³¹−1.
    #[must_use]
    pub fn prbs31() -> Self {
        Prbs::with_seed(31, (29, 1), 0x7FFF_FFFF)
    }

    /// Generator with an explicit non-zero seed (low `order` bits used).
    ///
    /// # Panics
    ///
    /// Panics if the masked seed is zero (an LFSR stuck state) or taps are
    /// out of range.
    #[must_use]
    pub fn with_seed(order: u32, taps: (u32, u32), seed: u32) -> Self {
        assert!((2..=31).contains(&order), "order out of range");
        assert!(
            taps.0 <= order && taps.1 <= order && taps.0 >= 1 && taps.1 >= 1,
            "taps out of range"
        );
        let state = seed & ((1u32 << order) - 1);
        assert!(state != 0, "seed must be non-zero");
        Prbs { state, taps, order }
    }

    /// Sequence period `2^order − 1`.
    #[must_use]
    pub fn period(&self) -> u64 {
        (1u64 << self.order) - 1
    }

    /// Largest order [`one_period`](Prbs::one_period) will materialize
    /// (2²⁰−1 bits ≈ 1 MiB of `bool`). PRBS-23 would be 8 Mb and PRBS-31
    /// ~2 GiB — use the iterator or [`try_one_period`](Prbs::try_one_period)
    /// for those.
    pub const MAX_COLLECT_ORDER: u32 = 20;

    /// Collects exactly one full period of bits.
    ///
    /// # Panics
    ///
    /// Panics for orders above [`Prbs::MAX_COLLECT_ORDER`]: a PRBS-31
    /// period is 2³¹−1 bits (~2 GiB of `bool`), which must never be
    /// materialized by accident. Long patterns are iterators — stream
    /// them through [`longest_run_iter`] / [`balance`] or the
    /// `cml-sig` streaming accumulators instead, or call
    /// [`try_one_period`](Prbs::try_one_period) for a fallible version.
    #[must_use]
    pub fn one_period(&self) -> Vec<bool> {
        match self.try_one_period() {
            Ok(bits) => bits,
            Err(e) => panic!("{e}; iterate the generator instead"),
        }
    }

    /// Fallible [`one_period`](Prbs::one_period): returns
    /// [`PrbsError::PeriodTooLong`] instead of allocating gigabytes for
    /// PRBS-23/31-class generators.
    ///
    /// # Errors
    ///
    /// [`PrbsError::PeriodTooLong`] when the order exceeds
    /// [`Prbs::MAX_COLLECT_ORDER`].
    pub fn try_one_period(&self) -> Result<Vec<bool>, PrbsError> {
        if self.order > Self::MAX_COLLECT_ORDER {
            return Err(PrbsError::PeriodTooLong {
                order: self.order,
                period: self.period(),
            });
        }
        Ok(self.clone().take(self.period() as usize).collect())
    }
}

/// Errors from the PRBS helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrbsError {
    /// A whole-period collection was requested for a generator whose
    /// period is too long to materialize as a `Vec<bool>`.
    PeriodTooLong {
        /// LFSR order of the offending generator.
        order: u32,
        /// Its period, `2^order − 1` bits.
        period: u64,
    },
}

impl std::fmt::Display for PrbsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrbsError::PeriodTooLong { order, period } => write!(
                f,
                "PRBS-{order} period ({period} bits) is too long to collect \
                 (max order {})",
                Prbs::MAX_COLLECT_ORDER
            ),
        }
    }
}

impl std::error::Error for PrbsError {}

impl Iterator for Prbs {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b1 = (self.state >> (self.taps.0 - 1)) & 1;
        let b2 = (self.state >> (self.taps.1 - 1)) & 1;
        let fb = b1 ^ b2;
        let out = self.state & 1 == 1;
        self.state = (self.state >> 1) | (fb << (self.order - 1));
        Some(out)
    }
}

/// Encodes bits as ±1 symbols (true → +1).
#[must_use]
pub fn to_symbols(bits: &[bool]) -> Vec<f64> {
    bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect()
}

/// Longest run of identical bits in a pattern — the metric that sets the
/// low-frequency content a DC-coupled link must survive (PRBS-n has a run
/// of n ones).
#[must_use]
pub fn longest_run(bits: &[bool]) -> usize {
    longest_run_iter(bits.iter().copied())
}

/// Streaming [`longest_run`]: consumes any bit iterator at O(1) memory,
/// so full PRBS-23/31 periods can be checked without materializing them.
pub fn longest_run_iter(bits: impl IntoIterator<Item = bool>) -> usize {
    let mut best = 0;
    let mut run = 0;
    let mut prev: Option<bool> = None;
    for b in bits {
        if prev == Some(b) {
            run += 1;
        } else {
            run = 1;
            prev = Some(b);
        }
        best = best.max(run);
    }
    best
}

/// Streaming mark/space balance: `(ones, zeros)` over any bit iterator
/// at O(1) memory. A maximal-length PRBS-n period has exactly one more
/// one than zeros.
pub fn balance(bits: impl IntoIterator<Item = bool>) -> (u64, u64) {
    let mut ones = 0u64;
    let mut zeros = 0u64;
    for b in bits {
        if b {
            ones += 1;
        } else {
            zeros += 1;
        }
    }
    (ones, zeros)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prbs7_has_period_127() {
        let bits = Prbs::prbs7().one_period();
        assert_eq!(bits.len(), 127);
        // Sequence repeats exactly after one period.
        let double: Vec<bool> = Prbs::prbs7().take(254).collect();
        assert_eq!(&double[..127], &double[127..]);
    }

    #[test]
    fn prbs7_is_balanced() {
        // Maximal-length property: 64 ones, 63 zeros per period.
        let bits = Prbs::prbs7().one_period();
        let ones = bits.iter().filter(|&&b| b).count();
        assert_eq!(ones, 64);
    }

    #[test]
    fn prbs7_longest_run_is_seven() {
        let bits = Prbs::prbs7().one_period();
        // Check a doubled period so wraparound runs are caught.
        let mut doubled = bits.clone();
        doubled.extend_from_slice(&bits);
        assert_eq!(longest_run(&doubled), 7);
    }

    #[test]
    fn prbs15_has_full_period() {
        // Verify no early repetition by checking state return.
        let start = Prbs::prbs15();
        let mut g = start.clone();
        let mut count: u64 = 0;
        loop {
            g.next();
            count += 1;
            if g == start {
                break;
            }
            assert!(count <= 32767, "period too long");
        }
        assert_eq!(count, 32767);
    }

    #[test]
    fn distinct_seeds_give_shifted_sequences() {
        let a: Vec<bool> = Prbs::with_seed(7, (7, 1), 0x7F).take(127).collect();
        let b: Vec<bool> = Prbs::with_seed(7, (7, 1), 0x01).take(127).collect();
        assert_ne!(a, b);
        // Same cycle, different phase: b must appear as a rotation of a.
        let mut found = false;
        for shift in 0..127 {
            let rotated: Vec<bool> = a.iter().cycle().skip(shift).take(127).copied().collect();
            if rotated == b {
                found = true;
                break;
            }
        }
        assert!(found, "sequences should be rotations of each other");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        let _ = Prbs::with_seed(7, (7, 1), 0);
    }

    #[test]
    fn symbols_are_bipolar() {
        let s = to_symbols(&[true, false, true]);
        assert_eq!(s, vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn longest_run_counts() {
        assert_eq!(longest_run(&[true, true, false, true, true, true]), 3);
        assert_eq!(longest_run(&[]), 0);
        assert_eq!(longest_run(&[false]), 1);
    }

    #[test]
    fn one_period_guard_rejects_long_patterns() {
        // PRBS-23/31 periods must never be materialized: ~1 MiB/bit-vec
        // per 2²⁰ bits, so 2³¹−1 would be ~2 GiB.
        assert!(matches!(
            Prbs::prbs23().try_one_period(),
            Err(PrbsError::PeriodTooLong { order: 23, .. })
        ));
        let e = Prbs::prbs31().try_one_period().unwrap_err();
        assert_eq!(
            e,
            PrbsError::PeriodTooLong {
                order: 31,
                period: (1u64 << 31) - 1
            }
        );
        assert!(e.to_string().contains("PRBS-31"));
        // Small orders still collect fine through the fallible API.
        assert_eq!(Prbs::prbs15().try_one_period().unwrap().len(), 32767);
    }

    #[test]
    #[should_panic(expected = "too long to collect")]
    fn one_period_panics_for_prbs23() {
        let _ = Prbs::prbs23().one_period();
    }

    #[test]
    fn streaming_helpers_handle_full_prbs15_period() {
        // Doubled period through the iterator: wraparound runs included,
        // nothing materialized.
        let doubled = Prbs::prbs15().take(2 * 32767);
        assert_eq!(longest_run_iter(doubled), 15);
        let (ones, zeros) = balance(Prbs::prbs15().take(32767));
        assert_eq!((ones, zeros), (16384, 16383));
        // Slice and iterator versions agree.
        let bits = Prbs::prbs7().one_period();
        assert_eq!(longest_run(&bits), longest_run_iter(bits.iter().copied()));
    }
}
