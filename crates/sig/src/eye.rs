//! Eye-diagram folding and metrics.
//!
//! An eye diagram overlays every unit interval of a long data waveform.
//! [`EyeDiagram::fold`] does the overlay; [`EyeDiagram::metrics`] extracts
//! the numbers the paper quotes (eye height/opening, width, jitter), and
//! [`EyeDiagram::render_ascii`] draws the familiar scope picture for the
//! figure-regeneration binaries.

use crate::wave::UniformWave;
use cml_numeric::{interp, stats};

/// Folded eye data: samples classified by phase within the UI, plus a
/// 2-UI density grid for rendering.
#[derive(Debug, Clone)]
pub struct EyeDiagram {
    ui: f64,
    /// (phase in [0, 2·UI), value) for every sample, phase-shifted so bit
    /// centers sit at 0.5·UI and 1.5·UI.
    folded: Vec<(f64, f64)>,
    /// Crossing phases folded into [0, UI), centered on the nominal edge.
    crossings: Vec<f64>,
    v_min: f64,
    v_max: f64,
}

/// Scalar eye metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EyeMetrics {
    /// Inner eye height at the sampling instant, volts (negative = closed).
    pub height: f64,
    /// Eye width, seconds (UI minus peak-to-peak crossing spread).
    pub width: f64,
    /// Mean high rail at the sampling instant, volts.
    pub v_high: f64,
    /// Mean low rail at the sampling instant, volts.
    pub v_low: f64,
    /// RMS jitter of threshold crossings, seconds.
    pub rms_jitter: f64,
    /// Peak-to-peak jitter of threshold crossings, seconds.
    pub pp_jitter: f64,
    /// `height / (v_high − v_low)` — 1.0 is a perfect eye, ≤ 0 closed.
    pub opening: f64,
}

impl EyeDiagram {
    /// Folds a waveform into an eye with the given unit interval.
    ///
    /// The fold assumes bit edges nominally at integer multiples of the
    /// UI (as produced by [`crate::nrz::NrzConfig::render`]); samples are
    /// phase-shifted so the eye crossing appears at the window edges and
    /// the sampling instant at the center.
    ///
    /// # Panics
    ///
    /// Panics if `ui <= 0` or shorter than two samples.
    #[must_use]
    #[allow(clippy::expect_used)] // documented panic contract above
    pub fn fold(wave: &UniformWave, ui: f64) -> Self {
        assert!(ui > 0.0, "unit interval must be positive");
        assert!(ui >= 2.0 * wave.dt(), "need at least two samples per UI");
        let two_ui = 2.0 * ui;
        let mut folded = Vec::with_capacity(wave.len());
        let mut v_min = f64::MAX;
        let mut v_max = f64::MIN;
        for (i, &v) in wave.samples().iter().enumerate() {
            let t = wave.time_at(i) - wave.t0();
            let phase = t.rem_euclid(two_ui);
            folded.push((phase, v));
            v_min = v_min.min(v);
            v_max = v_max.max(v);
        }

        // Threshold crossings for jitter/width, folded into one UI and
        // centered: nominal edges at k·UI fold to UI/2 after the shift.
        let mid = (v_min + v_max) / 2.0;
        let times = wave.times();
        let crossings_abs = interp::level_crossings(&times, wave.samples(), mid)
            .expect("uniform grid is always valid");
        let crossings = crossings_abs
            .iter()
            .map(|&t| (t - wave.t0() + ui / 2.0).rem_euclid(ui))
            .collect();

        EyeDiagram {
            ui,
            folded,
            crossings,
            v_min,
            v_max,
        }
    }

    /// The unit interval, seconds.
    #[must_use]
    pub fn ui(&self) -> f64 {
        self.ui
    }

    /// Folded `(phase, value)` samples over a 2-UI window.
    #[must_use]
    pub fn folded_samples(&self) -> &[(f64, f64)] {
        &self.folded
    }

    /// Computes scalar metrics.
    ///
    /// Uses samples within ±10 % of the UI centers as the "sampling
    /// instant" population and 5/95 percentiles for robust inner-eye
    /// rails.
    #[must_use]
    // The stats expects run only on populations the branch above proved
    // non-empty; the messages document which guard makes them safe.
    #[allow(clippy::expect_used)]
    pub fn metrics(&self) -> EyeMetrics {
        let mid = (self.v_min + self.v_max) / 2.0;
        // Sampling-instant population: phases near 0.5·UI or 1.5·UI.
        let mut highs = Vec::new();
        let mut lows = Vec::new();
        for &(phase, v) in &self.folded {
            let p = (phase / self.ui).rem_euclid(1.0);
            if (p - 0.5).abs() <= 0.1 {
                if v >= mid {
                    highs.push(v);
                } else {
                    lows.push(v);
                }
            }
        }
        let (v_high, v_low, height) = if highs.is_empty() || lows.is_empty() {
            // Eye fully collapsed onto one rail (e.g. all-zeros data).
            (self.v_max, self.v_min, 0.0)
        } else {
            let v_high = stats::mean(&highs).expect("non-empty");
            let v_low = stats::mean(&lows).expect("non-empty");
            let inner_high = stats::percentile(&highs, 5.0).expect("non-empty");
            let inner_low = stats::percentile(&lows, 95.0).expect("non-empty");
            (v_high, v_low, inner_high - inner_low)
        };

        let (rms_jitter, pp_jitter) = if self.crossings.len() >= 2 {
            // Circular statistics: the crossing cluster may straddle the
            // fold boundary (group delay rotates it arbitrarily), so the
            // peak-to-peak spread is UI minus the largest empty gap
            // between consecutive (sorted, circular) crossings.
            let mut sorted = self.crossings.clone();
            sorted.sort_by(f64::total_cmp);
            let mut max_gap = self.ui - (sorted[sorted.len() - 1] - sorted[0]);
            let mut gap_end = sorted[0]; // phase just after the max gap
            for w in sorted.windows(2) {
                let gap = w[1] - w[0];
                if gap > max_gap {
                    max_gap = gap;
                    gap_end = w[1];
                }
            }
            let pp = self.ui - max_gap;
            // Rotate so the cluster is contiguous, then ordinary stddev.
            let rotated: Vec<f64> = sorted
                .iter()
                .map(|&c| (c - gap_end).rem_euclid(self.ui))
                .collect();
            let rms = stats::std_dev(&rotated).expect("non-empty");
            (rms, pp)
        } else {
            (0.0, 0.0)
        };
        let width = (self.ui - pp_jitter).max(0.0);
        let swing = v_high - v_low;
        let opening = if swing > 0.0 { height / swing } else { 0.0 };

        EyeMetrics {
            height,
            width,
            v_high,
            v_low,
            rms_jitter,
            pp_jitter,
            opening,
        }
    }

    /// Renders the eye as ASCII art (`rows × cols` character grid over a
    /// 2-UI window), densest regions darkest. Used by the figure binaries.
    #[must_use]
    #[allow(clippy::expect_used)] // grid has rows*cols > 0 entries
    pub fn render_ascii(&self, rows: usize, cols: usize) -> String {
        assert!(rows >= 2 && cols >= 2, "grid too small");
        let mut grid = vec![0u32; rows * cols];
        let span = (self.v_max - self.v_min).max(1e-30);
        let two_ui = 2.0 * self.ui;
        for &(phase, v) in &self.folded {
            let c = ((phase / two_ui) * cols as f64) as usize;
            let r = (((self.v_max - v) / span) * (rows - 1) as f64).round() as usize;
            let c = c.min(cols - 1);
            let r = r.min(rows - 1);
            grid[r * cols + c] += 1;
        }
        let peak = *grid.iter().max().expect("non-empty grid") as f64;
        const SHADES: [char; 6] = [' ', '.', ':', '+', '#', '@'];
        let mut out = String::with_capacity(rows * (cols + 1));
        for r in 0..rows {
            for c in 0..cols {
                let count = grid[r * cols + c] as f64;
                let idx = if count == 0.0 {
                    0
                } else {
                    1 + ((count / peak) * (SHADES.len() - 2) as f64).round() as usize
                };
                out.push(SHADES[idx.min(SHADES.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nrz::NrzConfig;
    use crate::prbs::Prbs;

    fn clean_eye() -> EyeDiagram {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let wave = NrzConfig::new(100e-12, 0.5).render(&bits);
        EyeDiagram::fold(&wave, 100e-12)
    }

    #[test]
    fn clean_nrz_eye_is_wide_open() {
        let m = clean_eye().metrics();
        assert!(m.opening > 0.9, "opening = {}", m.opening);
        assert!((m.v_high - 0.25).abs() < 0.02);
        assert!((m.v_low + 0.25).abs() < 0.02);
        assert!(m.height > 0.45, "height = {}", m.height);
        // Clean edges: tiny jitter.
        assert!(m.pp_jitter < 5e-12, "pp jitter = {}", m.pp_jitter);
        assert!(m.width > 95e-12);
    }

    #[test]
    fn jittered_eye_is_narrower() {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let clean = NrzConfig::new(100e-12, 0.5).render(&bits);
        let dirty = NrzConfig::new(100e-12, 0.5)
            .with_random_jitter(4e-12, 3)
            .render(&bits);
        let mc = EyeDiagram::fold(&clean, 100e-12).metrics();
        let md = EyeDiagram::fold(&dirty, 100e-12).metrics();
        assert!(md.width < mc.width);
        assert!(md.rms_jitter > mc.rms_jitter);
        assert!(md.rms_jitter > 1e-12, "rms = {}", md.rms_jitter);
    }

    #[test]
    fn attenuated_eye_has_smaller_height() {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let full = NrzConfig::new(100e-12, 0.5).render(&bits);
        let small = NrzConfig::new(100e-12, 0.05).render(&bits);
        let mf = EyeDiagram::fold(&full, 100e-12).metrics();
        let ms = EyeDiagram::fold(&small, 100e-12).metrics();
        assert!(ms.height < mf.height / 5.0);
        // But relative opening stays high for a clean small signal.
        assert!(ms.opening > 0.9);
    }

    #[test]
    fn constant_signal_reports_zero_height() {
        let wave = UniformWave::new(0.0, 1e-12, vec![0.3; 1000]);
        let m = EyeDiagram::fold(&wave, 100e-12).metrics();
        assert_eq!(m.height, 0.0);
    }

    #[test]
    fn ascii_render_shape() {
        let art = clean_eye().render_ascii(10, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
        // Top and bottom rails are dense; some character must be non-space.
        assert!(art.contains('@') || art.contains('#'));
        // The eye interior (middle row, quarter column = sampling point)
        // must be empty for a clean eye.
        let mid_row: Vec<char> = lines[5].chars().collect();
        assert_eq!(mid_row[10], ' ', "eye interior should be open");
    }

    #[test]
    #[should_panic(expected = "unit interval")]
    fn zero_ui_rejected() {
        let wave = UniformWave::new(0.0, 1e-12, vec![0.0; 10]);
        let _ = EyeDiagram::fold(&wave, 0.0);
    }
}

/// A hexagonal eye mask: the keep-out region receivers specify for
/// compliance (e.g. XAUI-style masks). Defined symmetrically around the
/// eye center in normalized coordinates and scaled by the UI and the
/// mask voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyeMask {
    /// Half-width of the mask at the sampling level, as a fraction of
    /// the UI (x1 in the standard hexagon).
    pub x1: f64,
    /// Half-width of the mask at its vertical extremes, fraction of UI
    /// (x2 ≤ x1).
    pub x2: f64,
    /// Mask half-height, volts.
    pub y1: f64,
}

impl EyeMask {
    /// A mask in the spirit of the 10 Gb/s backplane specs: ±35 % UI at
    /// the crossing level, ±17.5 % UI at ±half the mask voltage.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < x2 <= x1 <= 0.5` and `y1 > 0`.
    #[must_use]
    pub fn new(x1: f64, x2: f64, y1: f64) -> Self {
        assert!(
            x2 > 0.0 && x2 <= x1 && x1 <= 0.5 && y1 > 0.0,
            "mask must satisfy 0 < x2 <= x1 <= 0.5, y1 > 0"
        );
        EyeMask { x1, x2, y1 }
    }

    /// The paper-scale default: 30 % UI inner width, 60 mV half-height.
    #[must_use]
    pub fn paper_default() -> Self {
        EyeMask::new(0.3, 0.15, 0.06)
    }

    /// Whether the point (`phase_frac` in [−0.5, 0.5] around the eye
    /// center, `v` volts from the eye midlevel) lies inside the mask.
    #[must_use]
    pub fn contains(&self, phase_frac: f64, v: f64) -> bool {
        let x = phase_frac.abs();
        let y = v.abs();
        if x > self.x1 || y > self.y1 {
            return false;
        }
        if x <= self.x2 {
            return true;
        }
        // Sloped hexagon side between (x2, y1) and (x1, 0).
        y <= self.y1 * (self.x1 - x) / (self.x1 - self.x2)
    }

    /// Counts folded samples violating the mask (inside the keep-out).
    /// A compliant eye returns 0.
    #[must_use]
    pub fn violations(&self, eye: &EyeDiagram) -> usize {
        let m = eye.metrics();
        let mid = (m.v_high + m.v_low) / 2.0;
        let ui = eye.ui();
        eye.folded_samples()
            .iter()
            .filter(|&&(phase, v)| {
                // Phase around the *eye center* (0.5 or 1.5 UI).
                let p = (phase / ui).rem_euclid(1.0) - 0.5;
                self.contains(p, v - mid)
            })
            .count()
    }
}

#[cfg(test)]
mod mask_tests {
    use super::*;
    use crate::nrz::NrzConfig;
    use crate::prbs::Prbs;

    fn eye(amplitude: f64, rj: f64) -> EyeDiagram {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let w = NrzConfig::new(100e-12, amplitude)
            .with_random_jitter(rj, 9)
            .render(&bits);
        EyeDiagram::fold(&w, 100e-12)
    }

    #[test]
    fn clean_full_swing_eye_passes_the_mask() {
        let mask = EyeMask::paper_default();
        assert_eq!(mask.violations(&eye(0.5, 0.0)), 0);
    }

    #[test]
    fn small_eye_violates_the_mask() {
        // 80 mV swing: rails at ±40 mV, inside the ±60 mV mask.
        let mask = EyeMask::paper_default();
        assert!(mask.violations(&eye(0.08, 0.0)) > 100);
    }

    #[test]
    fn heavy_jitter_violates_the_mask() {
        let mask = EyeMask::paper_default();
        assert!(
            mask.violations(&eye(0.5, 15e-12)) > 0,
            "15 ps rms jitter should clip the mask corners"
        );
    }

    #[test]
    fn mask_geometry() {
        let mask = EyeMask::new(0.4, 0.2, 0.1);
        assert!(mask.contains(0.0, 0.0));
        assert!(mask.contains(0.19, 0.099));
        assert!(!mask.contains(0.45, 0.0)); // beyond x1
        assert!(!mask.contains(0.0, 0.2)); // beyond y1
                                           // On the sloped edge: x = 0.3 → y limit = 0.05.
        assert!(mask.contains(0.3, 0.049));
        assert!(!mask.contains(0.3, 0.051));
    }

    #[test]
    #[should_panic(expected = "mask must satisfy")]
    fn invalid_mask_rejected() {
        let _ = EyeMask::new(0.6, 0.2, 0.1);
    }
}
