//! NRZ waveform synthesis.
//!
//! Renders a bit sequence into a differential-half NRZ waveform with
//! finite, smooth (raised-cosine) edges and optional Gaussian edge jitter.
//! The output feeds either the behavioural link models directly or the
//! simulator via a PWL source.

use crate::wave::UniformWave;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NRZ rendering parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NrzConfig {
    /// Unit interval (bit time), seconds.
    pub ui: f64,
    /// Peak-to-peak amplitude, volts (waveform spans ±`amplitude`/2
    /// around `offset`).
    pub amplitude: f64,
    /// Common-mode offset, volts.
    pub offset: f64,
    /// 0→100 % edge transition time as a fraction of the UI.
    pub rise_frac: f64,
    /// Samples per UI.
    pub samples_per_ui: usize,
    /// RMS Gaussian jitter injected on each edge, seconds.
    pub rj_rms: f64,
    /// Seed for the jitter generator (deterministic by default).
    pub seed: u64,
}

impl NrzConfig {
    /// A clean (jitter-free) NRZ config at the given UI and peak-to-peak
    /// amplitude, 25 % edges, 32 samples per UI, zero offset.
    ///
    /// # Panics
    ///
    /// Panics if `ui` or `amplitude` is not strictly positive.
    #[must_use]
    pub fn new(ui: f64, amplitude: f64) -> Self {
        assert!(ui > 0.0, "unit interval must be positive");
        assert!(amplitude > 0.0, "amplitude must be positive");
        NrzConfig {
            ui,
            amplitude,
            offset: 0.0,
            rise_frac: 0.25,
            samples_per_ui: 32,
            rj_rms: 0.0,
            seed: 0x5eed_cafe,
        }
    }

    /// Sets the common-mode offset.
    #[must_use]
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Sets the edge time as a fraction of the UI.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac <= 1`.
    #[must_use]
    pub fn with_rise_frac(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "rise fraction out of range");
        self.rise_frac = frac;
        self
    }

    /// Sets the sampling density.
    ///
    /// # Panics
    ///
    /// Panics if below 4 samples per UI.
    #[must_use]
    pub fn with_samples_per_ui(mut self, n: usize) -> Self {
        assert!(n >= 4, "need at least 4 samples per UI");
        self.samples_per_ui = n;
        self
    }

    /// Injects Gaussian random jitter of the given RMS on every edge.
    #[must_use]
    pub fn with_random_jitter(mut self, rj_rms: f64, seed: u64) -> Self {
        self.rj_rms = rj_rms;
        self.seed = seed;
        self
    }

    /// Renders `bits` into a uniform waveform starting at `t = 0`.
    ///
    /// The first bit is preceded by half a UI of its own level so the
    /// first edge is fully formed.
    #[must_use]
    pub fn render(&self, bits: &[bool]) -> UniformWave {
        assert!(!bits.is_empty(), "need at least one bit");
        let dt = self.ui / self.samples_per_ui as f64;
        let n = bits.len() * self.samples_per_ui;
        let t_edge = self.ui * self.rise_frac;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Edge times with jitter: edge k sits nominally at k·ui.
        let mut edges: Vec<(f64, f64, f64)> = Vec::new(); // (time, from, to)
        let level = |b: bool| {
            self.offset
                + if b {
                    self.amplitude / 2.0
                } else {
                    -self.amplitude / 2.0
                }
        };
        let mut prev = bits[0];
        for (k, &b) in bits.iter().enumerate().skip(1) {
            if b != prev {
                let jitter = if self.rj_rms > 0.0 {
                    gaussian(&mut rng) * self.rj_rms
                } else {
                    0.0
                };
                edges.push((k as f64 * self.ui + jitter, level(prev), level(b)));
                prev = b;
            }
        }

        let mut data = Vec::with_capacity(n);
        let mut edge_idx = 0usize;
        for i in 0..n {
            let t = i as f64 * dt;
            // Advance past edges fully completed before t.
            while edge_idx < edges.len() && t > edges[edge_idx].0 + t_edge / 2.0 {
                edge_idx += 1;
            }
            let v = if edge_idx < edges.len() {
                let (te, from, to) = edges[edge_idx];
                let start = te - t_edge / 2.0;
                if t < start {
                    from
                } else {
                    // Raised-cosine transition.
                    let x = ((t - start) / t_edge).clamp(0.0, 1.0);
                    let s = 0.5 - 0.5 * (std::f64::consts::PI * x).cos();
                    from + (to - from) * s
                }
            } else {
                level(bits[bits.len() - 1])
            };
            data.push(v);
        }
        UniformWave::new(0.0, dt, data)
    }

    /// Renders `bits` to a `(time, value)` point list suitable for a
    /// simulator PWL source (sparse: only edge breakpoints).
    #[must_use]
    pub fn render_pwl(&self, bits: &[bool]) -> Vec<(f64, f64)> {
        assert!(!bits.is_empty(), "need at least one bit");
        let t_edge = self.ui * self.rise_frac;
        let level = |b: bool| {
            self.offset
                + if b {
                    self.amplitude / 2.0
                } else {
                    -self.amplitude / 2.0
                }
        };
        let mut pts = vec![(0.0, level(bits[0]))];
        let mut prev = bits[0];
        for (k, &b) in bits.iter().enumerate().skip(1) {
            if b != prev {
                let te = k as f64 * self.ui;
                pts.push((te - t_edge / 2.0, level(prev)));
                pts.push((te + t_edge / 2.0, level(b)));
                prev = b;
            }
        }
        pts.push((bits.len() as f64 * self.ui, level(prev)));
        pts
    }
}

/// Standard-normal sample via Box-Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_amplitude_and_offset() {
        let cfg = NrzConfig::new(100e-12, 0.25).with_offset(0.9);
        let w = cfg.render(&[true, true, false, false]);
        let max = w.samples().iter().cloned().fold(f64::MIN, f64::max);
        let min = w.samples().iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 1.025).abs() < 1e-9);
        assert!((min - 0.775).abs() < 1e-9);
    }

    #[test]
    fn sample_count_and_grid() {
        let cfg = NrzConfig::new(100e-12, 1.0).with_samples_per_ui(16);
        let w = cfg.render(&[true, false, true]);
        assert_eq!(w.len(), 48);
        assert!((w.dt() - 100e-12 / 16.0).abs() < 1e-24);
    }

    #[test]
    fn constant_bits_give_flat_waveform() {
        let cfg = NrzConfig::new(100e-12, 0.5);
        let w = cfg.render(&[true; 8]);
        for &v in w.samples() {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn edge_is_monotone_and_centered() {
        let cfg = NrzConfig::new(100e-12, 2.0).with_samples_per_ui(64);
        let w = cfg.render(&[false, true]);
        // Value right at the nominal edge time (t = 1 UI) is mid-level.
        let mid = w.value_at(100e-12);
        assert!(mid.abs() < 0.05, "edge center should be ~0, got {mid}");
        // Monotone through the transition.
        let a = w.value_at(90e-12);
        let b = w.value_at(100e-12);
        let c = w.value_at(110e-12);
        assert!(a < b && b < c);
    }

    #[test]
    fn jitter_moves_edges_but_not_levels() {
        let clean = NrzConfig::new(100e-12, 1.0).render(&[false, true, false, true]);
        let jittered = NrzConfig::new(100e-12, 1.0)
            .with_random_jitter(3e-12, 42)
            .render(&[false, true, false, true]);
        assert_eq!(clean.len(), jittered.len());
        // Settled levels identical.
        assert!((clean.samples()[0] - jittered.samples()[0]).abs() < 1e-12);
        // But waveforms differ somewhere near edges.
        let diff: f64 = clean
            .samples()
            .iter()
            .zip(jittered.samples())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "jitter should alter the waveform");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = NrzConfig::new(100e-12, 1.0)
            .with_random_jitter(2e-12, 7)
            .render(&[false, true, false]);
        let b = NrzConfig::new(100e-12, 1.0)
            .with_random_jitter(2e-12, 7)
            .render(&[false, true, false]);
        assert_eq!(a, b);
    }

    #[test]
    fn pwl_has_breakpoints_per_transition() {
        let cfg = NrzConfig::new(100e-12, 1.0);
        let pts = cfg.render_pwl(&[false, true, true, false]);
        // initial + 2 per transition (×2 transitions) + final.
        assert_eq!(pts.len(), 6);
        // Strictly increasing times.
        assert!(pts.windows(2).all(|w| w[1].0 > w[0].0));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_bits_rejected() {
        let _ = NrzConfig::new(1e-10, 1.0).render(&[]);
    }
}
