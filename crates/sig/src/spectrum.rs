//! Power spectral density estimation.
//!
//! NRZ data has a `sinc²` spectrum with nulls at the bit rate — a useful
//! cross-check for waveform synthesis — and the equalizer/peaking blocks
//! reshape that spectrum in ways worth asserting on directly.

use crate::wave::UniformWave;
use cml_numeric::{fft, NumericError};

/// A one-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    freqs: Vec<f64>,
    /// Power per bin (V²), one-sided.
    power: Vec<f64>,
}

impl Psd {
    /// Welch-style single-segment periodogram with a Hann window, padded
    /// to the next power of two.
    ///
    /// # Errors
    ///
    /// Propagates FFT errors (cannot occur for the padded length, but
    /// the signature stays honest).
    pub fn estimate(wave: &UniformWave) -> Result<Psd, NumericError> {
        let n = wave.len();
        let n_fft = fft::next_pow2(n);
        // Hann window, normalized for power.
        let mut windowed = Vec::with_capacity(n_fft);
        let mut win_power = 0.0;
        for (i, &v) in wave.samples().iter().enumerate() {
            let w = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos();
            win_power += w * w;
            windowed.push(v * w);
        }
        windowed.resize(n_fft, 0.0);
        let spec = fft::fft_real(&windowed)?;
        let df = 1.0 / (n_fft as f64 * wave.dt());
        // Periodogram normalization: |X_k|² / (N_fft · Σw²) makes the
        // bin sum equal the window-weighted mean square (Parseval).
        let scale = 1.0 / (n_fft as f64 * win_power.max(1e-300));
        let half = n_fft / 2;
        let mut freqs = Vec::with_capacity(half);
        let mut power = Vec::with_capacity(half);
        for (k, s) in spec.iter().take(half).enumerate() {
            freqs.push(k as f64 * df);
            let two_sided = s.norm_sqr() * scale;
            power.push(if k == 0 { two_sided } else { 2.0 * two_sided });
        }
        Ok(Psd { freqs, power })
    }

    /// Frequency grid, Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Power per bin, V².
    #[must_use]
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Total power (sum over bins), V² — ≈ the time-domain mean square.
    #[must_use]
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// Power integrated over `[f_lo, f_hi)`, V².
    #[must_use]
    pub fn band_power(&self, f_lo: f64, f_hi: f64) -> f64 {
        self.freqs
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| **f >= f_lo && **f < f_hi)
            .map(|(_, p)| p)
            .sum()
    }

    /// Frequency of the strongest non-DC bin, Hz.
    #[must_use]
    pub fn peak_freq(&self) -> f64 {
        let idx = self
            .power
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        self.freqs[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nrz::NrzConfig;
    use crate::prbs::Prbs;

    #[test]
    fn sine_peak_lands_at_tone_frequency() {
        let f0 = 2.5e9;
        let dt = 10e-12;
        let data: Vec<f64> = (0..4096)
            .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 * dt).sin())
            .collect();
        let psd = Psd::estimate(&UniformWave::new(0.0, dt, data)).unwrap();
        let peak = psd.peak_freq();
        assert!((peak - f0).abs() < 5e7, "peak at {peak:.3e}");
    }

    #[test]
    fn total_power_matches_time_domain() {
        let data: Vec<f64> = (0..2048)
            .map(|i| ((i * 37) % 17) as f64 / 17.0 - 0.5)
            .collect();
        let w = UniformWave::new(0.0, 1e-12, data);
        let ms: f64 = w.samples().iter().map(|v| v * v).sum::<f64>() / w.len() as f64;
        let psd = Psd::estimate(&w).unwrap();
        // Hann windowing + padding keeps this within a modest factor.
        let ratio = psd.total_power() / ms;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio = {ratio}");
    }

    #[test]
    fn nrz_spectrum_has_null_at_bit_rate() {
        let bits: Vec<bool> = Prbs::prbs15().take(4096).collect();
        let w = NrzConfig::new(100e-12, 1.0)
            .with_rise_frac(0.05)
            .with_samples_per_ui(8)
            .render(&bits);
        let psd = Psd::estimate(&w).unwrap();
        // sinc² envelope: power near 10 GHz (bit rate) ≪ power near 5 GHz.
        let p_mid = psd.band_power(4.5e9, 5.5e9);
        let p_null = psd.band_power(9.7e9, 10.3e9);
        assert!(
            p_null < p_mid / 20.0,
            "null {p_null:.3e} vs mid-band {p_mid:.3e}"
        );
    }

    #[test]
    fn band_power_partitions_total() {
        let bits: Vec<bool> = Prbs::prbs7().take(127).collect();
        let w = NrzConfig::new(100e-12, 0.5).render(&bits);
        let psd = Psd::estimate(&w).unwrap();
        let nyquist = 1.0 / (2.0 * w.dt());
        let sum = psd.band_power(0.0, nyquist * 2.0);
        assert!((sum - psd.total_power()).abs() < 1e-12);
    }
}
