//! Streaming (O(chunk)-memory) signal post-processing.
//!
//! The dense pipeline — collect the whole transient, resample it with
//! [`crate::wave::UniformWave::from_series`], fold with
//! [`crate::eye::EyeDiagram::fold`] — holds every sample in memory and
//! caps PRBS depth at a few thousand bits. The accumulators here consume
//! the same `(time, value)` stream *incrementally*, in arbitrary chunk
//! sizes, and hold only fixed-size state:
//!
//! * [`StreamingResampler`] — non-uniform solver grid → uniform samples,
//!   one knot of look-behind;
//! * [`EyeAccumulator`] — fold-into-eye: density grid, rail histograms
//!   and a crossing-phase histogram, with [`EyeAccumulator::metrics`]
//!   producing the same [`EyeMetrics`] record as the dense fold;
//! * [`StreamMetrics`] — min/max/mean/RMS and threshold-crossing
//!   counters;
//! * [`BerCounter`] — decision sampling at bit centers against an
//!   expected bit iterator (a PRBS generator), counting errors for true
//!   million-bit BER runs.
//!
//! All accumulators are **chunk-invariant**: feeding a stream point by
//! point, in 7-sample chunks, or all at once produces bit-identical
//! state, so streamed results match the dense post-processing exactly
//! (asserted in `tests/streaming_equivalence.rs`). [`EyeAccumulator`]
//! and [`StreamMetrics`] also [`merge`](EyeAccumulator::merge) across
//! independently simulated segments, which is the deterministic fan-in
//! used under parallel sweeps.

use crate::eye::EyeMetrics;

/// Incremental linear resampler from a non-uniform `(t, v)` stream onto
/// the uniform grid `t = k·dt`, `k = 0, 1, 2, …`.
///
/// Feed points in non-decreasing time order; each push emits every grid
/// sample that the new segment covers. Only the previous knot is
/// retained, so memory is O(1) regardless of run length. Grid times are
/// computed as `k as f64 * dt` (never accumulated), so the emitted
/// samples are bit-identical no matter how the input is chunked.
#[derive(Debug, Clone)]
pub struct StreamingResampler {
    dt: f64,
    next_k: u64,
    last: Option<(f64, f64)>,
}

impl StreamingResampler {
    /// Creates a resampler with the given output sample interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    #[must_use]
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        StreamingResampler {
            dt,
            next_k: 0,
            last: None,
        }
    }

    /// Output sample interval, seconds.
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of uniform samples emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.next_k
    }

    /// Pushes one input point, calling `emit(k, value)` for every
    /// uniform sample index `k` with `k·dt` in `(t_prev, t]` (and at
    /// `t` itself for the very first point when it lands on the grid).
    /// Out-of-order points (time below the previous knot) are ignored;
    /// a repeated time replaces the held knot.
    pub fn push(&mut self, t: f64, v: f64, mut emit: impl FnMut(u64, f64)) {
        match self.last {
            None => {
                // Emit any grid points at or before the first knot with
                // its value (the transient grid starts exactly at t=0,
                // so in practice this emits sample 0 = x(0)).
                while (self.next_k as f64) * self.dt <= t {
                    emit(self.next_k, v);
                    self.next_k += 1;
                }
                self.last = Some((t, v));
            }
            Some((tp, vp)) => {
                if t < tp {
                    return;
                }
                if t == tp {
                    self.last = Some((t, v));
                    return;
                }
                loop {
                    let tg = (self.next_k as f64) * self.dt;
                    if tg > t {
                        break;
                    }
                    let frac = (tg - tp) / (t - tp);
                    emit(self.next_k, vp + (v - vp) * frac);
                    self.next_k += 1;
                }
                self.last = Some((t, v));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fold-into-eye accumulator
// ---------------------------------------------------------------------

/// Configuration of an [`EyeAccumulator`].
///
/// The voltage window `[v_lo, v_hi]` must be supplied up front (a
/// streaming fold cannot auto-range): use the known signalling swing
/// with some margin. Samples outside the window still contribute to the
/// exact rail means/min/max; only the histogram bins clamp.
#[derive(Debug, Clone, PartialEq)]
pub struct EyeAccumulatorConfig {
    /// Unit interval, seconds.
    pub ui: f64,
    /// Uniform resampling interval, seconds (the fold operates on the
    /// resampled grid, like the dense pipeline).
    pub dt: f64,
    /// Initial settling time to discard, seconds (counterpart of
    /// [`crate::wave::UniformWave::skip_initial`]).
    pub skip: f64,
    /// Lower edge of the voltage window.
    pub v_lo: f64,
    /// Upper edge of the voltage window.
    pub v_hi: f64,
    /// Density-grid rows (voltage bins) for rendering.
    pub rows: usize,
    /// Density-grid columns (phase bins over 2 UI) for rendering.
    pub cols: usize,
    /// Voltage-histogram resolution for the inner-rail percentiles.
    pub v_bins: usize,
    /// Crossing-phase histogram resolution over one UI; sets the jitter
    /// quantization (`ui / phase_bins`, 1.5 fs at 10 Gb/s with the
    /// default 2¹⁶ bins — far below any eye tolerance of interest).
    pub phase_bins: usize,
}

impl EyeAccumulatorConfig {
    /// Config with the default grid/histogram resolutions (24×96
    /// density grid, 4096 voltage bins, 65536 phase bins) and no skip.
    ///
    /// # Panics
    ///
    /// Panics unless `ui >= 2·dt > 0` and `v_hi > v_lo`.
    #[must_use]
    pub fn new(ui: f64, dt: f64, v_lo: f64, v_hi: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        assert!(ui >= 2.0 * dt, "need at least two samples per UI");
        assert!(v_hi > v_lo, "voltage window must be non-empty");
        EyeAccumulatorConfig {
            ui,
            dt,
            skip: 0.0,
            v_lo,
            v_hi,
            rows: 24,
            cols: 96,
            v_bins: 4096,
            phase_bins: 1 << 16,
        }
    }

    /// Sets the initial settling time to discard.
    ///
    /// # Panics
    ///
    /// Panics if `skip` is negative.
    #[must_use]
    pub fn with_skip(mut self, skip: f64) -> Self {
        assert!(skip >= 0.0, "skip must be non-negative");
        self.skip = skip;
        self
    }

    /// Sets the density-grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    #[must_use]
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "grid too small");
        self.rows = rows;
        self.cols = cols;
        self
    }
}

/// Streaming eye-diagram fold at fixed memory.
///
/// Feed the raw solver `(t, v)` stream via [`push`](EyeAccumulator::push)
/// (resampling happens inside) and read [`metrics`](EyeAccumulator::metrics)
/// at the end. State is a density grid, two rail histograms, a
/// crossing-phase histogram and a handful of exact scalar accumulators —
/// about [`mem_bytes`](EyeAccumulator::mem_bytes) bytes total, flat in
/// the number of bits folded.
#[derive(Debug, Clone)]
pub struct EyeAccumulator {
    cfg: EyeAccumulatorConfig,
    resampler: StreamingResampler,
    n_skip: u64,
    /// Previous uniform sample `(k, v)` for crossing detection.
    prev: Option<(u64, f64)>,
    /// Scratch buffer recycling resampler output between pushes.
    scratch: Vec<(u64, f64)>,
    grid: Vec<u64>,
    hist_high: Vec<u64>,
    hist_low: Vec<u64>,
    n_high: u64,
    sum_high: f64,
    n_low: u64,
    sum_low: f64,
    cross_hist: Vec<u64>,
    n_cross: u64,
    samples: u64,
    v_min: f64,
    v_max: f64,
}

impl EyeAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new(cfg: EyeAccumulatorConfig) -> Self {
        let n_skip = (cfg.skip / cfg.dt).ceil() as u64;
        EyeAccumulator {
            resampler: StreamingResampler::new(cfg.dt),
            n_skip,
            prev: None,
            scratch: Vec::new(),
            grid: vec![0; cfg.rows * cfg.cols],
            hist_high: vec![0; cfg.v_bins],
            hist_low: vec![0; cfg.v_bins],
            n_high: 0,
            sum_high: 0.0,
            n_low: 0,
            sum_low: 0.0,
            cross_hist: vec![0; cfg.phase_bins],
            n_cross: 0,
            samples: 0,
            v_min: f64::MAX,
            v_max: f64::MIN,
            cfg,
        }
    }

    /// The configuration this accumulator was built with.
    #[must_use]
    pub fn config(&self) -> &EyeAccumulatorConfig {
        &self.cfg
    }

    /// Uniform samples folded so far (after the skip window).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Midlevel crossings detected so far.
    #[must_use]
    pub fn crossings(&self) -> u64 {
        self.n_cross
    }

    /// Approximate bytes of retained state — the quantity the
    /// memory-boundedness benchmarks assert is flat in bit count.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        (self.grid.len() + self.hist_high.len() + self.hist_low.len() + self.cross_hist.len()) * 8
            + self.scratch.capacity() * 16
            + std::mem::size_of::<Self>()
    }

    /// Pushes one raw `(t, v)` stream point (non-decreasing `t`).
    pub fn push(&mut self, t: f64, v: f64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.resampler.push(t, v, |k, val| scratch.push((k, val)));
        for &(k, val) in &scratch {
            self.fold(k, val);
        }
        self.scratch = scratch;
    }

    /// Feeds a whole `(times, values)` series (the dense-path entry:
    /// identical result to any chunked sequence of pushes).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn feed(&mut self, times: &[f64], values: &[f64]) {
        assert_eq!(times.len(), values.len(), "series length mismatch");
        for (&t, &v) in times.iter().zip(values) {
            self.push(t, v);
        }
    }

    /// Folds one uniform sample (index `k` on the `dt` grid).
    fn fold(&mut self, k: u64, v: f64) {
        if k < self.n_skip {
            return;
        }
        let i = k - self.n_skip;
        self.samples += 1;
        self.v_min = self.v_min.min(v);
        self.v_max = self.v_max.max(v);

        let ui = self.cfg.ui;
        let two_ui = 2.0 * ui;
        let phase = (i as f64 * self.cfg.dt).rem_euclid(two_ui);

        // Density grid (same cell mapping as the dense ASCII fold).
        let span = (self.cfg.v_hi - self.cfg.v_lo).max(1e-30);
        let c = ((phase / two_ui) * self.cfg.cols as f64) as usize;
        let r = (((self.cfg.v_hi - v) / span) * (self.cfg.rows - 1) as f64).round() as usize;
        let c = c.min(self.cfg.cols - 1);
        let r = r.min(self.cfg.rows - 1);
        self.grid[r * self.cfg.cols + c] += 1;

        // Sampling-instant population: phases within ±10 % of UI centers.
        let mid = (self.cfg.v_lo + self.cfg.v_hi) / 2.0;
        let p = (phase / ui).rem_euclid(1.0);
        if (p - 0.5).abs() <= 0.1 {
            let bin = self.v_bin(v);
            if v >= mid {
                self.n_high += 1;
                self.sum_high += v;
                self.hist_high[bin] += 1;
            } else {
                self.n_low += 1;
                self.sum_low += v;
                self.hist_low[bin] += 1;
            }
        }

        // Midlevel crossings between consecutive uniform samples.
        if let Some((kp, vp)) = self.prev {
            if kp + 1 == k && ((vp < mid) != (v < mid)) && v != vp {
                let frac = (mid - vp) / (v - vp);
                let t_cross = ((i as f64) - 1.0 + frac) * self.cfg.dt;
                let cphase = (t_cross + ui / 2.0).rem_euclid(ui);
                let bin = (((cphase / ui) * self.cfg.phase_bins as f64) as usize)
                    .min(self.cfg.phase_bins - 1);
                self.cross_hist[bin] += 1;
                self.n_cross += 1;
            }
        }
        self.prev = Some((k, v));
    }

    fn v_bin(&self, v: f64) -> usize {
        let span = (self.cfg.v_hi - self.cfg.v_lo).max(1e-30);
        let x = (v - self.cfg.v_lo) / span * self.cfg.v_bins as f64;
        (x.max(0.0) as usize).min(self.cfg.v_bins - 1)
    }

    /// Merges another accumulator over an **independently** simulated
    /// segment (histograms and exact sums add; the seam between the two
    /// segments contributes no crossing, by construction). This is the
    /// deterministic fan-in under parallel sweeps: merging in input
    /// order gives bit-identical state for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &EyeAccumulator) {
        assert!(self.cfg == other.cfg, "accumulator configs must match");
        for (a, b) in self.grid.iter_mut().zip(&other.grid) {
            *a += b;
        }
        for (a, b) in self.hist_high.iter_mut().zip(&other.hist_high) {
            *a += b;
        }
        for (a, b) in self.hist_low.iter_mut().zip(&other.hist_low) {
            *a += b;
        }
        for (a, b) in self.cross_hist.iter_mut().zip(&other.cross_hist) {
            *a += b;
        }
        self.n_high += other.n_high;
        self.sum_high += other.sum_high;
        self.n_low += other.n_low;
        self.sum_low += other.sum_low;
        self.n_cross += other.n_cross;
        self.samples += other.samples;
        self.v_min = self.v_min.min(other.v_min);
        self.v_max = self.v_max.max(other.v_max);
    }

    /// Computes scalar eye metrics from the accumulated state.
    ///
    /// Same [`EyeMetrics`] record as the dense fold, with two documented
    /// differences in *estimator* (not in the data folded): inner rails
    /// come from the fixed-resolution voltage histograms (resolution
    /// `(v_hi−v_lo)/v_bins`) instead of exact order statistics, and the
    /// jitter statistics are computed on the crossing-phase histogram
    /// (resolution `ui/phase_bins`). Both are deterministic and
    /// chunk-invariant.
    #[must_use]
    pub fn metrics(&self) -> EyeMetrics {
        if self.samples == 0 {
            return EyeMetrics {
                height: 0.0,
                width: 0.0,
                v_high: 0.0,
                v_low: 0.0,
                rms_jitter: 0.0,
                pp_jitter: 0.0,
                opening: 0.0,
            };
        }
        let (v_high, v_low, height) = if self.n_high == 0 || self.n_low == 0 {
            // Eye fully collapsed onto one rail (e.g. all-zeros data).
            (self.v_max, self.v_min, 0.0)
        } else {
            let v_high = self.sum_high / self.n_high as f64;
            let v_low = self.sum_low / self.n_low as f64;
            let inner_high = self.hist_percentile(&self.hist_high, self.n_high, 5.0);
            let inner_low = self.hist_percentile(&self.hist_low, self.n_low, 95.0);
            (v_high, v_low, inner_high - inner_low)
        };
        let (rms_jitter, pp_jitter) = self.jitter_from_hist();
        let width = (self.cfg.ui - pp_jitter).max(0.0);
        let swing = v_high - v_low;
        let opening = if swing > 0.0 { height / swing } else { 0.0 };
        EyeMetrics {
            height,
            width,
            v_high,
            v_low,
            rms_jitter,
            pp_jitter,
            opening,
        }
    }

    /// Percentile from a voltage histogram: rank `q/100·(n−1)` with
    /// uniform-within-bin interpolation.
    fn hist_percentile(&self, hist: &[u64], n: u64, q: f64) -> f64 {
        let span = self.cfg.v_hi - self.cfg.v_lo;
        let binw = span / self.cfg.v_bins as f64;
        let rank = q / 100.0 * (n.saturating_sub(1)) as f64;
        let mut cum = 0u64;
        for (b, &cnt) in hist.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            if (cum + cnt) as f64 > rank {
                let frac = ((rank - cum as f64) / cnt as f64).clamp(0.0, 1.0);
                return self.cfg.v_lo + (b as f64 + frac) * binw;
            }
            cum += cnt;
        }
        self.cfg.v_hi
    }

    /// Circular jitter statistics from the crossing-phase histogram:
    /// the peak-to-peak spread is UI minus the largest empty gap between
    /// occupied bins; the RMS is the weighted standard deviation of bin
    /// centers rotated so the cluster is contiguous.
    fn jitter_from_hist(&self) -> (f64, f64) {
        if self.n_cross < 2 {
            return (0.0, 0.0);
        }
        let ui = self.cfg.ui;
        let nb = self.cfg.phase_bins;
        let binw = ui / nb as f64;
        let mut first = None;
        let mut last = 0usize;
        let mut max_gap = 0.0f64;
        let mut gap_end = 0usize;
        let mut prev: Option<usize> = None;
        for (b, &cnt) in self.cross_hist.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            if first.is_none() {
                first = Some(b);
                gap_end = b;
            }
            if let Some(p) = prev {
                let gap = (b - p) as f64 * binw;
                if gap > max_gap {
                    max_gap = gap;
                    gap_end = b;
                }
            }
            prev = Some(b);
            last = b;
        }
        let first = first.unwrap_or(0);
        // Wraparound gap from the last occupied bin back to the first.
        let wrap = ui - (last - first) as f64 * binw;
        if wrap > max_gap {
            max_gap = wrap;
            gap_end = first;
        }
        let pp = (ui - max_gap).max(0.0);
        // Rotate so the cluster is contiguous, then weighted stddev of
        // bin centers.
        let origin = (gap_end as f64 + 0.5) * binw;
        let (mut n, mut s, mut s2) = (0u64, 0.0f64, 0.0f64);
        for (b, &cnt) in self.cross_hist.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let rot = ((b as f64 + 0.5) * binw - origin).rem_euclid(ui);
            let w = cnt as f64;
            n += cnt;
            s += w * rot;
            s2 += w * rot * rot;
        }
        let mean = s / n as f64;
        let var = (s2 / n as f64 - mean * mean).max(0.0);
        // Sample-style correction to match the dense path's stddev
        // convention on large populations (negligible either way).
        let var = if n > 1 {
            var * n as f64 / (n - 1) as f64
        } else {
            var
        };
        (var.sqrt(), pp)
    }

    /// Renders the accumulated density grid as ASCII art, densest
    /// regions darkest (the streaming counterpart of
    /// [`crate::eye::EyeDiagram::render_ascii`]).
    #[must_use]
    pub fn render_ascii(&self) -> String {
        let (rows, cols) = (self.cfg.rows, self.cfg.cols);
        let peak = self.grid.iter().copied().max().unwrap_or(0).max(1) as f64;
        const SHADES: [char; 6] = [' ', '.', ':', '+', '#', '@'];
        let mut out = String::with_capacity(rows * (cols + 1));
        for r in 0..rows {
            for c in 0..cols {
                let count = self.grid[r * cols + c] as f64;
                let idx = if count == 0.0 {
                    0
                } else {
                    1 + ((count / peak) * (SHADES.len() - 2) as f64).round() as usize
                };
                out.push(SHADES[idx.min(SHADES.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// Streaming scalar metrics and BER counting
// ---------------------------------------------------------------------

/// Streaming scalar waveform metrics: count/min/max/mean/RMS plus
/// rising/falling threshold-crossing counters, all at O(1) memory.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMetrics {
    threshold: f64,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    sumsq: f64,
    rising: u64,
    falling: u64,
    last_above: Option<bool>,
}

impl StreamMetrics {
    /// Creates an empty metrics accumulator; crossings are counted
    /// against `threshold`.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        StreamMetrics {
            threshold,
            count: 0,
            min: f64::MAX,
            max: f64::MIN,
            sum: 0.0,
            sumsq: 0.0,
            rising: 0,
            falling: 0,
            last_above: None,
        }
    }

    /// Pushes one sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.sumsq += v * v;
        let above = v > self.threshold;
        if let Some(prev) = self.last_above {
            if prev != above {
                if above {
                    self.rising += 1;
                } else {
                    self.falling += 1;
                }
            }
        }
        self.last_above = Some(above);
    }

    /// Merges metrics from an **independently** processed segment (the
    /// seam contributes no crossing).
    ///
    /// # Panics
    ///
    /// Panics if the thresholds differ.
    pub fn merge(&mut self, other: &StreamMetrics) {
        assert!(
            self.threshold == other.threshold,
            "crossing thresholds must match"
        );
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        self.rising += other.rising;
        self.falling += other.falling;
        self.last_above = other.last_above.or(self.last_above);
    }

    /// Samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (`+MAX` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`MIN` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Root-mean-square (0 when empty).
    #[must_use]
    pub fn rms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sumsq / self.count as f64).sqrt()
        }
    }

    /// Rising threshold crossings.
    #[must_use]
    pub fn rising(&self) -> u64 {
        self.rising
    }

    /// Falling threshold crossings.
    #[must_use]
    pub fn falling(&self) -> u64 {
        self.falling
    }

    /// Total threshold crossings.
    #[must_use]
    pub fn crossings(&self) -> u64 {
        self.rising + self.falling
    }
}

/// Streaming bit-error-ratio counter: interpolates the waveform at each
/// bit-center decision instant and compares the slicer decision against
/// an expected-bit iterator (typically a [`crate::prbs::Prbs`] clone
/// seeded like the transmitter), at O(1) memory.
///
/// Decision instants are `t_first + k·ui` computed directly (never
/// accumulated), so results are chunk-invariant.
#[derive(Debug, Clone)]
pub struct BerCounter<I> {
    expected: I,
    ui: f64,
    threshold: f64,
    t_first: f64,
    bits: u64,
    errors: u64,
    last: Option<(f64, f64)>,
    done: bool,
}

impl<I: Iterator<Item = bool>> BerCounter<I> {
    /// Creates a counter sampling at `t_first + k·ui` with the given
    /// slicer threshold; `expected` yields the transmitted bits aligned
    /// with the first decision instant.
    ///
    /// # Panics
    ///
    /// Panics unless `ui > 0`.
    #[must_use]
    pub fn new(ui: f64, threshold: f64, t_first: f64, expected: I) -> Self {
        assert!(ui > 0.0, "unit interval must be positive");
        BerCounter {
            expected,
            ui,
            threshold,
            t_first,
            bits: 0,
            errors: 0,
            last: None,
            done: false,
        }
    }

    /// Pushes one raw `(t, v)` stream point (non-decreasing `t`).
    pub fn push(&mut self, t: f64, v: f64) {
        if self.done {
            return;
        }
        if let Some((tp, vp)) = self.last {
            loop {
                let ts = self.t_first + self.bits as f64 * self.ui;
                if ts > t {
                    break;
                }
                let v_s = if t > tp {
                    let frac = ((ts - tp) / (t - tp)).clamp(0.0, 1.0);
                    vp + (v - vp) * frac
                } else {
                    v
                };
                let Some(bit) = self.expected.next() else {
                    self.done = true;
                    break;
                };
                if (v_s > self.threshold) != bit {
                    self.errors += 1;
                }
                self.bits += 1;
            }
        }
        self.last = Some((t, v));
    }

    /// Decisions made so far.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Erroneous decisions so far.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Bit-error ratio (`errors / bits`; 0 before the first decision).
    #[must_use]
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nrz::NrzConfig;
    use crate::prbs::Prbs;

    const UI: f64 = 100e-12;

    fn prbs7_wave(n: usize) -> (Vec<f64>, Vec<f64>) {
        let bits: Vec<bool> = Prbs::prbs7().take(n).collect();
        let w = NrzConfig::new(UI, 0.5).render(&bits);
        (w.times(), w.samples().to_vec())
    }

    #[test]
    fn resampler_matches_dense_grid_on_uniform_input() {
        let (times, vals) = prbs7_wave(32);
        let mut rs = StreamingResampler::new(times[1] - times[0]);
        let mut out = Vec::new();
        for (&t, &v) in times.iter().zip(&vals) {
            rs.push(t, v, |k, val| out.push((k, val)));
        }
        assert_eq!(out.len(), vals.len());
        for (i, &(k, val)) in out.iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(val.to_bits(), vals[i].to_bits(), "sample {i}");
        }
    }

    #[test]
    fn resampler_is_chunk_invariant_on_nonuniform_input() {
        // Irregular grid: quadratic signal, geometric-ish time steps.
        let times: Vec<f64> = (0..200).map(|i| (i as f64).powf(1.3) * 1e-12).collect();
        let vals: Vec<f64> = times.iter().map(|&t| (t * 3e10).sin()).collect();
        let run = |chunk: usize| {
            let mut rs = StreamingResampler::new(0.7e-12);
            let mut out = Vec::new();
            for c in times.chunks(chunk).zip(vals.chunks(chunk)) {
                for (&t, &v) in c.0.iter().zip(c.1) {
                    rs.push(t, v, |k, val| out.push((k, val.to_bits())));
                }
            }
            out
        };
        let whole = run(usize::MAX);
        for chunk in [1, 3, 17, 64] {
            assert_eq!(run(chunk), whole, "chunk {chunk} changed the resample");
        }
    }

    #[test]
    fn eye_accumulator_is_chunk_invariant() {
        let (times, vals) = prbs7_wave(254);
        let cfg = EyeAccumulatorConfig::new(UI, 1e-12, -0.3, 0.3);
        let run = |chunk: usize| {
            let mut acc = EyeAccumulator::new(cfg.clone());
            for c in times.chunks(chunk).zip(vals.chunks(chunk)) {
                for (&t, &v) in c.0.iter().zip(c.1) {
                    acc.push(t, v);
                }
            }
            acc.metrics()
        };
        let whole = run(usize::MAX);
        for chunk in [1, 7, 100, 1000] {
            let m = run(chunk);
            assert_eq!(m.height.to_bits(), whole.height.to_bits());
            assert_eq!(m.width.to_bits(), whole.width.to_bits());
            assert_eq!(m.rms_jitter.to_bits(), whole.rms_jitter.to_bits());
            assert_eq!(m.v_high.to_bits(), whole.v_high.to_bits());
        }
    }

    #[test]
    fn eye_accumulator_agrees_with_dense_fold_on_clean_eye() {
        // Same data through the dense EyeDiagram and the streaming
        // accumulator: the estimators differ (histograms vs exact order
        // statistics), so agreement is approximate but must be close on
        // a clean eye.
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let wave = NrzConfig::new(UI, 0.5).render(&bits);
        let dense = crate::eye::EyeDiagram::fold(&wave, UI).metrics();
        let mut acc = EyeAccumulator::new(EyeAccumulatorConfig::new(UI, wave.dt(), -0.3, 0.3));
        acc.feed(&wave.times(), wave.samples());
        let m = acc.metrics();
        assert!(
            (m.v_high - dense.v_high).abs() < 5e-3,
            "v_high {}",
            m.v_high
        );
        assert!((m.v_low - dense.v_low).abs() < 5e-3, "v_low {}", m.v_low);
        assert!(
            (m.height - dense.height).abs() < 0.02,
            "height {} vs dense {}",
            m.height,
            dense.height
        );
        assert!(m.opening > 0.9, "opening {}", m.opening);
        assert!(m.pp_jitter < 5e-12, "pp {}", m.pp_jitter);
        assert!(m.width > 95e-12, "width {}", m.width);
    }

    #[test]
    fn eye_accumulator_merge_matches_sequential() {
        // Two independently accumulated halves merged == both halves
        // fed into one accumulator with the seam crossing suppressed.
        // (Simulated segments restart at t=0, so split the *pattern*.)
        let (t1, v1) = prbs7_wave(64);
        let bits2: Vec<bool> = Prbs::prbs7().skip(64).take(64).collect();
        let w2 = NrzConfig::new(UI, 0.5).render(&bits2);
        let cfg = EyeAccumulatorConfig::new(UI, 1e-12, -0.3, 0.3);
        let mut a = EyeAccumulator::new(cfg.clone());
        a.feed(&t1, &v1);
        let mut b = EyeAccumulator::new(cfg.clone());
        b.feed(&w2.times(), w2.samples());
        let samples = a.samples() + b.samples();
        let crossings = a.crossings() + b.crossings();
        a.merge(&b);
        assert_eq!(a.samples(), samples);
        assert_eq!(a.crossings(), crossings);
        let m = a.metrics();
        assert!(m.opening > 0.85, "merged opening {}", m.opening);
    }

    #[test]
    fn eye_accumulator_memory_is_flat() {
        let cfg = EyeAccumulatorConfig::new(UI, 1e-12, -0.3, 0.3);
        let mut acc = EyeAccumulator::new(cfg);
        let base = acc.mem_bytes();
        let (times, vals) = prbs7_wave(254);
        for rep in 0..20 {
            // Shift each repetition in time so the stream is monotone.
            let off = rep as f64 * (times.last().unwrap() + 1e-12);
            for (&t, &v) in times.iter().zip(&vals) {
                acc.push(t + off, v);
            }
        }
        assert!(acc.samples() > 100_000);
        assert!(
            acc.mem_bytes() <= base + 4096,
            "memory grew: {} -> {}",
            base,
            acc.mem_bytes()
        );
    }

    #[test]
    fn stream_metrics_basics() {
        let mut m = StreamMetrics::new(0.0);
        for v in [-1.0, 1.0, -1.0, 1.0, 1.0] {
            m.push(v);
        }
        assert_eq!(m.count(), 5);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 1.0);
        assert!((m.mean() - 0.2).abs() < 1e-12);
        assert!((m.rms() - 1.0).abs() < 1e-12);
        assert_eq!(m.rising(), 2);
        assert_eq!(m.falling(), 1);
        assert_eq!(m.crossings(), 3);
    }

    #[test]
    fn stream_metrics_merge_adds() {
        let mut a = StreamMetrics::new(0.0);
        a.push(1.0);
        a.push(-1.0);
        let mut b = StreamMetrics::new(0.0);
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.falling(), 1);
    }

    #[test]
    fn ber_counter_clean_wave_has_zero_errors() {
        let bits: Vec<bool> = Prbs::prbs7().take(100).collect();
        let w = NrzConfig::new(UI, 0.5).render(&bits);
        // Bit k's center is at (k + 0.5)·UI.
        let mut ber = BerCounter::new(UI, 0.0, UI / 2.0, Prbs::prbs7());
        for (i, &v) in w.samples().iter().enumerate() {
            ber.push(w.time_at(i), v);
        }
        assert_eq!(ber.bits(), 100);
        assert_eq!(ber.errors(), 0);
        assert_eq!(ber.ber(), 0.0);
    }

    #[test]
    fn ber_counter_detects_inverted_data() {
        let bits: Vec<bool> = Prbs::prbs7().take(50).collect();
        let w = NrzConfig::new(UI, 0.5).render(&bits);
        // Compare against the complement: every decision is wrong.
        let mut ber = BerCounter::new(UI, 0.0, UI / 2.0, Prbs::prbs7().map(|b| !b));
        for (i, &v) in w.samples().iter().enumerate() {
            ber.push(w.time_at(i), v);
        }
        assert_eq!(ber.bits(), 50);
        assert_eq!(ber.errors(), 50);
        assert!((ber.ber() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ber_counter_is_chunk_invariant() {
        let bits: Vec<bool> = Prbs::prbs7().take(60).collect();
        let w = NrzConfig::new(UI, 0.5)
            .with_random_jitter(8e-12, 3)
            .render(&bits);
        let run = |chunk: usize| {
            let mut ber = BerCounter::new(UI, 0.0, UI / 2.0, Prbs::prbs7());
            for (i, &v) in w.samples().iter().enumerate() {
                let _ = chunk; // chunking is trivial for a push API; vary nothing
                ber.push(w.time_at(i), v);
            }
            (ber.bits(), ber.errors())
        };
        assert_eq!(run(1), run(64));
    }
}
