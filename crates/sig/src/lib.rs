//! Signal generation and measurement for high-speed link simulation.
//!
//! This crate is the "pattern generator and oscilloscope" of the
//! reproduction: everything the paper's figures measure with lab tooling
//! is computed here.
//!
//! * [`prbs`] — LFSR pseudo-random bit sequences (PRBS-7/15/23/31; the
//!   paper's eyes use PRBS-7, 2⁷−1 bits),
//! * [`nrz`] — rendering bit sequences to NRZ waveforms with finite edge
//!   rates and optional injected jitter,
//! * [`wave`] — uniformly sampled waveform container and arithmetic,
//! * [`eye`] — eye-diagram folding, eye height/width/jitter metrics and an
//!   ASCII eye renderer used by the figure-regeneration binaries,
//! * [`measure`] — time-domain measurements (swing, rise time, overshoot,
//!   duty-cycle distortion) and frequency-domain metrics
//!   ([`measure::Bode`]: −3 dB bandwidth, DC gain, peaking),
//! * [`jitter`] — TIE extraction, RJ/DJ decomposition, bathtub curves
//!   and eye width at a target BER,
//! * [`streaming`] — O(chunk)-memory accumulators (fold-into-eye,
//!   scalar metrics, BER counting) for million-bit runs that never
//!   materialize the full waveform,
//! * [`spectrum`] — Hann-windowed power-spectral-density estimation.
//!
//! # Example
//!
//! ```
//! use cml_sig::prbs::Prbs;
//! use cml_sig::nrz::NrzConfig;
//! use cml_sig::eye::EyeDiagram;
//!
//! let bits = Prbs::prbs7().take(127).collect::<Vec<bool>>();
//! let wave = NrzConfig::new(100e-12, 0.25).render(&bits); // 10 Gb/s, 250 mV
//! let eye = EyeDiagram::fold(&wave, 100e-12);
//! let m = eye.metrics();
//! assert!(m.height > 0.2, "clean eye should be nearly full swing");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eye;
pub mod jitter;
pub mod measure;
pub mod nrz;
pub mod prbs;
pub mod spectrum;
pub mod streaming;
pub mod wave;

pub use eye::{EyeDiagram, EyeMetrics};
pub use measure::Bode;
pub use prbs::Prbs;
pub use wave::UniformWave;
