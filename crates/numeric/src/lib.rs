//! Numerical kernels for the CML I/O interface reproduction.
//!
//! This crate is the mathematical substrate under the circuit simulator
//! (`cml-spice`), the channel model and the measurement tooling. It
//! provides, with no external dependencies:
//!
//! * [`Complex64`] — complex arithmetic used by AC (small-signal) analysis
//!   and the FFT,
//! * [`DenseMatrix`] / [`lu`] — dense real and complex LU factorization with
//!   partial pivoting, the linear-solver core of modified nodal analysis,
//! * [`sparse`] — a triplet-based sparse builder with CSR conversion for the
//!   larger transient systems,
//! * [`SparseLu`] — left-looking sparse LU with threshold pivoting and a
//!   replayable refactorization path for Newton loops on a fixed pattern,
//!   generic over [`Scalar`] (`f64` for DC/transient, [`Complex64`] for
//!   the AC `G + jωC` systems),
//! * [`lanes`] — structure-of-arrays `f64` lane packs ([`F64s`]) with
//!   per-lane pivot-death masks, letting the LU kernels above factor K
//!   same-pattern matrices in lockstep ([`LaneLu`],
//!   [`SparseLu::refactor_frozen_masked`]) for batched Monte-Carlo
//!   solves,
//! * [`fft`] — radix-2 complex FFT / inverse FFT plus real-signal helpers,
//!   used to synthesize channel impulse responses from loss profiles,
//! * [`interp`] — linear and monotone cubic (PCHIP) interpolation for
//!   waveform resampling,
//! * [`matching`] — maximum bipartite matching / structural rank of a
//!   sparse pattern, used by the netlist linter to predict MNA
//!   singularity before any factorization is attempted,
//! * [`stats`] — summary statistics and histogramming used by the eye
//!   diagram and jitter measurements.
//!
//! # Example
//!
//! Solving a small resistive-network nodal system `G·v = i`:
//!
//! ```
//! use cml_numeric::DenseMatrix;
//!
//! # fn main() -> Result<(), cml_numeric::NumericError> {
//! let mut g = DenseMatrix::zeros(2, 2);
//! g[(0, 0)] = 2.0; g[(0, 1)] = -1.0;
//! g[(1, 0)] = -1.0; g[(1, 1)] = 2.0;
//! let v = g.solve(&[1.0, 0.0])?;
//! assert!((v[0] - 2.0 / 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod dense;
mod error;
pub mod fft;
pub mod interp;
pub mod interval;
pub mod lanes;
pub mod matching;
mod scalar;
pub mod sparse;
pub mod sparse_lu;
pub mod stats;

pub use complex::Complex64;
pub use dense::{lu, ComplexMatrix, DenseMatrix, LaneLu, LuFactors};
pub use error::NumericError;
pub use interval::Interval;
pub use lanes::{F64s, F64x2, F64x4, F64x8};
pub use scalar::{LaneScalar, Scalar};
pub use sparse_lu::{FrozenLu, RefactorOutcome, SparseLu};

/// Relative comparison of two floats with a combined absolute/relative
/// tolerance, the convention used across the simulator's convergence checks.
///
/// Returns `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`.
///
/// ```
/// assert!(cml_numeric::approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
/// assert!(!cml_numeric::approx_eq(1.0, 1.1, 1e-9, 1e-3));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

/// Linearly spaced grid of `n` points covering `[start, stop]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// ```
/// let g = cml_numeric::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
#[must_use]
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (stop - start) / (n - 1) as f64;
    (0..n)
        .map(|i| {
            if i == n - 1 {
                stop
            } else {
                start + step * i as f64
            }
        })
        .collect()
}

/// Logarithmically spaced grid of `n` points covering `[start, stop]`
/// inclusive. Both endpoints must be strictly positive.
///
/// This is the frequency grid used by AC sweeps (e.g. 10 MHz → 30 GHz).
///
/// # Panics
///
/// Panics if `n < 2` or either endpoint is not strictly positive.
///
/// ```
/// let g = cml_numeric::logspace(1.0, 100.0, 3);
/// assert!((g[1] - 10.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && stop > 0.0,
        "logspace endpoints must be positive"
    );
    linspace(start.log10(), stop.log10(), n)
        .into_iter()
        .map(|e| 10f64.powf(e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_exact() {
        let g = linspace(-3.5, 7.25, 17);
        assert_eq!(g.len(), 17);
        assert_eq!(g[0], -3.5);
        assert_eq!(g[16], 7.25);
    }

    #[test]
    fn linspace_monotone() {
        let g = linspace(0.0, 1.0, 100);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn logspace_decades() {
        let g = logspace(1e6, 1e9, 4);
        assert!((g[1] - 1e7).abs() / 1e7 < 1e-12);
        assert!((g[2] - 1e8).abs() / 1e8 < 1e-12);
        assert_eq!(g[3], 1e9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn logspace_rejects_nonpositive() {
        let _ = logspace(0.0, 1.0, 4);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-10), 0.0, 1e-9));
        assert!(approx_eq(0.0, 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(0.0, 1e-6, 1e-9, 1e-9));
    }
}
