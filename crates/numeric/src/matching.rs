//! Maximum bipartite matching and structural (generic) rank of a sparse
//! pattern.
//!
//! The structural rank of a matrix is the maximum number of nonzero
//! positions no two of which share a row or a column — equivalently the
//! size of a maximum matching in the bipartite graph rows × columns with
//! an edge per nonzero position. It upper-bounds the numerical rank for
//! *every* assignment of values to the pattern, so a structurally
//! rank-deficient square system is singular no matter what the element
//! values are. The netlist linter uses this to predict MNA singularity
//! from the stamp sparsity pattern alone, before any Newton iteration.
//!
//! The implementation is Kuhn's augmenting-path algorithm, O(V·E) worst
//! case — more than fast enough for MNA systems (a few hundred unknowns,
//! a handful of entries per row), and fully deterministic.

/// Result of a maximum bipartite matching over an `n_rows × n_cols`
/// pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// For each column, the matched row (`None` if unmatched).
    pub col_to_row: Vec<Option<usize>>,
    /// For each row, the matched column (`None` if unmatched).
    pub row_to_col: Vec<Option<usize>>,
    /// Number of matched pairs (= structural rank of the pattern).
    pub size: usize,
}

impl Matching {
    /// Columns left unmatched — for a square MNA pattern these are the
    /// unknowns that cannot be independently determined.
    #[must_use]
    pub fn unmatched_cols(&self) -> Vec<usize> {
        self.col_to_row
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Rows left unmatched — equations that are structurally dependent
    /// on the others.
    #[must_use]
    pub fn unmatched_rows(&self) -> Vec<usize> {
        self.row_to_col
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Computes a maximum bipartite matching of the pattern given as
/// `(row, col)` positions (duplicates are tolerated and deduplicated).
///
/// # Panics
///
/// Panics if a position lies outside `n_rows × n_cols`.
#[must_use]
pub fn max_bipartite_matching(
    n_rows: usize,
    n_cols: usize,
    positions: &[(usize, usize)],
) -> Matching {
    // Adjacency: columns → rows. Matching from the (usually sparser)
    // column side keeps the augmenting search shallow for MNA patterns.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_cols];
    for &(r, c) in positions {
        assert!(
            r < n_rows && c < n_cols,
            "position ({r}, {c}) outside {n_rows}x{n_cols} pattern"
        );
        adj[c].push(r);
    }
    for rows in &mut adj {
        rows.sort_unstable();
        rows.dedup();
    }

    let mut col_to_row: Vec<Option<usize>> = vec![None; n_cols];
    let mut row_to_col: Vec<Option<usize>> = vec![None; n_rows];
    // Iterative DFS augmenting path from each free column. `visited`
    // carries a generation stamp so it is cleared in O(1) per column.
    let mut visited = vec![usize::MAX; n_rows];
    let mut size = 0;
    for start in 0..n_cols {
        if augment(
            start,
            &adj,
            &mut col_to_row,
            &mut row_to_col,
            &mut visited,
            start,
        ) {
            size += 1;
        }
    }
    Matching {
        col_to_row,
        row_to_col,
        size,
    }
}

/// One augmenting-path search from column `c`; `generation` stamps the
/// visited set. Recursive, with depth bounded by the number of rows.
fn augment(
    c: usize,
    adj: &[Vec<usize>],
    col_to_row: &mut [Option<usize>],
    row_to_col: &mut [Option<usize>],
    visited: &mut [usize],
    generation: usize,
) -> bool {
    for &r in &adj[c] {
        if visited[r] == generation {
            continue;
        }
        visited[r] = generation;
        let free = match row_to_col[r] {
            None => true,
            Some(other) => augment(other, adj, col_to_row, row_to_col, visited, generation),
        };
        if free {
            col_to_row[c] = Some(r);
            row_to_col[r] = Some(c);
            return true;
        }
    }
    false
}

/// Structural rank of an `n × n` pattern: the size of a maximum matching.
/// Equals `n` iff the pattern admits a nonzero diagonal under some row
/// permutation — the necessary condition for the matrix to be nonsingular
/// for *any* values on the pattern.
#[must_use]
pub fn structural_rank(n: usize, positions: &[(usize, usize)]) -> usize {
    max_bipartite_matching(n, n, positions).size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rank_diagonal() {
        let pos = [(0, 0), (1, 1), (2, 2)];
        assert_eq!(structural_rank(3, &pos), 3);
    }

    #[test]
    fn empty_pattern_has_rank_zero() {
        assert_eq!(structural_rank(4, &[]), 0);
    }

    #[test]
    fn empty_column_is_deficient() {
        // Column 2 has no entries: rank ≤ 2.
        let pos = [(0, 0), (1, 1), (2, 0), (2, 1)];
        let m = max_bipartite_matching(3, 3, &pos);
        assert_eq!(m.size, 2);
        assert_eq!(m.unmatched_cols(), vec![2]);
        assert_eq!(m.unmatched_rows().len(), 1);
    }

    #[test]
    fn augmenting_path_reassigns() {
        // Column 0 can reach rows {0, 1}, column 1 only row 0: a greedy
        // pass that gives row 0 to column 0 must re-route via augmentation.
        let pos = [(0, 0), (1, 0), (0, 1)];
        let m = max_bipartite_matching(2, 2, &pos);
        assert_eq!(m.size, 2);
        assert_eq!(m.col_to_row[0], Some(1));
        assert_eq!(m.col_to_row[1], Some(0));
    }

    #[test]
    fn duplicates_are_harmless() {
        let pos = [(0, 0), (0, 0), (1, 1), (1, 1)];
        assert_eq!(structural_rank(2, &pos), 2);
    }

    #[test]
    fn rectangular_matching() {
        // 2 rows, 3 cols: at most 2 matched.
        let pos = [(0, 0), (0, 1), (1, 1), (1, 2)];
        let m = max_bipartite_matching(2, 3, &pos);
        assert_eq!(m.size, 2);
        assert_eq!(m.unmatched_cols().len(), 1);
        assert!(m.unmatched_rows().is_empty());
    }

    #[test]
    fn structurally_full_but_numerically_singular_pattern() {
        // Two identical rows: structural rank is still 2 (the pattern
        // cannot see value-level cancellation) — documents the limit of
        // the prediction.
        let pos = [(0, 0), (0, 1), (1, 0), (1, 1)];
        assert_eq!(structural_rank(2, &pos), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_position_panics() {
        let _ = structural_rank(2, &[(2, 0)]);
    }
}
