//! Summary statistics and histograms.
//!
//! Eye-diagram metrics (height, width, RMS jitter) and Monte-Carlo offset
//! studies reduce sample clouds with these routines. They are deliberately
//! simple — no streaming/online variants are needed at this scale.

use crate::NumericError;

/// Arithmetic mean.
///
/// # Errors
///
/// [`NumericError::EmptyInput`] on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, NumericError> {
    if xs.is_empty() {
        return Err(NumericError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation (divide by `n`, not `n-1`).
///
/// The population convention matches how RMS jitter is quoted: the samples
/// *are* the full set of observed crossings, not a draw from a larger one.
///
/// # Errors
///
/// [`NumericError::EmptyInput`] on an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64, NumericError> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Ok(var.sqrt())
}

/// Minimum value.
///
/// # Errors
///
/// [`NumericError::EmptyInput`] on an empty slice.
pub fn min(xs: &[f64]) -> Result<f64, NumericError> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
        .ok_or(NumericError::EmptyInput)
}

/// Maximum value.
///
/// # Errors
///
/// [`NumericError::EmptyInput`] on an empty slice.
pub fn max(xs: &[f64]) -> Result<f64, NumericError> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
        .ok_or(NumericError::EmptyInput)
}

/// Peak-to-peak span, `max - min`.
///
/// # Errors
///
/// [`NumericError::EmptyInput`] on an empty slice.
pub fn peak_to_peak(xs: &[f64]) -> Result<f64, NumericError> {
    Ok(max(xs)? - min(xs)?)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// [`NumericError::EmptyInput`] on an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or the data contain NaN.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64, NumericError> {
    if xs.is_empty() {
        return Err(NumericError::EmptyInput);
    }
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Root-mean-square of a sample set.
///
/// # Errors
///
/// [`NumericError::EmptyInput`] on an empty slice.
pub fn rms(xs: &[f64]) -> Result<f64, NumericError> {
    if xs.is_empty() {
        return Err(NumericError::EmptyInput);
    }
    Ok((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
}

/// A fixed-bin histogram over a closed range.
///
/// Used to build the two amplitude lobes of an eye diagram (the "rails")
/// from which eye height is measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x > self.hi {
            self.overflow += 1;
        } else {
            let n = self.counts.len();
            let idx = (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize;
            self.counts[idx.min(n - 1)] += 1;
        }
    }

    /// Records every sample in a slice.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples above the range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Center of the most populated bin, or `None` if empty.
    #[must_use]
    pub fn mode(&self) -> Option<f64> {
        if self.total() == 0 {
            return None;
        }
        let (idx, _) = self.counts.iter().enumerate().max_by_key(|(_, &c)| c)?;
        Some(self.bin_center(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_set() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-15);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(matches!(mean(&[]), Err(NumericError::EmptyInput)));
        assert!(matches!(std_dev(&[]), Err(NumericError::EmptyInput)));
        assert!(matches!(min(&[]), Err(NumericError::EmptyInput)));
        assert!(matches!(
            percentile(&[], 50.0),
            Err(NumericError::EmptyInput)
        ));
        assert!(matches!(rms(&[]), Err(NumericError::EmptyInput)));
    }

    #[test]
    fn minmax_and_ptp() {
        let xs = [1.0, -3.0, 7.0, 2.0];
        assert_eq!(min(&xs).unwrap(), -3.0);
        assert_eq!(max(&xs).unwrap(), 7.0);
        assert_eq!(peak_to_peak(&xs).unwrap(), 10.0);
    }

    #[test]
    fn percentile_median_of_odd_set() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 50.0).unwrap(), 2.0);
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0).unwrap() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn rms_of_square_wave_is_amplitude() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        assert!((rms(&xs).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_all(&[-1.0, 0.5, 5.5, 9.99, 42.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn histogram_upper_edge_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(1.0);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_mode_finds_peak() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record_all(&[0.55, 0.52, 0.58, 0.1]);
        let m = h.mode().unwrap();
        assert!((m - 0.55).abs() < 0.06);
    }

    #[test]
    fn histogram_mode_none_when_empty() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.mode(), None);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
