//! Structure-of-arrays `f64` lane packs for lockstep multi-variant
//! solves.
//!
//! [`F64s<N>`] bundles `N` independent real problem instances into one
//! value: every arithmetic operator acts element-wise over a plain
//! `[f64; N]`, which LLVM auto-vectorizes into SIMD on every target the
//! workspace builds for (no `unsafe`, no intrinsics — the crate forbids
//! both). Running the LU kernels of [`crate::SparseLu`] /
//! [`crate::LaneLu`] over `F64s<N>` therefore factors `N` same-pattern
//! matrices in one pass, sharing all index bookkeeping, pivot searches
//! and loop control between the lanes.
//!
//! The [`Scalar`] impl makes the *shared-pivot* semantics explicit:
//! [`modulus`](Scalar::modulus) is the **minimum** absolute value across
//! lanes (with non-finite lanes mapped to zero), so a pivot candidate is
//! only as good as its worst variant and the generic NaN-aware guards
//! (`!(modulus() > tol)`) trip as soon as *any* lane goes numerically
//! dead. The [`LaneScalar`] impl refines that with per-lane masks so
//! masked kernels can quarantine the dead lane and keep the others
//! marching — see `SparseLu::refactor_frozen_masked` and
//! `LaneLu::refactor_masked`.

use crate::scalar::{LaneScalar, Scalar};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// `N` independent `f64` values marching in lockstep (element-wise
/// arithmetic; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64s<const N: usize>([f64; N]);

/// Two-lane pack (the narrowest vectorizable width).
pub type F64x2 = F64s<2>;
/// Four-lane pack (one AVX2 / NEON×2 register).
pub type F64x4 = F64s<4>;
/// Eight-lane pack (one AVX-512 register, or two AVX2 ops — the default
/// batch width; see `CML_BATCH_LANES`).
pub type F64x8 = F64s<8>;

impl<const N: usize> F64s<N> {
    /// Packs an array of lane values.
    #[inline]
    #[must_use]
    pub const fn new(lanes: [f64; N]) -> Self {
        F64s(lanes)
    }

    /// Unpacks the lane values.
    #[inline]
    #[must_use]
    pub const fn to_array(self) -> [f64; N] {
        self.0
    }

    /// Builds a pack by evaluating `f` per lane index.
    #[inline]
    #[must_use]
    pub fn from_fn(f: impl FnMut(usize) -> f64) -> Self {
        F64s(std::array::from_fn(f))
    }

    /// Element-wise clamp of every lane into `[lo, hi]`, each lane
    /// performing exactly the scalar `f64::clamp` (NaN propagates).
    #[inline]
    #[must_use]
    pub fn clamp(mut self, lo: f64, hi: f64) -> Self {
        for v in &mut self.0 {
            *v = v.clamp(lo, hi);
        }
        self
    }

    /// Element-wise natural logarithm (scalar `f64::ln` per lane).
    #[inline]
    #[must_use]
    pub fn ln(mut self) -> Self {
        for v in &mut self.0 {
            *v = v.ln();
        }
        self
    }

    /// Element-wise square root (scalar `f64::sqrt` per lane).
    #[inline]
    #[must_use]
    pub fn sqrt(mut self) -> Self {
        for v in &mut self.0 {
            *v = v.sqrt();
        }
        self
    }

    /// Element-wise cosine (scalar `f64::cos` per lane).
    #[inline]
    #[must_use]
    pub fn cos(mut self) -> Self {
        for v in &mut self.0 {
            *v = v.cos();
        }
        self
    }

    /// Element-wise absolute value.
    #[inline]
    #[must_use]
    pub fn abs(mut self) -> Self {
        for v in &mut self.0 {
            *v = v.abs();
        }
        self
    }
}

impl<const N: usize> Default for F64s<N> {
    #[inline]
    fn default() -> Self {
        F64s([0.0; N])
    }
}

impl<const N: usize> From<[f64; N]> for F64s<N> {
    #[inline]
    fn from(lanes: [f64; N]) -> Self {
        F64s(lanes)
    }
}

macro_rules! lanewise_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl<const N: usize> $trait for F64s<N> {
            type Output = Self;
            #[inline]
            fn $method(mut self, rhs: Self) -> Self {
                for i in 0..N {
                    self.0[i] $op rhs.0[i];
                }
                self
            }
        }

        impl<const N: usize> $assign_trait for F64s<N> {
            #[inline]
            fn $assign_method(&mut self, rhs: Self) {
                for i in 0..N {
                    self.0[i] $op rhs.0[i];
                }
            }
        }
    };
}

lanewise_binop!(Add, add, AddAssign, add_assign, +=);
lanewise_binop!(Sub, sub, SubAssign, sub_assign, -=);
lanewise_binop!(Mul, mul, MulAssign, mul_assign, *=);
lanewise_binop!(Div, div, DivAssign, div_assign, /=);

impl<const N: usize> Neg for F64s<N> {
    type Output = Self;
    #[inline]
    fn neg(mut self) -> Self {
        for v in &mut self.0 {
            *v = -*v;
        }
        self
    }
}

impl<const N: usize> Scalar for F64s<N> {
    const ZERO: Self = F64s([0.0; N]);
    const ONE: Self = F64s([1.0; N]);

    /// Worst-lane magnitude: `min_i |x_i|`, with non-finite lanes
    /// mapped to `0.0` so any NaN/∞ lane makes the value fail the
    /// kernel pivot guards (and lose every pivot contest) instead of
    /// being silently divided by.
    #[inline]
    fn modulus(self) -> f64 {
        let mut m = f64::INFINITY;
        for v in self.0 {
            let a = if v.is_finite() { v.abs() } else { 0.0 };
            if a < m {
                m = a;
            }
        }
        m
    }

    #[inline]
    fn finite(self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

impl<const N: usize> LaneScalar for F64s<N> {
    const LANES: usize = N;

    #[inline]
    fn splat(v: f64) -> Self {
        F64s([v; N])
    }

    #[inline]
    fn lane(self, i: usize) -> f64 {
        self.0[i]
    }

    #[inline]
    fn set_lane(&mut self, i: usize, v: f64) {
        self.0[i] = v;
    }

    #[inline]
    fn pivot_metric(self, live: u64) -> f64 {
        let mut m = f64::INFINITY;
        for (i, v) in self.0.iter().enumerate() {
            if live & (1 << i) == 0 {
                continue;
            }
            let a = if v.is_finite() { v.abs() } else { -1.0 };
            if a < m {
                m = a;
            }
        }
        m
    }

    #[inline]
    fn bad_mask(self, tol: f64) -> u64 {
        let mut mask = 0u64;
        for (i, v) in self.0.iter().enumerate() {
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !v.is_finite() || !(v.abs() > tol) {
                mask |= 1 << i;
            }
        }
        mask
    }

    #[inline]
    fn heal(mut self, mask: u64, fill: f64) -> Self {
        for (i, v) in self.0.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *v = fill;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_lanewise() {
        let a = F64x4::new([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::new([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).to_array(), [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).to_array(), [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).to_array(), [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((b / a).to_array(), [10.0, 10.0, 10.0, 10.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    /// Lane independence is the correctness foundation of the batch
    /// solver: garbage (NaN/∞) in one lane must never leak into others.
    #[test]
    fn lanes_never_mix() {
        let poisoned = F64x4::new([f64::NAN, 2.0, f64::INFINITY, 4.0]);
        let clean = F64x4::new([1.0, 10.0, 1.0, 10.0]);
        let sum = poisoned + clean;
        assert!(sum.lane(0).is_nan());
        assert_eq!(sum.lane(1), 12.0);
        assert!(sum.lane(2).is_infinite());
        assert_eq!(sum.lane(3), 14.0);
        let prod = poisoned * clean;
        assert_eq!(prod.lane(1), 20.0);
        assert_eq!(prod.lane(3), 40.0);
    }

    /// Each lane of a pack computes bit-for-bit what the scalar `f64`
    /// pipeline computes for that lane's inputs.
    #[test]
    fn lane_arithmetic_bit_identical_to_scalar() {
        let xs = [0.3, -1.75, 1e-12, 42.0];
        let ys = [7.1, 0.2, -3.0, 1e9];
        let packed = (F64x4::new(xs) * F64x4::new(ys) + F64x4::new(ys)) / F64x4::new(xs);
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            let scalar = (x * y + y) / x;
            assert_eq!(packed.lane(i).to_bits(), scalar.to_bits());
        }
        let clamped = F64x4::new(ys).clamp(-1.0, 2.0);
        for (i, &y) in ys.iter().enumerate() {
            assert_eq!(clamped.lane(i).to_bits(), y.clamp(-1.0, 2.0).to_bits());
        }
    }

    #[test]
    fn modulus_is_worst_lane() {
        assert_eq!(F64x4::new([3.0, -0.5, 2.0, 8.0]).modulus(), 0.5);
        // A non-finite lane zeroes the pivot quality.
        assert_eq!(F64x4::new([3.0, f64::NAN, 2.0, 8.0]).modulus(), 0.0);
        assert!(!F64x4::new([3.0, f64::NAN, 2.0, 8.0]).finite());
        assert!(F64x4::new([3.0, -0.5, 2.0, 8.0]).finite());
    }

    #[test]
    fn masked_pivot_helpers() {
        let v = F64x4::new([5.0, 1e-320, f64::NAN, -2.0]);
        // Lanes 1 (underflow) and 2 (NaN) are unusable pivots.
        assert_eq!(v.bad_mask(1e-300), 0b0110);
        // Metric over all lanes sees the NaN lane.
        assert_eq!(v.pivot_metric(0b1111), -1.0);
        // Metric over the healthy lanes only.
        assert_eq!(v.pivot_metric(0b1001), 2.0);
        assert_eq!(v.pivot_metric(0), f64::INFINITY);
        let healed = v.heal(0b0110, 1.0);
        assert_eq!(healed.to_array(), [5.0, 1.0, 1.0, -2.0]);
    }

    #[test]
    fn f64_is_one_lane_pack() {
        assert_eq!(<f64 as LaneScalar>::LANES, 1);
        assert_eq!(<f64 as LaneScalar>::LANE_MASK, 1);
        assert_eq!(f64::splat(3.5).lane(0), 3.5);
        assert_eq!(3.0f64.bad_mask(1e-300), 0);
        assert_eq!(0.0f64.bad_mask(1e-300), 1);
        assert_eq!(f64::NAN.heal(1, 7.0), 7.0);
        assert_eq!((-4.0f64).pivot_metric(1), 4.0);
    }

    #[test]
    fn splat_and_from_fn() {
        let s = F64x8::splat(2.5);
        assert!(s.to_array().iter().all(|&v| v == 2.5));
        let f = F64x8::from_fn(|i| i as f64);
        assert_eq!(f.lane(7), 7.0);
        let mut g = f;
        g.set_lane(3, -1.0);
        assert_eq!(g.lane(3), -1.0);
        assert_eq!(g.lane(2), 2.0);
    }
}
