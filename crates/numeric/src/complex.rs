use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// Used pervasively by the AC small-signal solver (complex MNA matrices) and
/// the FFT. The API mirrors the conventions of `num_complex::Complex64`
/// closely enough that code reads familiarly, but is implemented here to
/// keep the workspace dependency-free.
///
/// ```
/// use cml_numeric::Complex64;
///
/// let j = Complex64::I;
/// let z = (Complex64::new(1.0, 0.0) + j) * j;
/// assert!((z.re + 1.0).abs() < 1e-15 && (z.im - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    ///
    /// ```
    /// use cml_numeric::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness near overflow.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Complex64::abs`]).
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities if `z` is zero, matching IEEE float division.
    #[must_use]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[must_use]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[must_use]
    pub fn sqrt(self) -> Self {
        Complex64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Returns `true` if either component is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Magnitude expressed in decibels, `20·log10(|z|)`.
    ///
    /// This is the gain convention used throughout the paper's Bode plots.
    #[must_use]
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division by multiplying with the precomputed inverse — the `*` is
    // intentional, not a typo for `/`.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        self.scale(1.0 / rhs)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!((z - z), Complex64::ZERO);
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex64::new(1.7, -2.3);
        let b = Complex64::new(-0.4, 0.9);
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < EPS);
    }

    #[test]
    fn inverse_multiplies_to_one() {
        let z = Complex64::new(0.3, 7.0);
        assert!((z * z.inv() - Complex64::ONE).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::new(-2.0, 5.0);
        let back = Complex64::from_polar(z.abs(), z.arg());
        assert!((back - z).abs() < 1e-10);
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = (Complex64::I * std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < EPS && z.im.abs() < EPS);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (3.0, -4.0), (0.0, 2.0)] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            assert!((r * r - z).abs() < 1e-10, "sqrt failed for {z}");
        }
    }

    #[test]
    fn db_of_ten_is_twenty() {
        assert!((Complex64::from_real(10.0).db() - 20.0).abs() < EPS);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex64::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < EPS);
    }

    #[test]
    fn sum_folds() {
        let total: Complex64 = (0..4).map(|i| Complex64::new(i as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn nan_and_finite_flags() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::new(1.0, 2.0).is_nan());
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }
}
