//! Directed-rounding-safe interval arithmetic.
//!
//! The analyzer (`cml_spice::analyze`) proves facts of the form "the converged
//! DC operating point lies inside this box". For those proofs to survive
//! floating-point evaluation, every arithmetic operation must round *outward*:
//! lower bounds toward -inf, upper bounds toward +inf. Rust's default float
//! ops round to nearest, so after each operation we nudge the endpoints by one
//! ulp in the conservative direction (`next_down`/`next_up` implemented via
//! bit manipulation — no unstable std APIs, no platform rounding-mode games).
//!
//! The resulting intervals are at most a few ulps wider than the exact hull,
//! which is far below the widths the abstract interpretation itself produces,
//! and the containment guarantee is what the closed-loop soundness checks in
//! `cml_spice::analyze` rely on.

/// A closed interval `[lo, hi]` of f64 values.
///
/// Invariant: `lo <= hi` (or the interval is [`Interval::EMPTY`]). Endpoints
/// may be infinite; `[-inf, +inf]` is the "know nothing" top element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

/// Next representable f64 strictly above `x` (toward +inf).
#[inline]
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::MIN_POSITIVE * f64::EPSILON; // smallest positive subnormal
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// Next representable f64 strictly below `x` (toward -inf).
#[inline]
fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

// The inherent `add`/`sub`/`neg`/`mul`/`div` deliberately shadow the
// `std::ops` names: they take `self` by value, return outward-rounded
// results, and keep call sites explicit about interval (not float)
// arithmetic. Operator overloads would hide the rounding semantics.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The empty interval (used as the bottom element of intersection).
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The whole real line: the top element, "no information".
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Degenerate interval containing exactly `x`.
    #[inline]
    pub fn point(x: f64) -> Interval {
        Interval { lo: x, hi: x }
    }

    /// Interval from explicit bounds; swaps if given out of order.
    #[inline]
    pub fn new(a: f64, b: f64) -> Interval {
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// Symmetric interval `[-r, r]`.
    #[inline]
    pub fn symmetric(r: f64) -> Interval {
        let r = r.abs();
        Interval { lo: -r, hi: r }
    }

    /// Whether the interval contains no points (`lo > hi`).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// True when either endpoint is infinite (the bound carries no usable
    /// magnitude information in that direction).
    #[inline]
    pub fn is_unbounded(self) -> bool {
        self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY
    }

    /// Whether `x` lies inside the closed interval.
    #[inline]
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` lies entirely inside this interval.
    #[inline]
    pub fn contains_interval(self, other: Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Width `hi - lo` (0 for points, +inf for unbounded, negative never).
    #[inline]
    pub fn width(self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Midpoint; finite intervals only give finite results. For unbounded
    /// intervals returns 0.0 (the neutral Newton starting guess).
    #[inline]
    pub fn midpoint(self) -> f64 {
        if self.is_empty() || self.is_unbounded() {
            return 0.0;
        }
        let m = 0.5 * (self.lo + self.hi);
        if m.is_finite() {
            m
        } else {
            // lo + hi overflowed; halve first.
            0.5 * self.lo + 0.5 * self.hi
        }
    }

    /// Largest absolute value contained in the interval.
    #[inline]
    pub fn mag(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Outward-round both endpoints by one ulp.
    #[inline]
    fn widen(self) -> Interval {
        Interval {
            lo: next_down(self.lo),
            hi: next_up(self.hi),
        }
    }

    /// Convex hull of two intervals.
    #[inline]
    pub fn hull(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; may be [`Interval::EMPTY`].
    #[inline]
    pub fn intersect(self, other: Interval) -> Interval {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        Interval { lo, hi }
    }

    /// Outward-rounded sum.
    #[inline]
    pub fn add(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
        .widen()
    }

    /// Outward-rounded difference.
    #[inline]
    pub fn sub(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo - other.hi,
            hi: self.hi - other.lo,
        }
        .widen()
    }

    /// Negation (exact, no widening needed).
    #[inline]
    pub fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Outward-rounded product (corner evaluation).
    pub fn mul(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        // 0 * inf is NaN; treat as 0 (the exact product of the endpoint 0
        // with any finite member of the other interval is 0, and the other
        // corners cover the unbounded directions).
        let p = |a: f64, b: f64| {
            let v = a * b;
            if v.is_nan() {
                0.0
            } else {
                v
            }
        };
        let c = [
            p(self.lo, other.lo),
            p(self.lo, other.hi),
            p(self.hi, other.lo),
            p(self.hi, other.hi),
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval { lo, hi }.widen()
    }

    /// Outward-rounded scalar multiple.
    #[inline]
    pub fn scale(self, k: f64) -> Interval {
        self.mul(Interval::point(k))
    }

    /// Outward-rounded quotient. If the divisor contains zero the result is
    /// [`Interval::TOP`] (we make no attempt at multi-interval division; the
    /// analyzer treats "divide by something possibly zero" as "no bound").
    pub fn div(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if other.contains(0.0) {
            return Interval::TOP;
        }
        let q = |a: f64, b: f64| {
            let v = a / b;
            if v.is_nan() {
                0.0
            } else {
                v
            }
        };
        let c = [
            q(self.lo, other.lo),
            q(self.lo, other.hi),
            q(self.hi, other.lo),
            q(self.hi, other.hi),
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval { lo, hi }.widen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_contains() {
        let i = Interval::point(1.5);
        assert!(i.contains(1.5));
        assert!(!i.contains(1.5000001));
        assert_eq!(i.width(), 0.0);
        assert_eq!(i.midpoint(), 1.5);
    }

    #[test]
    fn add_is_outward() {
        let a = Interval::point(0.1);
        let b = Interval::point(0.2);
        let s = a.add(b);
        // 0.1 + 0.2 is inexact; the true real sum 0.3 must be inside.
        assert!(s.lo < 0.3 && 0.3 < s.hi || s.contains(0.3));
        assert!(s.contains(0.1 + 0.2));
        assert!(s.width() > 0.0);
    }

    #[test]
    fn mul_corners() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-1.0, 4.0);
        let m = a.mul(b);
        assert!(m.contains(-8.0)); // -2 * 4
        assert!(m.contains(12.0)); // 3 * 4
        assert!(m.contains(2.0)); // -2 * -1
        assert!(m.lo <= -8.0 && m.hi >= 12.0);
    }

    #[test]
    fn div_by_zero_crossing_is_top() {
        let a = Interval::point(1.0);
        let b = Interval::new(-1.0, 1.0);
        assert_eq!(a.div(b), Interval::TOP);
    }

    #[test]
    fn div_positive() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(2.0, 4.0);
        let d = a.div(b);
        assert!(d.contains(0.25));
        assert!(d.contains(1.0));
        assert!(d.lo <= 0.25 && d.hi >= 1.0);
    }

    #[test]
    fn intersect_and_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        let i = a.intersect(b);
        assert_eq!(i, Interval::new(1.0, 2.0));
        let h = a.hull(b);
        assert_eq!(h, Interval::new(0.0, 3.0));
        let disjoint = Interval::new(5.0, 6.0);
        assert!(a.intersect(disjoint).is_empty());
    }

    #[test]
    fn next_up_down_monotone() {
        for &x in &[0.0, 1.0, -1.0, 1e-300, -1e300, 1.8] {
            assert!(next_up(x) > x, "next_up({x})");
            assert!(next_down(x) < x, "next_down({x})");
        }
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn scale_and_neg() {
        let a = Interval::new(1.0, 2.0);
        let s = a.scale(-3.0);
        assert!(s.contains(-6.0) && s.contains(-3.0));
        assert_eq!(a.neg(), Interval::new(-2.0, -1.0));
    }

    #[test]
    fn unbounded_midpoint_is_zero() {
        assert_eq!(Interval::TOP.midpoint(), 0.0);
        assert!(Interval::TOP.is_unbounded());
        assert!(Interval::TOP.contains(1e308));
    }

    #[test]
    fn empty_behaviour() {
        let e = Interval::EMPTY;
        assert!(e.is_empty());
        assert!(!e.contains(0.0));
        assert_eq!(e.hull(Interval::point(1.0)), Interval::point(1.0));
        assert!(e.add(Interval::point(1.0)).is_empty());
    }
}
