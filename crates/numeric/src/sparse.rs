//! Sparse matrix support for larger MNA systems.
//!
//! The transistor-level netlists in this project stay small enough for the
//! dense solver, but Monte-Carlo sweeps and multi-lane link studies assemble
//! systems where a sparse representation pays off. The design is the classic
//! two-phase one used by circuit simulators: accumulate duplicate-tolerant
//! [`Triplet`] entries during stamping, then compress once to CSR for
//! numerical work (or hand off to the dense solver below a size threshold).

use crate::{DenseMatrix, NumericError};

/// A single `(row, col, value)` contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value to accumulate at `(row, col)`.
    pub val: f64,
}

/// A sparse matrix builder that accepts repeated stamps at the same
/// position, matching how MNA element stamping naturally works.
///
/// ```
/// use cml_numeric::sparse::TripletMatrix;
///
/// let mut m = TripletMatrix::new(2, 2);
/// m.add(0, 0, 1.0);
/// m.add(0, 0, 2.0); // duplicates accumulate
/// let csr = m.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<Triplet>,
}

impl TripletMatrix {
    /// Creates an empty builder of the given shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-compression) entries.
    #[must_use]
    pub fn nnz_raw(&self) -> usize {
        self.entries.len()
    }

    /// Stamps `val` at `(row, col)`. Duplicates are accumulated at
    /// compression time.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.rows && col < self.cols, "stamp out of bounds");
        self.entries.push(Triplet { row, col, val });
    }

    /// Discards accumulated entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Compresses to CSR, summing duplicates and dropping explicit zeros.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|a| (a.row, a.col));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut vals: Vec<f64> = Vec::with_capacity(sorted.len());

        let mut it = sorted.into_iter().peekable();
        while let Some(first) = it.next() {
            let mut acc = first.val;
            while let Some(nxt) = it.peek() {
                if nxt.row == first.row && nxt.col == first.col {
                    acc += nxt.val;
                    it.next();
                } else {
                    break;
                }
            }
            if acc != 0.0 {
                row_ptr[first.row + 1] += 1;
                col_idx.push(first.col);
                vals.push(acc);
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Materializes as a dense matrix (used below the sparse threshold).
    #[must_use]
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for t in &self.entries {
            m[(t.row, t.col)] += t.val;
        }
        m
    }
}

impl Extend<Triplet> for TripletMatrix {
    fn extend<I: IntoIterator<Item = Triplet>>(&mut self, iter: I) {
        for t in iter {
            self.add(t.row, t.col, t.val);
        }
    }
}

/// Compressed-sparse-row matrix produced by [`TripletMatrix::to_csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Value at `(row, col)`; zero if not stored.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(i) => self.vals[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("{}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
        Ok(y)
    }

    /// Solves `A·x = b`.
    ///
    /// For the problem sizes in this project a dense factorization of the
    /// compressed matrix is both simpler and faster than symbolic sparse LU;
    /// the CSR form still pays for itself in assembly and mat-vec products.
    ///
    /// # Errors
    ///
    /// Propagates [`NumericError::SingularMatrix`] /
    /// [`NumericError::DimensionMismatch`] from the dense solver.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                dense[(r, self.col_idx[k])] = self.vals[k];
            }
        }
        dense.solve(b)
    }

    /// Iterates over stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.row_ptr[r]..self.row_ptr[r + 1]).map(move |k| (r, self.col_idx[k], self.vals[k]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let mut m = TripletMatrix::new(3, 3);
        m.add(1, 2, 1.5);
        m.add(1, 2, 2.5);
        m.add(0, 0, 1.0);
        let csr = m.to_csr();
        assert_eq!(csr.get(1, 2), 4.0);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(2, 2), 0.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn explicit_zero_sum_dropped() {
        let mut m = TripletMatrix::new(2, 2);
        m.add(0, 1, 3.0);
        m.add(0, 1, -3.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn csr_matvec_matches_dense() {
        let mut m = TripletMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 2.0),
            (0, 2, -1.0),
            (1, 1, 3.0),
            (2, 0, 1.0),
            (2, 2, 4.0),
        ] {
            m.add(r, c, v);
        }
        let x = [1.0, 2.0, 3.0];
        let dense = m.to_dense().mul_vec(&x).unwrap();
        let sparse = m.to_csr().mul_vec(&x).unwrap();
        assert_eq!(dense, sparse);
    }

    #[test]
    fn csr_solve_matches_dense_solve() {
        let mut m = TripletMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 4.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 4.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ] {
            m.add(r, c, v);
        }
        let b = [1.0, 2.0, 3.0];
        let xd = m.to_dense().solve(&b).unwrap();
        let xs = m.to_csr().solve(&b).unwrap();
        for (a, b) in xd.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_stamp_panics() {
        let mut m = TripletMatrix::new(2, 2);
        m.add(2, 0, 1.0);
    }

    #[test]
    fn iter_visits_all_nonzeros_in_row_order() {
        let mut m = TripletMatrix::new(2, 3);
        m.add(1, 0, 5.0);
        m.add(0, 2, 7.0);
        let csr = m.to_csr();
        let got: Vec<_> = csr.iter().collect();
        assert_eq!(got, vec![(0, 2, 7.0), (1, 0, 5.0)]);
    }

    #[test]
    fn extend_accepts_triplets() {
        let mut m = TripletMatrix::new(2, 2);
        m.extend([
            Triplet {
                row: 0,
                col: 0,
                val: 1.0,
            },
            Triplet {
                row: 1,
                col: 1,
                val: 2.0,
            },
        ]);
        assert_eq!(m.nnz_raw(), 2);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut m = TripletMatrix::new(4, 4);
        m.add(0, 0, 1.0);
        m.clear();
        assert_eq!(m.nnz_raw(), 0);
        assert_eq!(m.rows(), 4);
    }
}
