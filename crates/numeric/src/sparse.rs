//! Sparse matrix support for larger MNA systems.
//!
//! The transistor-level netlists in this project stay small enough for the
//! dense solver, but Monte-Carlo sweeps and multi-lane link studies assemble
//! systems where a sparse representation pays off. The design is the classic
//! two-phase one used by circuit simulators: accumulate duplicate-tolerant
//! [`Triplet`] entries during stamping, then compress once to CSR for
//! numerical work (or hand off to the dense solver below a size threshold).

use crate::scalar::Scalar;
use crate::{DenseMatrix, NumericError};

/// A single `(row, col, value)` contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value to accumulate at `(row, col)`.
    pub val: f64,
}

/// A sparse matrix builder that accepts repeated stamps at the same
/// position, matching how MNA element stamping naturally works.
///
/// ```
/// use cml_numeric::sparse::TripletMatrix;
///
/// let mut m = TripletMatrix::new(2, 2);
/// m.add(0, 0, 1.0);
/// m.add(0, 0, 2.0); // duplicates accumulate
/// let csr = m.to_csr().unwrap();
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<Triplet>,
}

impl TripletMatrix {
    /// Creates an empty builder of the given shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-compression) entries.
    #[must_use]
    pub fn nnz_raw(&self) -> usize {
        self.entries.len()
    }

    /// Stamps `val` at `(row, col)`. Duplicates are accumulated at
    /// compression time.
    ///
    /// Out-of-bounds positions are accepted here and rejected with
    /// [`NumericError::IndexOutOfBounds`] when the builder is compressed
    /// ([`to_csr`](Self::to_csr)) or materialized
    /// ([`to_dense`](Self::to_dense)), so a hot stamping loop carries no
    /// per-entry branch that can panic.
    pub fn add(&mut self, row: usize, col: usize, val: f64) {
        self.entries.push(Triplet { row, col, val });
    }

    /// Discards accumulated entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Returns the first out-of-bounds entry, if any.
    fn check_bounds(&self) -> Result<(), NumericError> {
        for t in &self.entries {
            if t.row >= self.rows || t.col >= self.cols {
                return Err(NumericError::IndexOutOfBounds {
                    row: t.row,
                    col: t.col,
                    rows: self.rows,
                    cols: self.cols,
                });
            }
        }
        Ok(())
    }

    /// Compresses to CSR, summing duplicates and dropping entries whose
    /// accumulated value is exactly zero.
    ///
    /// # Errors
    ///
    /// [`NumericError::IndexOutOfBounds`] if any stamped entry lies
    /// outside the matrix shape.
    pub fn to_csr(&self) -> Result<CsrMatrix, NumericError> {
        self.check_bounds()?;
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|a| (a.row, a.col));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut vals: Vec<f64> = Vec::with_capacity(sorted.len());

        let mut it = sorted.into_iter().peekable();
        while let Some(first) = it.next() {
            let mut acc = first.val;
            while let Some(nxt) = it.peek() {
                if nxt.row == first.row && nxt.col == first.col {
                    acc += nxt.val;
                    it.next();
                } else {
                    break;
                }
            }
            if acc != 0.0 {
                row_ptr[first.row + 1] += 1;
                col_idx.push(first.col);
                vals.push(acc);
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Materializes as a dense matrix (used below the sparse threshold).
    ///
    /// # Errors
    ///
    /// [`NumericError::IndexOutOfBounds`] if any stamped entry lies
    /// outside the matrix shape.
    pub fn to_dense(&self) -> Result<DenseMatrix, NumericError> {
        self.check_bounds()?;
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for t in &self.entries {
            m[(t.row, t.col)] += t.val;
        }
        Ok(m)
    }
}

impl Extend<Triplet> for TripletMatrix {
    fn extend<I: IntoIterator<Item = Triplet>>(&mut self, iter: I) {
        for t in iter {
            self.add(t.row, t.col, t.val);
        }
    }
}

/// Compressed-sparse-row matrix produced by [`TripletMatrix::to_csr`]
/// (real values) or built directly from a pattern over any LU-capable
/// scalar (`T = f64` for DC/transient Jacobians, `T = Complex64` for the
/// AC `G + jωC` systems).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T = f64> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix with the given nonzero *pattern* and all values
    /// zero. Duplicate positions collapse to a single slot.
    ///
    /// This is the entry point for stamp-pointer caching: the circuit
    /// engine records every position an element ever writes, builds the
    /// pattern once, and then re-stamps values into the reserved slots
    /// (found via [`find`](Self::find)) on every Newton iteration or
    /// AC frequency point.
    ///
    /// # Errors
    ///
    /// [`NumericError::IndexOutOfBounds`] if any position lies outside
    /// `rows × cols`.
    pub fn from_pattern(
        rows: usize,
        cols: usize,
        positions: &[(usize, usize)],
    ) -> Result<Self, NumericError> {
        for &(r, c) in positions {
            if r >= rows || c >= cols {
                return Err(NumericError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        let mut sorted: Vec<(usize, usize)> = positions.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        for &(r, c) in &sorted {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let nnz = col_idx.len();
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals: vec![T::ZERO; nnz],
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Value at `(row, col)`; zero if not stored.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> T {
        match self.find(row, col) {
            Some(slot) => self.vals[slot],
            None => T::ZERO,
        }
    }

    /// Flat index of the stored slot at `(row, col)`, if present.
    ///
    /// The returned index addresses [`vals`](Self::vals) /
    /// [`vals_mut`](Self::vals_mut) and stays valid for the lifetime of
    /// the pattern (values may change, the structure may not).
    #[must_use]
    pub fn find(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.rows {
            return None;
        }
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .binary_search(&col)
            .ok()
            .map(|i| lo + i)
    }

    /// Row-pointer array (`rows + 1` entries).
    #[must_use]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index of each stored entry, row-major, sorted within rows.
    #[must_use]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, parallel to [`col_idx`](Self::col_idx).
    #[must_use]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Mutable stored values; the sparsity pattern itself is immutable.
    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Resets every stored value to zero, keeping the pattern.
    pub fn clear_vals(&mut self) {
        self.vals.fill(T::ZERO);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[T]) -> Result<Vec<T>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("{}", x.len()),
            });
        }
        let mut y = vec![T::ZERO; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
        Ok(y)
    }

    /// Iterates over stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.row_ptr[r]..self.row_ptr[r + 1]).map(move |k| (r, self.col_idx[k], self.vals[k]))
        })
    }
}

impl CsrMatrix<f64> {
    /// Solves `A·x = b`.
    ///
    /// For the problem sizes in this project a dense factorization of the
    /// compressed matrix is both simpler and faster than symbolic sparse LU;
    /// the CSR form still pays for itself in assembly and mat-vec products.
    ///
    /// # Errors
    ///
    /// Propagates [`NumericError::SingularMatrix`] /
    /// [`NumericError::DimensionMismatch`] from the dense solver.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                dense[(r, self.col_idx[k])] = self.vals[k];
            }
        }
        dense.solve(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let mut m = TripletMatrix::new(3, 3);
        m.add(1, 2, 1.5);
        m.add(1, 2, 2.5);
        m.add(0, 0, 1.0);
        let csr = m.to_csr().unwrap();
        assert_eq!(csr.get(1, 2), 4.0);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(2, 2), 0.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn explicit_zero_sum_dropped() {
        let mut m = TripletMatrix::new(2, 2);
        m.add(0, 1, 3.0);
        m.add(0, 1, -3.0);
        let csr = m.to_csr().unwrap();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn csr_matvec_matches_dense() {
        let mut m = TripletMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 2.0),
            (0, 2, -1.0),
            (1, 1, 3.0),
            (2, 0, 1.0),
            (2, 2, 4.0),
        ] {
            m.add(r, c, v);
        }
        let x = [1.0, 2.0, 3.0];
        let dense = m.to_dense().unwrap().mul_vec(&x).unwrap();
        let sparse = m.to_csr().unwrap().mul_vec(&x).unwrap();
        assert_eq!(dense, sparse);
    }

    #[test]
    fn csr_solve_matches_dense_solve() {
        let mut m = TripletMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 4.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 4.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ] {
            m.add(r, c, v);
        }
        let b = [1.0, 2.0, 3.0];
        let xd = m.to_dense().unwrap().solve(&b).unwrap();
        let xs = m.to_csr().unwrap().solve(&b).unwrap();
        for (a, b) in xd.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_bounds_stamp_rejected() {
        let mut m = TripletMatrix::new(2, 2);
        m.add(2, 0, 1.0);
        let err = m.to_csr().unwrap_err();
        assert_eq!(
            err,
            NumericError::IndexOutOfBounds {
                row: 2,
                col: 0,
                rows: 2,
                cols: 2,
            }
        );
        assert!(m.to_dense().is_err());
    }

    #[test]
    fn from_pattern_dedups_and_finds_slots() {
        let csr = CsrMatrix::from_pattern(3, 3, &[(2, 1), (0, 0), (2, 1), (1, 2), (2, 2)]).unwrap();
        assert_eq!(csr.nnz(), 4);
        assert!(csr.vals().iter().all(|&v| v == 0.0));
        let slot = csr.find(2, 1).expect("stored");
        assert_eq!(csr.find(0, 1), None);
        let mut csr = csr;
        csr.vals_mut()[slot] = 7.5;
        assert_eq!(csr.get(2, 1), 7.5);
        csr.clear_vals();
        assert_eq!(csr.get(2, 1), 0.0);
        assert_eq!(csr.nnz(), 4, "clearing values keeps the pattern");
    }

    #[test]
    fn from_pattern_rejects_out_of_bounds() {
        let err = CsrMatrix::<f64>::from_pattern(2, 2, &[(0, 5)]).unwrap_err();
        assert!(matches!(err, NumericError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn iter_visits_all_nonzeros_in_row_order() {
        let mut m = TripletMatrix::new(2, 3);
        m.add(1, 0, 5.0);
        m.add(0, 2, 7.0);
        let csr = m.to_csr().unwrap();
        let got: Vec<_> = csr.iter().collect();
        assert_eq!(got, vec![(0, 2, 7.0), (1, 0, 5.0)]);
    }

    #[test]
    fn extend_accepts_triplets() {
        let mut m = TripletMatrix::new(2, 2);
        m.extend([
            Triplet {
                row: 0,
                col: 0,
                val: 1.0,
            },
            Triplet {
                row: 1,
                col: 1,
                val: 2.0,
            },
        ]);
        assert_eq!(m.nnz_raw(), 2);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut m = TripletMatrix::new(4, 4);
        m.add(0, 0, 1.0);
        m.clear();
        assert_eq!(m.nnz_raw(), 0);
        assert_eq!(m.rows(), 4);
    }
}
