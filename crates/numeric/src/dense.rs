//! Dense real and complex matrices with LU factorization.
//!
//! Modified nodal analysis of the circuits in this project produces systems
//! of at most a few hundred unknowns, where a dense LU with partial pivoting
//! outperforms sparse machinery and is far easier to make robust. The
//! factorization is exposed separately from the solve ([`LuFactors`]) because
//! transient analysis re-solves against the same Jacobian structure many
//! times per timestep.

use crate::scalar::LaneScalar;
use crate::{Complex64, NumericError};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Pivot magnitudes below this are treated as singular.
const PIVOT_TOL: f64 = 1e-300;

/// A dense row-major matrix of `f64`.
///
/// ```
/// use cml_numeric::DenseMatrix;
/// let m = DenseMatrix::identity(3);
/// assert_eq!(m[(1, 1)], 1.0);
/// assert_eq!(m[(0, 1)], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self, NumericError> {
        if data.len() != rows * cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                got: format!("{}", data.len()),
            });
        }
        Ok(DenseMatrix {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Copies `other`'s shape and entries into `self`, reusing the
    /// existing allocation when the sizes match (unlike `clone_from`,
    /// which may reallocate through the derived `Vec` path).
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        if self.data.len() == other.data.len() {
            self.data.copy_from_slice(&other.data);
        } else {
            self.data.clear();
            self.data.extend_from_slice(&other.data);
        }
    }

    /// Row-major flat view of the entries (`data[r * cols + c]`), for
    /// bulk readers like the batch solver's lane packer that would
    /// otherwise pay a bounds check per element through `Index`.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Adds `v` to entry `(r, c)` — the "stamping" primitive used by MNA.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self[(r, c)] += v;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("{}", x.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect())
    }

    /// Factorizes the matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] when no pivot can be found,
    /// and [`NumericError::DimensionMismatch`] for non-square input.
    pub fn lu(&self) -> Result<LuFactors, NumericError> {
        lu(self)
    }

    /// Solves `A·x = b` via LU factorization.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`DenseMatrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        self.lu()?.solve(b)
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factorization (with row pivoting) of a square real matrix.
///
/// Produced by [`lu`] / [`DenseMatrix::lu`]; reusable across multiple
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Vec<f64>,
    /// Row permutation applied during elimination.
    perm: Vec<usize>,
    /// Sign of the permutation, used by [`LuFactors::det`].
    perm_sign: f64,
}

/// Factorizes a square [`DenseMatrix`] with partial pivoting.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] for non-square matrices and
/// [`NumericError::SingularMatrix`] when elimination encounters a column
/// whose best pivot is below threshold.
pub fn lu(a: &DenseMatrix) -> Result<LuFactors, NumericError> {
    let mut f = LuFactors::default();
    f.refactor(a)?;
    Ok(f)
}

impl Default for LuFactors {
    /// Empty factors (dimension 0); a reusable workspace slot to be
    /// filled by [`LuFactors::refactor`].
    fn default() -> Self {
        LuFactors {
            n: 0,
            lu: Vec::new(),
            perm: Vec::new(),
            perm_sign: 1.0,
        }
    }
}

/// Eliminates `m` (row-major, `n × n`) in place with partial pivoting,
/// recording the row permutation in `perm`. Returns the permutation sign.
fn factor_in_place(m: &mut [f64], perm: &mut [usize], n: usize) -> Result<f64, NumericError> {
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }
    let mut perm_sign = 1.0;
    for k in 0..n {
        // Partial pivoting: pick the largest magnitude in column k at/below row k.
        let mut piv_row = k;
        let mut piv_val = m[k * n + k].abs();
        for r in (k + 1)..n {
            let v = m[r * n + k].abs();
            if v > piv_val {
                piv_val = v;
                piv_row = r;
            }
        }
        // `!(x > tol)` (rather than `x <= tol`) deliberately treats NaN
        // pivots as singular.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(piv_val > PIVOT_TOL) || !piv_val.is_finite() {
            return Err(NumericError::SingularMatrix {
                column: k,
                pivot: piv_val,
            });
        }
        if piv_row != k {
            for c in 0..n {
                m.swap(k * n + c, piv_row * n + c);
            }
            perm.swap(k, piv_row);
            perm_sign = -perm_sign;
        }
        let pivot = m[k * n + k];
        for r in (k + 1)..n {
            let factor = m[r * n + k] / pivot;
            m[r * n + k] = factor;
            if factor != 0.0 {
                for c in (k + 1)..n {
                    m[r * n + c] -= factor * m[k * n + c];
                }
            }
        }
    }
    Ok(perm_sign)
}

impl LuFactors {
    /// Dimension of the factored system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Re-factorizes `a` into this object, reusing the existing `lu` and
    /// `perm` allocations. The matrix dimension may change between calls.
    ///
    /// This is the hot path for transient analysis, where the Jacobian is
    /// re-factorized at every Newton iteration of every timestep: after
    /// the first factorization no further heap allocation occurs.
    ///
    /// # Errors
    ///
    /// Same as [`lu`]. On error the factors are left in an unspecified
    /// state and must be refilled by a successful `refactor` before use.
    pub fn refactor(&mut self, a: &DenseMatrix) -> Result<(), NumericError> {
        if a.rows != a.cols {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows, a.cols),
            });
        }
        let n = a.rows;
        self.n = n;
        self.lu.clear();
        self.lu.extend_from_slice(&a.data);
        self.perm.resize(n, 0);
        self.perm_sign = factor_in_place(&mut self.lu, &mut self.perm, n)?;
        Ok(())
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {}", self.n),
                got: format!("{}", b.len()),
            });
        }
        let n = self.n;
        // Apply permutation, then forward substitution with unit-lower L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let row = &self.lu[r * n..r * n + r];
            let acc: f64 = row.iter().zip(&x).map(|(l, v)| l * v).sum();
            x[r] -= acc;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let row = &self.lu[r * n + r + 1..(r + 1) * n];
            let acc: f64 = row.iter().zip(&x[r + 1..]).map(|(u, v)| u * v).sum();
            x[r] = (x[r] - acc) / self.lu[r * n + r];
        }
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-provided buffer, allocating nothing
    /// (beyond growing `x` to length `dim()` on first use).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {}", self.n),
                got: format!("{}", b.len()),
            });
        }
        let n = self.n;
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for r in 1..n {
            let row = &self.lu[r * n..r * n + r];
            let acc: f64 = row.iter().zip(x.iter()).map(|(l, v)| l * v).sum();
            x[r] -= acc;
        }
        for r in (0..n).rev() {
            let row = &self.lu[r * n + r + 1..(r + 1) * n];
            let acc: f64 = row.iter().zip(&x[r + 1..]).map(|(u, v)| u * v).sum();
            x[r] = (x[r] - acc) / self.lu[r * n + r];
        }
        Ok(())
    }

    /// Determinant of the factored matrix (product of pivots × permutation sign).
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for k in 0..self.n {
            d *= self.lu[k * self.n + k];
        }
        d
    }
}

/// Dense LU over a lane-packed scalar: factors `T::LANES` same-shape
/// real systems in one elimination pass with a **shared pivot order**.
///
/// Pivot rows are chosen to maximize the worst live lane's magnitude
/// ([`LaneScalar::pivot_metric`]), so one row permutation serves every
/// lane and all index bookkeeping — pivot search, row swaps, loop
/// control — is paid once per batch instead of once per variant, while
/// the arithmetic itself runs element-wise over the lanes (and
/// auto-vectorizes). A lane whose best shared pivot is numerically dead
/// is quarantined: its pivot is overwritten with `1.0` (lane-wise ops
/// keep the resulting garbage confined to that lane) and the lane is
/// reported in the mask returned by
/// [`refactor_masked`](Self::refactor_masked) so the caller can re-solve
/// it scalar. This is the hot kernel of the batched Monte-Carlo solver:
/// mismatch-perturbed MNA Jacobians share their shape and, for small
/// perturbations, their natural pivot order, so the shared-pivot
/// restriction costs nothing in practice.
#[derive(Debug, Clone)]
pub struct LaneLu<T: LaneScalar> {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (upper incl.
    /// diagonal), lane-packed row-major.
    lu: Vec<T>,
    /// Shared row permutation applied during elimination.
    perm: Vec<usize>,
}

impl<T: LaneScalar> Default for LaneLu<T> {
    /// Empty factors (dimension 0); a reusable workspace slot to be
    /// filled by [`LaneLu::refactor_masked`].
    fn default() -> Self {
        LaneLu {
            n: 0,
            lu: Vec::new(),
            perm: Vec::new(),
        }
    }
}

impl<T: LaneScalar> LaneLu<T> {
    /// Dimension of the factored system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Factorizes the lane-packed row-major `n × n` matrix `a`, reusing
    /// the existing allocations (the hot path allocates nothing after
    /// the first call at a given dimension).
    ///
    /// `live` selects the lanes whose numerical health matters; lanes
    /// outside it may hold stale garbage and are factored blind (their
    /// dead pivots healed, their outcome unreported). Returns the subset
    /// of `live` that went numerically dead during elimination — those
    /// lanes' solutions are garbage and must be re-solved scalar; the
    /// remaining lanes' factors are unaffected by the casualties.
    ///
    /// # Errors
    ///
    /// - [`NumericError::DimensionMismatch`] if `a.len() != n * n`.
    /// - [`NumericError::SingularMatrix`] only when every lane in
    ///   `live` has died (there is nothing left to batch-solve).
    pub fn refactor_masked(&mut self, a: &[T], n: usize, live: u64) -> Result<u64, NumericError> {
        if a.len() != n * n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{n}x{n} lane-packed matrix ({} values)", n * n),
                got: format!("{} values", a.len()),
            });
        }
        self.n = n;
        self.lu.clear();
        self.lu.extend_from_slice(a);
        self.perm.resize(n, 0);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        let live = live & T::LANE_MASK;
        let mut dead: u64 = !live & T::LANE_MASK;
        let m = &mut self.lu;
        for k in 0..n {
            // Shared pivot: the row whose *worst still-live lane* is
            // largest. If that row is still unusable for some live
            // lanes, no other row serves them better under a shared
            // permutation (the max-min criterion already optimized for
            // the worst lane) — kill those lanes and re-select for the
            // survivors.
            let piv_row = loop {
                let alive = live & !dead;
                if alive == 0 {
                    return Err(NumericError::SingularMatrix {
                        column: k,
                        pivot: 0.0,
                    });
                }
                let mut piv_row = k;
                let mut piv_val = m[k * n + k].pivot_metric(alive);
                for r in (k + 1)..n {
                    let v = m[r * n + k].pivot_metric(alive);
                    if v > piv_val {
                        piv_val = v;
                        piv_row = r;
                    }
                }
                let bad = m[piv_row * n + k].bad_mask(PIVOT_TOL) & alive;
                if bad == 0 {
                    break piv_row;
                }
                dead |= bad;
            };
            if piv_row != k {
                for c in 0..n {
                    m.swap(k * n + c, piv_row * n + c);
                }
                self.perm.swap(k, piv_row);
            }
            // Heal every dead lane's pivot so the lockstep divisions
            // stay benign; garbage in dead lanes cannot reach live ones
            // (all arithmetic is lane-wise).
            let dead_here = m[k * n + k].bad_mask(PIVOT_TOL) & dead;
            if dead_here != 0 {
                m[k * n + k] = m[k * n + k].heal(dead_here, 1.0);
            }
            let pivot = m[k * n + k];
            for r in (k + 1)..n {
                let factor = m[r * n + k] / pivot;
                m[r * n + k] = factor;
                if factor != T::ZERO {
                    for c in (k + 1)..n {
                        let sub = factor * m[k * n + c];
                        m[r * n + c] -= sub;
                    }
                }
            }
        }
        Ok(dead & live)
    }

    /// Solves `A·x = b` for every lane at once into a caller-provided
    /// buffer, allocating nothing beyond growing `x` to `dim()` on
    /// first use. Lanes reported dead by the preceding
    /// [`refactor_masked`](Self::refactor_masked) produce garbage in
    /// their lane of `x` and must be ignored by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) -> Result<(), NumericError> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {}", self.n),
                got: format!("{}", b.len()),
            });
        }
        let n = self.n;
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for r in 1..n {
            let mut acc = T::ZERO;
            for (l, v) in self.lu[r * n..r * n + r].iter().zip(x.iter()) {
                acc += *l * *v;
            }
            x[r] -= acc;
        }
        for r in (0..n).rev() {
            let mut acc = T::ZERO;
            for (u, v) in self.lu[r * n + r + 1..(r + 1) * n].iter().zip(&x[r + 1..]) {
                acc += *u * *v;
            }
            x[r] = (x[r] - acc) / self.lu[r * n + r];
        }
        Ok(())
    }
}

/// A dense row-major matrix of [`Complex64`], used by AC analysis.
///
/// Provides the same stamping/solve interface as [`DenseMatrix`] but over
/// the complex field, since reactive elements stamp `jωC` / `1/(jωL)` terms.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl ComplexMatrix {
    /// Creates a `rows × cols` complex matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        ComplexMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(Complex64::ZERO);
    }

    /// Adds `v` to entry `(r, c)` (MNA stamping primitive).
    pub fn add_at(&mut self, r: usize, c: usize, v: Complex64) {
        self[(r, c)] += v;
    }

    /// Solves `A·x = b` by complex LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for shape errors and
    /// [`NumericError::SingularMatrix`] for singular systems.
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>, NumericError> {
        let mut work = self.clone();
        let mut x = b.to_vec();
        work.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` by eliminating directly on `self`, consuming the
    /// matrix contents (they are left in eliminated, unusable state) and
    /// overwriting `x` (`b` on entry) with the solution.
    ///
    /// AC sweeps restamp the matrix at every frequency anyway, so nothing
    /// is lost by destroying it — and the per-frequency clone of the
    /// matrix data that [`ComplexMatrix::solve`] performs is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for shape errors and
    /// [`NumericError::SingularMatrix`] for singular systems.
    pub fn solve_in_place(&mut self, x: &mut [Complex64]) -> Result<(), NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", self.rows, self.cols),
            });
        }
        if x.len() != self.rows {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {}", self.rows),
                got: format!("{}", x.len()),
            });
        }
        let n = self.rows;
        let m = &mut self.data;

        for k in 0..n {
            let mut piv_row = k;
            let mut piv_val = m[k * n + k].abs();
            for r in (k + 1)..n {
                let v = m[r * n + k].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            // NaN-aware singularity guard, as in the real factorization.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(piv_val > PIVOT_TOL) || !piv_val.is_finite() {
                return Err(NumericError::SingularMatrix {
                    column: k,
                    pivot: piv_val,
                });
            }
            if piv_row != k {
                for c in 0..n {
                    m.swap(k * n + c, piv_row * n + c);
                }
                x.swap(k, piv_row);
            }
            let pivot = m[k * n + k];
            for r in (k + 1)..n {
                let factor = m[r * n + k] / pivot;
                if factor != Complex64::ZERO {
                    for c in k..n {
                        let sub = factor * m[k * n + c];
                        m[r * n + c] -= sub;
                    }
                    let sub = factor * x[k];
                    x[r] -= sub;
                }
            }
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= m[r * n + c] * x[c];
            }
            x[r] = acc / m[r * n + r];
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for ComplexMatrix {
    type Output = Complex64;
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for ComplexMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let m = DenseMatrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        let x = m.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn known_2x2_solution() {
        let m = DenseMatrix::from_rows(2, 2, &[3.0, 1.0, 1.0, 2.0]).unwrap();
        let x = m.solve(&[9.0, 8.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // a11 = 0 forces a row swap.
        let m = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = m.solve(&[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn singular_matrix_reported() {
        let m = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]).unwrap();
        match m.solve(&[1.0, 1.0]) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            m.lu(),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn residual_is_small_for_random_like_system() {
        // Deterministic pseudo-random fill via a simple LCG.
        let n = 24;
        let mut state: u64 = 0x12345678;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = next();
            }
            a[(r, r)] += 4.0; // diagonal dominance keeps it well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn factor_reuse_multiple_rhs() {
        let a =
            DenseMatrix::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 4.0, 1.0, 0.0, 1.0, 4.0]).unwrap();
        let f = a.lu().unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [3.0, -1.0, 2.0]] {
            let x = f.solve(&b).unwrap();
            let ax = a.mul_vec(&x).unwrap();
            for (l, r) in ax.iter().zip(&b) {
                assert!((l - r).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn refactor_reuses_buffers_and_matches_fresh_lu() {
        let a =
            DenseMatrix::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 4.0, 1.0, 0.0, 1.0, 4.0]).unwrap();
        let b =
            DenseMatrix::from_rows(3, 3, &[0.0, 2.0, 1.0, 3.0, 0.5, 0.0, 1.0, 1.0, 5.0]).unwrap();
        let mut f = a.lu().unwrap();
        f.refactor(&b).unwrap();
        let fresh = b.lu().unwrap();
        let rhs = [1.0, -2.0, 0.5];
        let x_reused = f.solve(&rhs).unwrap();
        let x_fresh = fresh.solve(&rhs).unwrap();
        assert_eq!(x_reused, x_fresh);
        // Dimension changes are allowed across refactors.
        let c = DenseMatrix::identity(5);
        f.refactor(&c).unwrap();
        assert_eq!(f.dim(), 5);
        assert_eq!(f.solve(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap()[4], 5.0);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a =
            DenseMatrix::from_rows(3, 3, &[0.0, 2.0, 1.0, 3.0, 0.5, 0.0, 1.0, 1.0, 5.0]).unwrap();
        let f = a.lu().unwrap();
        let rhs = [1.0, -2.0, 0.5];
        let mut x = Vec::new();
        f.solve_into(&rhs, &mut x).unwrap();
        assert_eq!(x, f.solve(&rhs).unwrap());
        // Reusing a dirty, previously-sized buffer gives the same answer.
        let rhs2 = [9.0, 0.0, -4.0];
        f.solve_into(&rhs2, &mut x).unwrap();
        assert_eq!(x, f.solve(&rhs2).unwrap());
        assert!(f.solve_into(&[1.0], &mut x).is_err());
    }

    #[test]
    fn complex_solve_in_place_matches_solve() {
        let mut m = ComplexMatrix::zeros(2, 2);
        m[(0, 0)] = Complex64::new(1.0, 0.5);
        m[(0, 1)] = Complex64::new(0.0, 1.0);
        m[(1, 0)] = Complex64::new(2.0, 0.0);
        m[(1, 1)] = Complex64::new(-1.0, 1.0);
        let b = [Complex64::new(0.0, 3.0), Complex64::new(4.0, -1.0)];
        let expect = m.solve(&b).unwrap();
        let mut x = b.to_vec();
        m.solve_in_place(&mut x).unwrap();
        assert_eq!(x, expect);
    }

    #[test]
    fn determinant_matches_hand_calc() {
        let a = DenseMatrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        assert!((a.lu().unwrap().det() - 5.0).abs() < 1e-12);
        // Permutation sign: swapping rows flips determinant sign.
        let b = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((b.lu().unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_solve_reactance_divider() {
        // Series R with shunt C at ω: v_out/v_in = Zc / (R + Zc).
        let r = 50.0;
        let c = 1e-12;
        let omega = 2.0 * std::f64::consts::PI * 3e9;
        let yc = Complex64::new(0.0, omega * c);
        let g = Complex64::from_real(1.0 / r);
        // Single unknown node: (G + jωC)·v = G·vin with vin = 1.
        let mut m = ComplexMatrix::zeros(1, 1);
        m[(0, 0)] = g + yc;
        let v = m.solve(&[g]).unwrap();
        let expected = Complex64::ONE / (Complex64::ONE + yc / g);
        assert!((v[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn complex_solve_with_pivoting() {
        let mut m = ComplexMatrix::zeros(2, 2);
        m[(0, 0)] = Complex64::ZERO;
        m[(0, 1)] = Complex64::new(0.0, 1.0);
        m[(1, 0)] = Complex64::new(2.0, 0.0);
        m[(1, 1)] = Complex64::ZERO;
        let x = m
            .solve(&[Complex64::new(0.0, 3.0), Complex64::new(4.0, 0.0)])
            .unwrap();
        assert!((x[0] - Complex64::new(2.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - Complex64::new(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn complex_singular_reported() {
        let m = ComplexMatrix::zeros(2, 2);
        assert!(matches!(
            m.solve(&[Complex64::ONE, Complex64::ONE]),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn stamping_accumulates() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.add_at(0, 0, 1.0);
        m.add_at(0, 0, 2.0);
        assert_eq!(m[(0, 0)], 3.0);
    }

    use crate::F64x4;

    /// Lane-packed matrix + per-lane scalar mirrors, ditto for the rhs.
    type LaneSystems = (Vec<F64x4>, Vec<Vec<f64>>, Vec<F64x4>, Vec<Vec<f64>>);

    /// Four same-shape pseudo-random systems, lane-packed plus scalar.
    fn lane_systems(n: usize, seed: u64) -> LaneSystems {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut mats = vec![vec![0.0; n * n]; 4];
        for mat in &mut mats {
            for r in 0..n {
                for c in 0..n {
                    mat[r * n + c] = next();
                }
                mat[r * n + r] += 4.0; // keep it well conditioned
            }
        }
        let mut rhs = vec![vec![0.0; n]; 4];
        for lane_rhs in &mut rhs {
            for v in lane_rhs.iter_mut() {
                *v = next();
            }
        }
        let packed_m = (0..n * n)
            .map(|i| F64x4::new([mats[0][i], mats[1][i], mats[2][i], mats[3][i]]))
            .collect();
        let packed_b = (0..n)
            .map(|i| F64x4::new([rhs[0][i], rhs[1][i], rhs[2][i], rhs[3][i]]))
            .collect();
        (packed_m, mats, packed_b, rhs)
    }

    #[test]
    fn lane_lu_matches_per_lane_scalar_solves() {
        let n = 9;
        let (packed_m, mats, packed_b, rhs) = lane_systems(n, 0xBADC0DE);
        let mut f = LaneLu::<F64x4>::default();
        let dead = f.refactor_masked(&packed_m, n, 0b1111).unwrap();
        assert_eq!(dead, 0);
        assert_eq!(f.dim(), n);
        let mut x = Vec::new();
        f.solve_into(&packed_b, &mut x).unwrap();
        for lane in 0..4 {
            let a = DenseMatrix::from_rows(n, n, &mats[lane]).unwrap();
            let expect = a.solve(&rhs[lane]).unwrap();
            for i in 0..n {
                assert!(
                    (x[i].lane(lane) - expect[i]).abs() < 1e-9,
                    "lane {lane} row {i}: {} vs {}",
                    x[i].lane(lane),
                    expect[i]
                );
            }
        }
    }

    /// A singular variant dies alone: its lane is reported, the other
    /// three keep factoring and solving accurately.
    #[test]
    fn lane_lu_quarantines_dead_lane() {
        let n = 7;
        let (mut packed_m, mats, packed_b, rhs) = lane_systems(n, 0x5EED);
        for v in packed_m.iter_mut() {
            v.set_lane(2, 0.0); // lane 2: the zero matrix
        }
        let mut f = LaneLu::<F64x4>::default();
        let dead = f.refactor_masked(&packed_m, n, 0b1111).unwrap();
        assert_eq!(dead, 0b0100);
        let mut x = Vec::new();
        f.solve_into(&packed_b, &mut x).unwrap();
        for lane in [0usize, 1, 3] {
            let a = DenseMatrix::from_rows(n, n, &mats[lane]).unwrap();
            let expect = a.solve(&rhs[lane]).unwrap();
            for i in 0..n {
                assert!((x[i].lane(lane) - expect[i]).abs() < 1e-9);
            }
        }
    }

    /// NaN poison in one lane must be quarantined exactly like a
    /// singular lane (the guard is NaN-aware per lane).
    #[test]
    fn lane_lu_quarantines_nan_lane() {
        let n = 6;
        let (mut packed_m, mats, packed_b, rhs) = lane_systems(n, 0xF00D);
        packed_m[2 * n + 3].set_lane(1, f64::NAN);
        let mut f = LaneLu::<F64x4>::default();
        let dead = f.refactor_masked(&packed_m, n, 0b1111).unwrap();
        assert_eq!(dead & 0b0010, 0b0010, "NaN lane not reported dead");
        let mut x = Vec::new();
        f.solve_into(&packed_b, &mut x).unwrap();
        for lane in [0usize, 2, 3] {
            if dead & (1 << lane) != 0 {
                continue;
            }
            let a = DenseMatrix::from_rows(n, n, &mats[lane]).unwrap();
            let expect = a.solve(&rhs[lane]).unwrap();
            for i in 0..n {
                assert!((x[i].lane(lane) - expect[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lane_lu_all_dead_is_singular() {
        let n = 4;
        let packed_m = vec![F64x4::splat(0.0); n * n];
        let mut f = LaneLu::<F64x4>::default();
        match f.refactor_masked(&packed_m, n, 0b1111) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
        // A live set that only contains a dead lane fails the same way.
        let (mut good, _, _, _) = lane_systems(n, 3);
        for v in good.iter_mut() {
            v.set_lane(0, 0.0);
        }
        let mut f2 = LaneLu::<F64x4>::default();
        match f2.refactor_masked(&good, n, 0b0001) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }
}
