//! Sparse LU factorization with symbolic reuse for MNA systems.
//!
//! The solver is a left-looking Gilbert–Peierls LU in the style of
//! CSparse's `cs_lu`: each column of the factors is computed by a sparse
//! triangular solve whose nonzero pattern comes from a depth-first reach
//! over the partially built `L`. Two properties matter for a circuit
//! simulator:
//!
//! 1. **Partial pivoting with diagonal preference.** MNA matrices carry
//!    structurally zero diagonals on voltage-source branch rows, so a
//!    no-pivoting factorization would divide by zero. We pick the
//!    largest-magnitude candidate but keep the diagonal whenever it is
//!    within [`DIAG_PREFERENCE`] of the maximum, which preserves the
//!    near-symmetric fill pattern of MNA systems.
//! 2. **Replayable refactorization.** Newton iteration changes matrix
//!    *values* but never the *pattern*, so after one full factorization
//!    ([`SparseLu::factor`]) the per-column topological reach lists and
//!    the pivot order are frozen; [`SparseLu::refactor`] re-runs only the
//!    numeric elimination over those lists — no DFS, no pivot search —
//!    and falls back to a full factorization automatically if a frozen
//!    pivot becomes numerically unacceptable.
//!
//! Column ordering is a static minimum-degree flavoured heuristic
//! (sparsest columns eliminated first, stable tie-break on index),
//! computed once in [`SparseLu::new`] from the pattern alone.
//!
//! The solver is generic over the [`Scalar`] field: `SparseLu<f64>`
//! (the default) factors real DC/transient Jacobians, while
//! `SparseLu<Complex64>` factors the `G + jωC` systems of AC analysis.
//! Pivot magnitudes are compared through [`Scalar::modulus`], which for
//! `f64` is exactly `abs()` — the real instantiation performs the same
//! arithmetic in the same order as the pre-generic solver, keeping
//! DC/transient results bit-identical.

use crate::scalar::{LaneScalar, Scalar};
use crate::sparse::CsrMatrix;
use crate::NumericError;

/// Sentinel for "row not yet pivotal" during factorization.
const NONE: usize = usize::MAX;

/// Smallest pivot magnitude treated as nonzero (matches the dense LU).
const PIVOT_TOL: f64 = 1e-300;

/// Relative threshold for preferring the diagonal over the largest
/// candidate pivot: the diagonal wins whenever `|a_jj| >= 1e-3 * max`.
const DIAG_PREFERENCE: f64 = 1e-3;

/// How [`SparseLu::refactor`] obtained valid factors — the event hook a
/// telemetry layer counts without this crate depending on one. The three
/// outcomes have very different costs (a replay skips the DFS and the
/// pivot search entirely), so a sweep whose replays silently turn into
/// [`PivotFallback`](RefactorOutcome::PivotFallback)s is a performance
/// regression this enum makes observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefactorOutcome {
    /// The frozen elimination order was replayed numerically (fast path).
    Replayed,
    /// No factorization existed yet, so a full factorization ran.
    FullFactor,
    /// A frozen pivot died numerically; a full re-pivoting
    /// factorization healed the failure.
    PivotFallback,
}

/// Sparse LU factors of a square [`CsrMatrix`], reusable across value
/// changes on a fixed sparsity pattern.
///
/// ```
/// use cml_numeric::sparse::TripletMatrix;
/// use cml_numeric::SparseLu;
///
/// let mut m = TripletMatrix::new(2, 2);
/// m.add(0, 1, 1.0); // zero diagonal: needs pivoting
/// m.add(1, 0, 2.0);
/// let csr = m.to_csr().unwrap();
/// let mut lu = SparseLu::new(&csr).unwrap();
/// lu.factor(&csr).unwrap();
/// let x = lu.solve(&[3.0, 4.0]).unwrap();
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar = f64> {
    n: usize,
    /// CSC column pointers of the input pattern.
    cp: Vec<usize>,
    /// CSC row index per slot.
    cri: Vec<usize>,
    /// CSC slot → CSR slot, used to gather values at factor time.
    cmap: Vec<usize>,
    /// Column ordering: step `k` eliminates original column `q[k]`.
    q: Vec<usize>,
    /// `pinv[row] = k` iff `row` was chosen as pivot at step `k`.
    pinv: Vec<usize>,
    /// Inverse of `pinv`: the original row pivotal at each step.
    pivot_row: Vec<usize>,
    lp: Vec<usize>,
    /// L row indices in pivot space (for the forward solve).
    li: Vec<usize>,
    /// L row indices in original space (for refactor scatter).
    li_orig: Vec<usize>,
    lx: Vec<T>,
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<T>,
    /// Per-column topologically ordered reach lists (original rows).
    reach_ptr: Vec<usize>,
    reach: Vec<usize>,
    // Scratch (kept across calls so the hot path never allocates).
    x: Vec<T>,
    xi: Vec<usize>,
    stack: Vec<usize>,
    pstack: Vec<usize>,
    mark: Vec<u64>,
    mark_gen: u64,
    work: Vec<T>,
    factored: bool,
    /// `(column, |pivot|)` of the most recent frozen pivot that died
    /// during a replay and forced a re-pivoting heal — the forensic
    /// detail behind a [`RefactorOutcome::PivotFallback`]. Sticky until
    /// the next fallback; never consulted by the solve itself.
    last_dead_pivot: Option<(usize, f64)>,
}

/// Iterative depth-first search from `root` over the graph of `L`,
/// appending the reverse postorder to `xi[..top]` from the back.
/// Children of node `i` are the below-diagonal rows of L's column
/// `pinv[i]`; non-pivotal nodes are leaves.
// `pstack` mirrors `stack` push-for-push, so `last`/`last_mut` cannot
// fail while the loop runs; an Option dance here would only obscure the
// lockstep invariant.
#[allow(clippy::too_many_arguments, clippy::expect_used)]
fn dfs(
    root: usize,
    lp: &[usize],
    li_orig: &[usize],
    pinv: &[usize],
    mut top: usize,
    xi: &mut [usize],
    stack: &mut Vec<usize>,
    pstack: &mut Vec<usize>,
    mark: &mut [u64],
    gen: u64,
) -> usize {
    stack.clear();
    pstack.clear();
    stack.push(root);
    pstack.push(0);
    while let Some(&j) = stack.last() {
        let jnew = pinv[j];
        let (start, end) = if jnew == NONE {
            (0, 0)
        } else {
            (lp[jnew], lp[jnew + 1])
        };
        if mark[j] != gen {
            mark[j] = gen;
            *pstack.last_mut().expect("nonempty") = start;
        }
        let mut done = true;
        let mut p = *pstack.last().expect("nonempty");
        while p < end {
            let i = li_orig[p];
            if mark[i] != gen {
                *pstack.last_mut().expect("nonempty") = p;
                stack.push(i);
                pstack.push(0);
                done = false;
                break;
            }
            p += 1;
        }
        if done {
            stack.pop();
            pstack.pop();
            top -= 1;
            xi[top] = j;
        }
    }
    top
}

impl<T: Scalar> SparseLu<T> {
    /// Performs the symbolic setup (CSC pattern, column ordering,
    /// workspace) for `a`. No numeric work happens here; call
    /// [`factor`](Self::factor) before solving.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `a` is not square.
    pub fn new(a: &CsrMatrix<T>) -> Result<Self, NumericError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let nnz = a.nnz();
        let mut colcount = vec![0usize; n];
        for &c in a.col_idx() {
            colcount[c] += 1;
        }
        let mut cp = vec![0usize; n + 1];
        for c in 0..n {
            cp[c + 1] = cp[c] + colcount[c];
        }
        let mut next: Vec<usize> = cp[..n].to_vec();
        let mut cri = vec![0usize; nnz];
        let mut cmap = vec![0usize; nnz];
        let rp = a.row_ptr();
        let ci = a.col_idx();
        for r in 0..n {
            let (lo, hi) = (rp[r], rp[r + 1]);
            for (off, &c) in ci[lo..hi].iter().enumerate() {
                let slot = next[c];
                next[c] += 1;
                cri[slot] = r;
                cmap[slot] = lo + off;
            }
        }
        // Static minimum-degree flavoured ordering: eliminate the
        // sparsest columns first; index tie-break keeps it deterministic.
        let mut q: Vec<usize> = (0..n).collect();
        q.sort_by_key(|&c| (colcount[c], c));
        Ok(SparseLu {
            n,
            cp,
            cri,
            cmap,
            q,
            pinv: vec![NONE; n],
            pivot_row: vec![NONE; n],
            lp: vec![0; n + 1],
            li: Vec::new(),
            li_orig: Vec::with_capacity(4 * nnz),
            lx: Vec::with_capacity(4 * nnz),
            up: vec![0; n + 1],
            ui: Vec::with_capacity(4 * nnz),
            ux: Vec::with_capacity(4 * nnz),
            reach_ptr: vec![0; n + 1],
            reach: Vec::with_capacity(4 * nnz),
            x: vec![T::ZERO; n],
            xi: vec![0; n],
            stack: Vec::with_capacity(n),
            pstack: Vec::with_capacity(n),
            mark: vec![0; n],
            mark_gen: 0,
            work: vec![T::ZERO; n],
            factored: false,
            last_dead_pivot: None,
        })
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored nonzeros in `L` plus `U` (fill-in diagnostics).
    #[must_use]
    pub fn lu_nnz(&self) -> usize {
        self.li_orig.len() + self.ui.len()
    }

    fn check_values(&self, a: &CsrMatrix<T>) -> Result<(), NumericError> {
        if a.rows() != self.n || a.cols() != self.n || a.nnz() != self.cmap.len() {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{0}x{0} matrix with {1} nonzeros", self.n, self.cmap.len()),
                got: format!("{}x{} with {}", a.rows(), a.cols(), a.nnz()),
            });
        }
        Ok(())
    }

    /// Full numeric factorization of `a` (same pattern as at
    /// [`new`](Self::new) time): per-column DFS reach, sparse triangular
    /// solve, and threshold pivot selection. Freezes the pivot order and
    /// reach lists that [`refactor`](Self::refactor) replays.
    ///
    /// # Errors
    ///
    /// - [`NumericError::DimensionMismatch`] if `a`'s shape or nonzero
    ///   count differs from the pattern this solver was built for.
    /// - [`NumericError::SingularMatrix`] if no acceptable pivot exists
    ///   at some elimination step.
    pub fn factor(&mut self, a: &CsrMatrix<T>) -> Result<(), NumericError> {
        self.check_values(a)?;
        let n = self.n;
        self.factored = false;
        self.pinv.fill(NONE);
        self.pivot_row.fill(NONE);
        self.li_orig.clear();
        self.lx.clear();
        self.ui.clear();
        self.ux.clear();
        self.reach.clear();
        self.lp[0] = 0;
        self.up[0] = 0;
        self.reach_ptr[0] = 0;
        let avals = a.vals();
        for k in 0..n {
            let j = self.q[k];
            // Symbolic: reach of A(:, j) over the graph of L.
            let mut top = n;
            self.mark_gen += 1;
            let gen = self.mark_gen;
            for p in self.cp[j]..self.cp[j + 1] {
                let i = self.cri[p];
                if self.mark[i] != gen {
                    top = dfs(
                        i,
                        &self.lp,
                        &self.li_orig,
                        &self.pinv,
                        top,
                        &mut self.xi,
                        &mut self.stack,
                        &mut self.pstack,
                        &mut self.mark,
                        gen,
                    );
                }
            }
            // Numeric: scatter A(:, j), then eliminate in topological
            // order through the already-pivotal rows (x = L \ A(:, j)).
            for p in self.cp[j]..self.cp[j + 1] {
                self.x[self.cri[p]] = avals[self.cmap[p]];
            }
            for t in top..n {
                let i = self.xi[t];
                let kk = self.pinv[i];
                if kk == NONE {
                    continue;
                }
                let xi_val = self.x[i]; // L has a unit diagonal
                for p in self.lp[kk] + 1..self.lp[kk + 1] {
                    self.x[self.li_orig[p]] -= self.lx[p] * xi_val;
                }
            }
            // Pivot search over non-pivotal candidates; pivotal entries
            // become U(:, k), stored in topological order.
            let mut ipiv = NONE;
            let mut amax = -1.0f64;
            for t in top..n {
                let i = self.xi[t];
                let kk = self.pinv[i];
                if kk == NONE {
                    let cand = self.x[i].modulus();
                    if cand > amax {
                        amax = cand;
                        ipiv = i;
                    }
                } else {
                    self.ui.push(kk);
                    self.ux.push(self.x[i]);
                }
            }
            // `!(x > tol)` (rather than `x <= tol`) deliberately treats
            // NaN pivots as singular, as in the dense factorization.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if ipiv == NONE || !(amax > PIVOT_TOL) || !amax.is_finite() {
                for t in top..n {
                    self.x[self.xi[t]] = T::ZERO;
                }
                return Err(NumericError::SingularMatrix {
                    column: k,
                    pivot: amax.max(0.0),
                });
            }
            if self.pinv[j] == NONE && self.x[j].modulus() >= DIAG_PREFERENCE * amax {
                ipiv = j;
            }
            let pivot = self.x[ipiv];
            self.ui.push(k);
            self.ux.push(pivot);
            self.up[k + 1] = self.ui.len();
            self.pinv[ipiv] = k;
            self.pivot_row[k] = ipiv;
            self.li_orig.push(ipiv);
            self.lx.push(T::ONE);
            for t in top..n {
                let i = self.xi[t];
                if self.pinv[i] == NONE {
                    self.li_orig.push(i);
                    self.lx.push(self.x[i] / pivot);
                }
                self.x[i] = T::ZERO; // keep the workspace all-zero invariant
            }
            self.lp[k + 1] = self.li_orig.len();
            self.reach.extend_from_slice(&self.xi[top..n]);
            self.reach_ptr[k + 1] = self.reach.len();
        }
        // Remap L's rows into pivot space for the forward solve; the
        // original-space copy stays for refactor replay.
        self.li.clear();
        self.li.extend(self.li_orig.iter().map(|&i| self.pinv[i]));
        self.factored = true;
        Ok(())
    }

    /// Recomputes the numeric factors of `a` assuming the values changed
    /// but the pattern did not: replays the frozen elimination order with
    /// no DFS and no pivot search. If a frozen pivot has become
    /// numerically unacceptable (or no factorization exists yet), falls
    /// back to a full [`factor`](Self::factor) — so a successful return
    /// always leaves valid factors. The returned [`RefactorOutcome`]
    /// reports which of the three paths produced them.
    ///
    /// # Errors
    ///
    /// Same as [`factor`](Self::factor).
    pub fn refactor(&mut self, a: &CsrMatrix<T>) -> Result<RefactorOutcome, NumericError> {
        if !self.factored {
            self.factor(a)?;
            return Ok(RefactorOutcome::FullFactor);
        }
        self.check_values(a)?;
        match self.replay(a) {
            Ok(()) => Ok(RefactorOutcome::Replayed),
            Err(e) => {
                if let NumericError::SingularMatrix { column, pivot } = e {
                    self.last_dead_pivot = Some((column, pivot));
                }
                self.factor(a)?;
                Ok(RefactorOutcome::PivotFallback)
            }
        }
    }

    /// `(column, |pivot|)` of the most recent frozen pivot whose death
    /// forced a [`RefactorOutcome::PivotFallback`] heal; `None` until
    /// the first fallback. Telemetry reads this to attach the numeric
    /// detail to pivot-death events.
    #[must_use]
    pub fn last_dead_pivot(&self) -> Option<(usize, f64)> {
        self.last_dead_pivot
    }

    /// Like [`refactor`](Self::refactor), but **never** falls back to a
    /// full factorization: the frozen pivot order is replayed or the call
    /// fails. Parallel sweep workers use this so every point is solved
    /// with the *same* pivot order regardless of which worker processes
    /// it — a silent re-pivot mid-sweep would make results depend on the
    /// partitioning. On error the frozen structure is left intact (every
    /// value slot is overwritten by the next replay), so the caller may
    /// fall back to a dense solve for the offending point and keep
    /// replaying subsequent ones.
    ///
    /// # Errors
    ///
    /// - [`NumericError::DimensionMismatch`] if `a`'s shape or nonzero
    ///   count differs from the frozen pattern, or no factorization
    ///   exists yet.
    /// - [`NumericError::SingularMatrix`] if a frozen pivot has become
    ///   numerically unacceptable for `a`'s values.
    pub fn refactor_frozen(&mut self, a: &CsrMatrix<T>) -> Result<(), NumericError> {
        if !self.factored {
            return Err(NumericError::DimensionMismatch {
                expected: "a frozen factorization (call factor first)".into(),
                got: "unfactored SparseLu".into(),
            });
        }
        self.check_values(a)?;
        self.replay(a)
    }

    fn replay(&mut self, a: &CsrMatrix<T>) -> Result<(), NumericError> {
        let avals = a.vals();
        for k in 0..self.n {
            let j = self.q[k];
            for p in self.cp[j]..self.cp[j + 1] {
                self.x[self.cri[p]] = avals[self.cmap[p]];
            }
            let mut ucur = self.up[k];
            for t in self.reach_ptr[k]..self.reach_ptr[k + 1] {
                let i = self.reach[t];
                let kk = self.pinv[i];
                if kk < k {
                    let xi_val = self.x[i];
                    self.ux[ucur] = xi_val;
                    ucur += 1;
                    for p in self.lp[kk] + 1..self.lp[kk + 1] {
                        self.x[self.li_orig[p]] -= self.lx[p] * xi_val;
                    }
                }
            }
            debug_assert_eq!(ucur, self.up[k + 1] - 1);
            let ipiv = self.pivot_row[k];
            let pivot = self.x[ipiv];
            // NaN-aware singularity guard, as in the full factorization.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !pivot.finite() || !(pivot.modulus() > PIVOT_TOL) {
                // Restore the all-zero workspace invariant before the
                // caller falls back to a full factorization.
                for t in self.reach_ptr[k]..self.reach_ptr[k + 1] {
                    self.x[self.reach[t]] = T::ZERO;
                }
                return Err(NumericError::SingularMatrix {
                    column: k,
                    pivot: pivot.modulus(),
                });
            }
            self.ux[ucur] = pivot;
            let mut lcur = self.lp[k] + 1; // slot lp[k] is the unit diagonal
            for t in self.reach_ptr[k]..self.reach_ptr[k + 1] {
                let i = self.reach[t];
                if self.pinv[i] > k {
                    debug_assert_eq!(self.li_orig[lcur], i);
                    self.lx[lcur] = self.x[i] / pivot;
                    lcur += 1;
                }
                self.x[i] = T::ZERO;
            }
            debug_assert_eq!(lcur, self.lp[k + 1]);
        }
        Ok(())
    }

    /// Solves `A·x = b` into `x_out` using the current factors, without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`factor`](Self::factor) /
    /// [`refactor`](Self::refactor) (API misuse, not a data error).
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b` or `x_out` has the
    /// wrong length.
    pub fn solve_into(&mut self, b: &[T], x_out: &mut [T]) -> Result<(), NumericError> {
        assert!(self.factored, "SparseLu::solve_into before factor");
        let n = self.n;
        if b.len() != n || x_out.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vectors of length {n}"),
                got: format!("b of {}, x of {}", b.len(), x_out.len()),
            });
        }
        let w = &mut self.work;
        for (i, &bi) in b.iter().enumerate() {
            w[self.pinv[i]] = bi;
        }
        // Forward solve: L is unit lower triangular in pivot space.
        for j in 0..n {
            let xj = w[j];
            if xj != T::ZERO {
                for p in self.lp[j] + 1..self.lp[j + 1] {
                    w[self.li[p]] -= self.lx[p] * xj;
                }
            }
        }
        // Backward solve: each U column stores its diagonal last.
        for j in (0..n).rev() {
            let xj = w[j] / self.ux[self.up[j + 1] - 1];
            w[j] = xj;
            if xj != T::ZERO {
                for p in self.up[j]..self.up[j + 1] - 1 {
                    w[self.ui[p]] -= self.ux[p] * xj;
                }
            }
        }
        for (k, &col) in self.q.iter().enumerate() {
            x_out[col] = w[k];
        }
        Ok(())
    }

    /// Solves `A·x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful factorization; see
    /// [`solve_into`](Self::solve_into).
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&mut self, b: &[T]) -> Result<Vec<T>, NumericError> {
        let mut x = vec![T::ZERO; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }
}

/// A factored [`SparseLu`] with its scratch stripped: the complete
/// symbolic analysis (CSC pattern, column ordering, frozen pivot order,
/// reach lists) plus the numeric factors, as plain vectors. This is the
/// serialization surface for the topology artifact cache — a consumer
/// encodes the fields, and [`SparseLu::from_frozen`] re-validates every
/// structural invariant before grafting them back into a live solver,
/// so a corrupt or stale payload is rejected instead of producing a
/// solver that replays garbage.
///
/// The numeric payload (`lx`/`ux`) is carried bit-exact, so a solver
/// rebuilt from a `FrozenLu` exported after [`SparseLu::factor`] on a
/// matrix `A` behaves bitwise-identically to the original on every
/// subsequent `refactor_frozen`/`solve` — the property the AC cache's
/// cold-vs-warm equivalence rests on.
#[derive(Debug, Clone)]
pub struct FrozenLu<T: Scalar = f64> {
    /// Matrix dimension.
    pub n: usize,
    /// CSC column pointers of the input pattern.
    pub cp: Vec<usize>,
    /// CSC row index per slot.
    pub cri: Vec<usize>,
    /// CSC slot → CSR slot value-gather map.
    pub cmap: Vec<usize>,
    /// Column elimination order.
    pub q: Vec<usize>,
    /// Row → elimination step (frozen pivot order).
    pub pinv: Vec<usize>,
    /// Elimination step → row (inverse of `pinv`).
    pub pivot_row: Vec<usize>,
    /// L column pointers.
    pub lp: Vec<usize>,
    /// L row indices in pivot space.
    pub li: Vec<usize>,
    /// L row indices in original space.
    pub li_orig: Vec<usize>,
    /// L values (unit diagonal first per column).
    pub lx: Vec<T>,
    /// U column pointers.
    pub up: Vec<usize>,
    /// U row indices (diagonal last per column).
    pub ui: Vec<usize>,
    /// U values.
    pub ux: Vec<T>,
    /// Reach-list pointers.
    pub reach_ptr: Vec<usize>,
    /// Per-column topological reach lists (original rows).
    pub reach: Vec<usize>,
}

impl<T: Scalar> SparseLu<T> {
    /// Snapshots the factored state for serialization. `None` before a
    /// successful [`factor`](Self::factor) — an unfactored solver has
    /// no pivot order worth freezing.
    #[must_use]
    pub fn export_frozen(&self) -> Option<FrozenLu<T>> {
        if !self.factored {
            return None;
        }
        Some(FrozenLu {
            n: self.n,
            cp: self.cp.clone(),
            cri: self.cri.clone(),
            cmap: self.cmap.clone(),
            q: self.q.clone(),
            pinv: self.pinv.clone(),
            pivot_row: self.pivot_row.clone(),
            lp: self.lp.clone(),
            li: self.li.clone(),
            li_orig: self.li_orig.clone(),
            lx: self.lx.clone(),
            up: self.up.clone(),
            ui: self.ui.clone(),
            ux: self.ux.clone(),
            reach_ptr: self.reach_ptr.clone(),
            reach: self.reach.clone(),
        })
    }

    /// Rebuilds a factored solver from a [`FrozenLu`], validating every
    /// structural invariant the replay path depends on. The checks make
    /// a malformed payload *structurally* unable to index out of bounds
    /// or desynchronize the replay loops; numeric correctness is the
    /// caller's contract (the cache layer keys frozen factors by a
    /// digest of the exact matrix bits they were factored from, and
    /// re-verifies those bits on load).
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] describing the first violated
    /// invariant. Callers treat any error as a cache validation failure
    /// and fall back to a cold factorization.
    pub fn from_frozen(f: FrozenLu<T>) -> Result<Self, NumericError> {
        fn bad(what: &str) -> NumericError {
            NumericError::DimensionMismatch {
                expected: "a structurally valid FrozenLu".into(),
                got: what.into(),
            }
        }
        // Monotone pointer array of length n+1 whose last entry equals
        // the indexed vectors' length.
        fn check_ptr(
            ptr: &[usize],
            n: usize,
            terminal: usize,
            name: &str,
        ) -> Result<(), NumericError> {
            if ptr.len() != n + 1 {
                return Err(bad(&format!("{name} has length {}", ptr.len())));
            }
            if ptr[0] != 0 || ptr.windows(2).any(|w| w[0] > w[1]) {
                return Err(bad(&format!("{name} is not monotone from 0")));
            }
            if ptr[n] != terminal {
                return Err(bad(&format!("{name} terminal {} != {terminal}", ptr[n])));
            }
            Ok(())
        }
        fn check_perm(p: &[usize], n: usize, name: &str) -> Result<(), NumericError> {
            if p.len() != n {
                return Err(bad(&format!("{name} has length {}", p.len())));
            }
            let mut seen = vec![false; n];
            for &v in p {
                if v >= n || seen[v] {
                    return Err(bad(&format!("{name} is not a permutation")));
                }
                seen[v] = true;
            }
            Ok(())
        }

        let n = f.n;
        let nnz = f.cri.len();
        if f.cmap.len() != nnz {
            return Err(bad("cmap length != pattern nnz"));
        }
        check_ptr(&f.cp, n, nnz, "cp")?;
        if f.lx.len() != f.li_orig.len() || f.li.len() != f.li_orig.len() {
            return Err(bad("L index/value lengths disagree"));
        }
        check_ptr(&f.lp, n, f.li_orig.len(), "lp")?;
        if f.ux.len() != f.ui.len() {
            return Err(bad("U index/value lengths disagree"));
        }
        check_ptr(&f.up, n, f.ui.len(), "up")?;
        check_ptr(&f.reach_ptr, n, f.reach.len(), "reach_ptr")?;
        check_perm(&f.q, n, "q")?;
        check_perm(&f.pinv, n, "pinv")?;
        check_perm(&f.pivot_row, n, "pivot_row")?;
        for r in 0..n {
            if f.pivot_row[f.pinv[r]] != r {
                return Err(bad("pinv and pivot_row are not mutual inverses"));
            }
        }
        if f.cri.iter().any(|&r| r >= n) || f.reach.iter().any(|&r| r >= n) {
            return Err(bad("row index out of range"));
        }
        if f.li_orig.iter().any(|&r| r >= n) || f.ui.iter().any(|&k| k >= n) {
            return Err(bad("factor index out of range"));
        }
        if f.cmap.iter().any(|&s| s >= nnz) {
            return Err(bad("cmap slot out of range"));
        }
        for (p, &i) in f.li_orig.iter().enumerate() {
            if f.li[p] != f.pinv[i] {
                return Err(bad("li is not pinv∘li_orig"));
            }
        }
        for k in 0..n {
            // Each L column leads with its unit-diagonal pivot slot and
            // each U column ends on its diagonal.
            if f.lp[k + 1] <= f.lp[k] || f.up[k + 1] <= f.up[k] {
                return Err(bad("empty factor column"));
            }
            if f.li_orig[f.lp[k]] != f.pivot_row[k] {
                return Err(bad("L column does not lead with its pivot row"));
            }
            if (f.lx[f.lp[k]] - T::ONE).modulus() != 0.0 {
                return Err(bad("L diagonal is not exactly one"));
            }
            if f.ui[f.up[k + 1] - 1] != k {
                return Err(bad("U column does not end on its diagonal"));
            }
            // The replay loop walks the reach list writing U slots
            // (entries pivotal before step k) and L slots (entries
            // pivotal after k) through sequential cursors; re-walk it
            // here demanding exact index agreement, so a forged reach
            // list cannot silently desynchronize the replay cursors.
            let mut ucur = f.up[k];
            let mut lcur = f.lp[k] + 1;
            let mut diag = 0usize;
            for &i in &f.reach[f.reach_ptr[k]..f.reach_ptr[k + 1]] {
                match f.pinv[i].cmp(&k) {
                    std::cmp::Ordering::Less => {
                        if ucur >= f.up[k + 1] - 1 || f.ui[ucur] != f.pinv[i] {
                            return Err(bad("reach list disagrees with U column"));
                        }
                        ucur += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        if lcur >= f.lp[k + 1] || f.li_orig[lcur] != i {
                            return Err(bad("reach list disagrees with L column"));
                        }
                        lcur += 1;
                    }
                    std::cmp::Ordering::Equal => diag += 1,
                }
            }
            if ucur != f.up[k + 1] - 1 || lcur != f.lp[k + 1] || diag != 1 {
                return Err(bad("reach list disagrees with factor column sizes"));
            }
        }
        Ok(SparseLu {
            n,
            cp: f.cp,
            cri: f.cri,
            cmap: f.cmap,
            q: f.q,
            pinv: f.pinv,
            pivot_row: f.pivot_row,
            lp: f.lp,
            li: f.li,
            li_orig: f.li_orig,
            lx: f.lx,
            up: f.up,
            ui: f.ui,
            ux: f.ux,
            reach_ptr: f.reach_ptr,
            reach: f.reach,
            x: vec![T::ZERO; n],
            xi: vec![0; n],
            stack: Vec::with_capacity(n),
            pstack: Vec::with_capacity(n),
            mark: vec![0; n],
            mark_gen: 0,
            work: vec![T::ZERO; n],
            factored: true,
            last_dead_pivot: None,
        })
    }
}

impl<T: LaneScalar> SparseLu<T> {
    /// Masked frozen replay for lane-packed scalars: like
    /// [`refactor_frozen`](Self::refactor_frozen), but a pivot that dies
    /// in *some* lanes kills only those lanes instead of the whole
    /// replay. A dying lane's pivot is overwritten with `1.0` so the
    /// lockstep division stays benign (lane-wise arithmetic guarantees
    /// the garbage it produces never leaks into live lanes), and the
    /// lane is reported in the returned mask; the caller discards that
    /// lane's solution and re-solves it scalar — the batch solver's
    /// per-lane fallback ladder.
    ///
    /// `live` selects the lanes whose numerical health matters (bit `i`
    /// = lane `i`); lanes outside `live` are replayed with healing but
    /// never reported. Returns the subset of `live` whose frozen pivots
    /// died during this replay (`0` = every requested lane factored
    /// cleanly). From the moment a lane dies, *all* of its subsequent
    /// columns are garbage — its earlier columns are not a usable
    /// partial factorization.
    ///
    /// # Errors
    ///
    /// - [`NumericError::DimensionMismatch`] as in
    ///   [`refactor_frozen`](Self::refactor_frozen).
    /// - [`NumericError::SingularMatrix`] only when **every** lane in
    ///   `live` has died; the workspace invariant is restored and the
    ///   frozen structure stays intact, as in the unmasked replay.
    pub fn refactor_frozen_masked(
        &mut self,
        a: &CsrMatrix<T>,
        live: u64,
    ) -> Result<u64, NumericError> {
        if !self.factored {
            return Err(NumericError::DimensionMismatch {
                expected: "a frozen factorization (call factor first)".into(),
                got: "unfactored SparseLu".into(),
            });
        }
        self.check_values(a)?;
        let live = live & T::LANE_MASK;
        // Lanes outside the live set are healed from the start: their
        // values may be stale garbage and must never trip pivot guards.
        let mut dead: u64 = !live & T::LANE_MASK;
        let avals = a.vals();
        for k in 0..self.n {
            let j = self.q[k];
            for p in self.cp[j]..self.cp[j + 1] {
                self.x[self.cri[p]] = avals[self.cmap[p]];
            }
            let mut ucur = self.up[k];
            for t in self.reach_ptr[k]..self.reach_ptr[k + 1] {
                let i = self.reach[t];
                let kk = self.pinv[i];
                if kk < k {
                    let xi_val = self.x[i];
                    self.ux[ucur] = xi_val;
                    ucur += 1;
                    for p in self.lp[kk] + 1..self.lp[kk + 1] {
                        self.x[self.li_orig[p]] -= self.lx[p] * xi_val;
                    }
                }
            }
            debug_assert_eq!(ucur, self.up[k + 1] - 1);
            let ipiv = self.pivot_row[k];
            let mut pivot = self.x[ipiv];
            let newly_dead = pivot.bad_mask(PIVOT_TOL) & !dead;
            dead |= newly_dead;
            if live & !dead == 0 {
                // Every requested lane has died: restore the all-zero
                // workspace invariant and report singularity, exactly
                // like the unmasked replay.
                for t in self.reach_ptr[k]..self.reach_ptr[k + 1] {
                    self.x[self.reach[t]] = T::ZERO;
                }
                return Err(NumericError::SingularMatrix {
                    column: k,
                    pivot: pivot.modulus(),
                });
            }
            if dead != 0 {
                pivot = pivot.heal(dead, 1.0);
            }
            self.ux[ucur] = pivot;
            let mut lcur = self.lp[k] + 1; // slot lp[k] is the unit diagonal
            for t in self.reach_ptr[k]..self.reach_ptr[k + 1] {
                let i = self.reach[t];
                if self.pinv[i] > k {
                    debug_assert_eq!(self.li_orig[lcur], i);
                    self.lx[lcur] = self.x[i] / pivot;
                    lcur += 1;
                }
                self.x[i] = T::ZERO;
            }
            debug_assert_eq!(lcur, self.lp[k + 1]);
        }
        Ok(dead & live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;
    use crate::{Complex64, ComplexMatrix, DenseMatrix};

    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Random diagonally dominant system with an MNA-flavoured band +
    /// arrow pattern.
    fn random_system(n: usize, seed: u64) -> TripletMatrix {
        let mut st = seed | 1;
        let mut m = TripletMatrix::new(n, n);
        for r in 0..n {
            m.add(r, r, n as f64 + lcg(&mut st).abs());
            for off in 1..=3usize {
                if r + off < n {
                    m.add(r, r + off, lcg(&mut st));
                    m.add(r + off, r, lcg(&mut st));
                }
            }
            m.add(r, n - 1, lcg(&mut st) * 0.5);
            m.add(n - 1, r, lcg(&mut st) * 0.5);
        }
        m
    }

    fn solve_both(m: &TripletMatrix, b: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        let xs = lu.solve(b).unwrap();
        let xd = m.to_dense().unwrap().solve(b).unwrap();
        (xs, xd)
    }

    #[test]
    fn zero_diagonal_needs_pivoting() {
        // The 2x2 MNA of an ideal voltage source: [[0, 1], [1, 0]].
        let mut m = TripletMatrix::new(2, 2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let (xs, xd) = solve_both(&m, &[2.5, -1.0]);
        for (a, b) in xs.iter().zip(&xd) {
            assert!((a - b).abs() < 1e-14, "{xs:?} vs {xd:?}");
        }
    }

    #[test]
    fn vsource_like_mna_matches_dense() {
        // 1 V source + two resistors: node equations with a branch row
        // whose diagonal is structurally zero.
        let g1 = 1.0 / 150.0;
        let g2 = 1.0 / 330.0;
        let mut m = TripletMatrix::new(3, 3);
        m.add(0, 0, g1);
        m.add(0, 1, -g1);
        m.add(1, 0, -g1);
        m.add(1, 1, g1 + g2);
        m.add(0, 2, 1.0);
        m.add(2, 0, 1.0);
        let (xs, xd) = solve_both(&m, &[0.0, 0.0, 1.0]);
        for (a, b) in xs.iter().zip(&xd) {
            assert!((a - b).abs() < 1e-12, "{xs:?} vs {xd:?}");
        }
    }

    #[test]
    fn random_systems_match_dense() {
        for seed in [1u64, 7, 42, 1234, 98765] {
            let n = 8 + (seed as usize % 40);
            let m = random_system(n, seed);
            let mut st = seed.wrapping_add(99) | 1;
            let b: Vec<f64> = (0..n).map(|_| lcg(&mut st)).collect();
            let (xs, xd) = solve_both(&m, &b);
            for (a, d) in xs.iter().zip(&xd) {
                assert!((a - d).abs() < 1e-9, "seed {seed}: {a} vs {d}");
            }
        }
    }

    #[test]
    fn refactor_replays_new_values() {
        let n = 24;
        let m = random_system(n, 3);
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        // Same pattern, different values.
        let mut st = 555u64;
        let mut m2 = TripletMatrix::new(n, n);
        for (r, c, _) in csr.iter() {
            let v = if r == c {
                n as f64 + lcg(&mut st).abs()
            } else {
                lcg(&mut st)
            };
            m2.add(r, c, v);
        }
        let csr2 = m2.to_csr().unwrap();
        assert_eq!(csr2.nnz(), csr.nnz());
        assert_eq!(lu.refactor(&csr2).unwrap(), RefactorOutcome::Replayed);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = m2.to_dense().unwrap().solve(&b).unwrap();
        for (a, d) in xs.iter().zip(&xd) {
            assert!((a - d).abs() < 1e-9, "{a} vs {d}");
        }
    }

    #[test]
    fn refactor_falls_back_when_pivot_dies() {
        // First factor a well-pivoted matrix, then hand refactor values
        // that zero out the frozen pivot; the internal fallback must
        // still produce correct factors.
        let mut m = TripletMatrix::new(2, 2);
        m.add(0, 0, 4.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 4.0);
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        let mut m2 = TripletMatrix::new(2, 2);
        m2.add(0, 0, 0.0);
        m2.add(0, 1, 1.0);
        m2.add(1, 0, 1.0);
        m2.add(1, 1, 0.0);
        // Keep explicit zeros in the pattern by building it directly.
        let mut csr2 = CsrMatrix::from_pattern(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        for (r, c, v) in m2.to_csr().unwrap().iter() {
            let slot = csr2.find(r, c).unwrap();
            csr2.vals_mut()[slot] = v;
        }
        let mut lu2 = SparseLu::new(&csr2).unwrap();
        // Same pattern check is on nnz, so refactor the 4-slot pattern.
        let mut dense_vals =
            CsrMatrix::from_pattern(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        dense_vals.vals_mut().copy_from_slice(&[4.0, 1.0, 1.0, 4.0]);
        lu2.factor(&dense_vals).unwrap();
        assert_eq!(lu2.refactor(&csr2).unwrap(), RefactorOutcome::PivotFallback);
        let x = lu2.solve(&[1.0, 2.0]).unwrap();
        assert!(
            (x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12,
            "{x:?}"
        );
        drop(lu);
    }

    #[test]
    fn singular_matrix_reported() {
        let mut m = TripletMatrix::new(2, 2);
        m.add(0, 0, 1.0);
        m.add(1, 0, 1.0);
        // Column 1 is structurally empty ⇒ singular.
        let csr = CsrMatrix::<f64>::from_pattern(2, 2, &[(0, 0), (1, 0)]).unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        let err = lu.factor(&csr).unwrap_err();
        assert!(matches!(err, NumericError::SingularMatrix { .. }), "{err}");
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let csr = CsrMatrix::<f64>::from_pattern(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let other =
            CsrMatrix::<f64>::from_pattern(3, 3, &[(0, 0), (1, 1), (2, 2), (0, 2)]).unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        assert!(matches!(
            lu.factor(&other),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn residual_small_on_larger_system() {
        let n = 60;
        let m = random_system(n, 2024);
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        let mut st = 17u64;
        let b: Vec<f64> = (0..n).map(|_| lcg(&mut st)).collect();
        let x = lu.solve(&b).unwrap();
        let ax = csr.mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
        assert!(lu.lu_nnz() >= csr.nnz(), "factors can only gain fill");
        assert_eq!(lu.dim(), n);
    }

    #[test]
    fn dense_pattern_matches_dense_lu() {
        // Fully dense pattern: sparse LU degenerates gracefully.
        let n = 12;
        let mut st = 9u64;
        let mut m = TripletMatrix::new(n, n);
        let mut d = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let v = lcg(&mut st) + if r == c { n as f64 } else { 0.0 };
                m.add(r, c, v);
                d[(r, c)] = v;
            }
        }
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = d.solve(&b).unwrap();
        for (a, dd) in xs.iter().zip(&xd) {
            assert!((a - dd).abs() < 1e-10);
        }
    }

    /// Builds the complex `G + jωC`-shaped system used by the complex
    /// instantiation tests: banded, diagonally dominant, with nonzero
    /// imaginary parts everywhere.
    fn complex_system(n: usize, seed: u64) -> CsrMatrix<Complex64> {
        let mut st = seed | 1;
        let mut positions = Vec::new();
        for r in 0..n {
            positions.push((r, r));
            for off in 1..=2usize {
                if r + off < n {
                    positions.push((r, r + off));
                    positions.push((r + off, r));
                }
            }
        }
        let mut m = CsrMatrix::<Complex64>::from_pattern(n, n, &positions).unwrap();
        for slot in 0..m.nnz() {
            let re = lcg(&mut st);
            let im = lcg(&mut st);
            m.vals_mut()[slot] = Complex64::new(re, im);
        }
        for r in 0..n {
            let slot = m.find(r, r).unwrap();
            m.vals_mut()[slot] += Complex64::new(n as f64, n as f64 * 0.5);
        }
        m
    }

    #[test]
    fn complex_factor_matches_dense_complex() {
        for seed in [3u64, 11, 77] {
            let n = 10 + (seed as usize % 20);
            let csr = complex_system(n, seed);
            let mut lu = SparseLu::new(&csr).unwrap();
            lu.factor(&csr).unwrap();
            let mut st = seed.wrapping_add(5) | 1;
            let b: Vec<Complex64> = (0..n)
                .map(|_| Complex64::new(lcg(&mut st), lcg(&mut st)))
                .collect();
            let xs = lu.solve(&b).unwrap();
            let mut dense = ComplexMatrix::zeros(n, n);
            for (r, c, v) in csr.iter() {
                dense.add_at(r, c, v);
            }
            let xd = dense.solve(&b).unwrap();
            for (a, d) in xs.iter().zip(&xd) {
                assert!((*a - *d).abs() < 1e-9, "seed {seed}: {a:?} vs {d:?}");
            }
        }
    }

    #[test]
    fn complex_refactor_frozen_replays_new_values() {
        let n = 16;
        let csr = complex_system(n, 21);
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        // Same pattern, different values (a new frequency point).
        let mut csr2 = csr.clone();
        for v in csr2.vals_mut() {
            *v *= Complex64::new(0.0, 2.0); // rotate and scale
        }
        for r in 0..n {
            let slot = csr2.find(r, r).unwrap();
            csr2.vals_mut()[slot] += Complex64::new(n as f64, 0.0);
        }
        lu.refactor_frozen(&csr2).unwrap();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let xs = lu.solve(&b).unwrap();
        let mut dense = ComplexMatrix::zeros(n, n);
        for (r, c, v) in csr2.iter() {
            dense.add_at(r, c, v);
        }
        let xd = dense.solve(&b).unwrap();
        for (a, d) in xs.iter().zip(&xd) {
            assert!((*a - *d).abs() < 1e-9, "{a:?} vs {d:?}");
        }
    }

    #[test]
    fn refactor_frozen_errors_without_fallback() {
        // Values that kill the frozen pivot must surface as an error, not
        // a silent re-pivot — and the structure must survive for the next
        // replay.
        let mut m = TripletMatrix::new(2, 2);
        m.add(0, 0, 4.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 4.0);
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();

        // Not factored yet: frozen refactor is an API error.
        assert!(lu.refactor_frozen(&csr).is_err());

        lu.factor(&csr).unwrap();
        let mut dead = csr.clone();
        dead.vals_mut().copy_from_slice(&[0.0, 1.0, 1.0, 0.0]);
        assert!(matches!(
            lu.refactor_frozen(&dead),
            Err(NumericError::SingularMatrix { .. })
        ));
        // Replay after the failure still works on good values.
        let mut good = csr.clone();
        good.vals_mut().copy_from_slice(&[2.0, 1.0, 1.0, 2.0]);
        lu.refactor_frozen(&good).unwrap();
        let x = lu.solve(&[3.0, 3.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    use crate::F64x4;

    /// Packs four same-pattern scalar systems into one `F64x4` matrix.
    /// `random_system` writes the same position set for every seed, so
    /// only values differ between the lanes.
    fn pack_lanes(lanes: &[CsrMatrix; 4]) -> CsrMatrix<F64x4> {
        let n = lanes[0].rows();
        let mut positions = Vec::new();
        for r in 0..n {
            for p in lanes[0].row_ptr()[r]..lanes[0].row_ptr()[r + 1] {
                positions.push((r, lanes[0].col_idx()[p]));
            }
        }
        let mut packed = CsrMatrix::<F64x4>::from_pattern(n, n, &positions).unwrap();
        for slot in 0..lanes[0].vals().len() {
            packed.vals_mut()[slot] = F64x4::new([
                lanes[0].vals()[slot],
                lanes[1].vals()[slot],
                lanes[2].vals()[slot],
                lanes[3].vals()[slot],
            ]);
        }
        packed
    }

    fn lane_csrs(n: usize, base_seed: u64) -> [CsrMatrix; 4] {
        std::array::from_fn(|lane| random_system(n, base_seed + lane as u64).to_csr().unwrap())
    }

    #[test]
    fn masked_replay_matches_per_lane_scalar_solves() {
        let n = 14;
        let first = lane_csrs(n, 41);
        let packed = pack_lanes(&first);
        let mut lu = SparseLu::new(&packed).unwrap();
        lu.factor(&packed).unwrap();
        // New values on the frozen pattern: the batched Newton step.
        let second = lane_csrs(n, 4141);
        let packed2 = pack_lanes(&second);
        let dead = lu.refactor_frozen_masked(&packed2, 0b1111).unwrap();
        assert_eq!(dead, 0);
        let b: Vec<F64x4> = (0..n)
            .map(|i| F64x4::from_fn(|lane| (i * 7 + lane + 1) as f64 / 3.0))
            .collect();
        let xs = lu.solve(&b).unwrap();
        for (lane, second_lane) in second.iter().enumerate() {
            let mut slu = SparseLu::new(second_lane).unwrap();
            slu.factor(second_lane).unwrap();
            let bl: Vec<f64> = b.iter().map(|v| v.lane(lane)).collect();
            let expect = slu.solve(&bl).unwrap();
            for i in 0..n {
                assert!(
                    (xs[i].lane(lane) - expect[i]).abs() < 1e-9,
                    "lane {lane} row {i}"
                );
            }
        }
    }

    /// A frozen pivot dying in one lane quarantines that lane only; the
    /// surviving lanes replay to full accuracy and the structure stays
    /// intact for the next replay.
    #[test]
    fn masked_replay_quarantines_dead_lane() {
        let n = 10;
        let first = lane_csrs(n, 7);
        let packed = pack_lanes(&first);
        let mut lu = SparseLu::new(&packed).unwrap();
        lu.factor(&packed).unwrap();
        let second = lane_csrs(n, 7007);
        let mut packed2 = pack_lanes(&second);
        for v in packed2.vals_mut() {
            v.set_lane(1, 0.0); // lane 1: the zero matrix, dead pivot at k = 0
        }
        let dead = lu.refactor_frozen_masked(&packed2, 0b1111).unwrap();
        assert_eq!(dead, 0b0010);
        let b: Vec<F64x4> = (0..n).map(|i| F64x4::splat(1.0 + i as f64)).collect();
        let xs = lu.solve(&b).unwrap();
        for lane in [0usize, 2, 3] {
            let mut slu = SparseLu::new(&second[lane]).unwrap();
            slu.factor(&second[lane]).unwrap();
            let bl: Vec<f64> = b.iter().map(|v| v.lane(lane)).collect();
            let expect = slu.solve(&bl).unwrap();
            for i in 0..n {
                assert!(
                    (xs[i].lane(lane) - expect[i]).abs() < 1e-9,
                    "lane {lane} row {i}"
                );
            }
        }
        // The frozen structure survived the casualty: a healthy replay
        // with all lanes live still works.
        let third = lane_csrs(n, 9009);
        let packed3 = pack_lanes(&third);
        assert_eq!(lu.refactor_frozen_masked(&packed3, 0b1111).unwrap(), 0);
    }

    #[test]
    fn frozen_roundtrip_is_bit_identical() {
        let n = 24;
        let m = random_system(n, 31);
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        assert!(lu.export_frozen().is_none(), "unfactored has no freeze");
        lu.factor(&csr).unwrap();
        let frozen = lu.export_frozen().unwrap();
        let mut thawed = SparseLu::from_frozen(frozen).unwrap();
        // Same frozen pivot order ⇒ replay + solve are the same
        // arithmetic in the same order ⇒ bitwise-equal solutions.
        let mut st = 606u64;
        let mut csr2 = csr.clone();
        for v in csr2.vals_mut() {
            *v += 0.01 * lcg(&mut st);
        }
        lu.refactor_frozen(&csr2).unwrap();
        thawed.refactor_frozen(&csr2).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xa = lu.solve(&b).unwrap();
        let xb = thawed.solve(&b).unwrap();
        for (a, bb) in xa.iter().zip(&xb) {
            assert_eq!(a.to_bits(), bb.to_bits());
        }
    }

    #[test]
    fn frozen_roundtrip_complex() {
        let n = 16;
        let csr = complex_system(n, 5);
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        let mut thawed = SparseLu::from_frozen(lu.export_frozen().unwrap()).unwrap();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), 0.5))
            .collect();
        let xa = lu.solve(&b).unwrap();
        let xb = thawed.solve(&b).unwrap();
        for (a, bb) in xa.iter().zip(&xb) {
            assert_eq!(a.re.to_bits(), bb.re.to_bits());
            assert_eq!(a.im.to_bits(), bb.im.to_bits());
        }
    }

    #[test]
    fn corrupt_frozen_is_rejected() {
        let n = 12;
        let m = random_system(n, 77);
        let csr = m.to_csr().unwrap();
        let mut lu = SparseLu::new(&csr).unwrap();
        lu.factor(&csr).unwrap();
        let good = lu.export_frozen().unwrap();
        // Pristine copy thaws fine.
        assert!(SparseLu::from_frozen(good.clone()).is_ok());
        // Each corruption below must be caught by validation.
        let mut c = good.clone();
        c.pinv.swap(0, 1); // breaks mutual-inverse with pivot_row
        assert!(SparseLu::from_frozen(c).is_err());
        let mut c = good.clone();
        c.cmap[0] = c.cri.len(); // slot out of range
        assert!(SparseLu::from_frozen(c).is_err());
        let mut c = good.clone();
        c.lx[c.lp[3]] = 1.5; // unit diagonal violated
        assert!(SparseLu::from_frozen(c).is_err());
        // Swap two U-bound entries of one column's reach list: changes
        // the elimination order, so validation must reject it. (Pure
        // U/L interleaving changes are legitimately accepted — the
        // replay cursors are independent.)
        let mut c = good.clone();
        let (mut a_slot, mut b_slot) = (usize::MAX, usize::MAX);
        'outer: for k in 0..n {
            let mut first = usize::MAX;
            for t in c.reach_ptr[k]..c.reach_ptr[k + 1] {
                if c.pinv[c.reach[t]] < k {
                    if first == usize::MAX {
                        first = t;
                    } else {
                        (a_slot, b_slot) = (first, t);
                        break 'outer;
                    }
                }
            }
        }
        assert_ne!(a_slot, usize::MAX, "need a column with 2+ U entries");
        c.reach.swap(a_slot, b_slot);
        assert!(SparseLu::from_frozen(c).is_err());
        let mut c = good.clone();
        c.up[1] = c.up[n]; // non-monotone pointer
        assert!(SparseLu::from_frozen(c).is_err());
        let mut c = good.clone();
        c.ux.pop(); // value/index length mismatch
        assert!(SparseLu::from_frozen(c).is_err());
        let mut c = good;
        c.li[2] = (c.li[2] + 1) % n; // li no longer pinv∘li_orig
        assert!(SparseLu::from_frozen(c).is_err());
    }

    #[test]
    fn masked_replay_all_dead_is_singular() {
        let n = 6;
        let first = lane_csrs(n, 13);
        let packed = pack_lanes(&first);
        let mut lu = SparseLu::new(&packed).unwrap();
        lu.factor(&packed).unwrap();
        let mut zeroed = packed.clone();
        for v in zeroed.vals_mut() {
            *v = F64x4::splat(0.0);
        }
        assert!(matches!(
            lu.refactor_frozen_masked(&zeroed, 0b1111),
            Err(NumericError::SingularMatrix { .. })
        ));
        // Unfactored workspace is an API error, as in the unmasked path.
        let mut fresh = SparseLu::<F64x4>::new(&packed).unwrap();
        assert!(fresh.refactor_frozen_masked(&packed, 0b1111).is_err());
    }
}
