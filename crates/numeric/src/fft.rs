//! Radix-2 fast Fourier transform.
//!
//! The channel model (`cml-channel`) specifies the backplane as a
//! frequency-domain insertion-loss profile; turning that into a causal
//! impulse response for time-domain convolution requires an inverse FFT.
//! Only power-of-two lengths are supported — callers zero-pad, which is the
//! natural thing to do for impulse-response synthesis anyway.

use crate::{Complex64, NumericError};

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

fn transform_in_place(x: &mut [Complex64], dir: Direction) -> Result<(), NumericError> {
    let n = x.len();
    if n == 0 {
        return Err(NumericError::EmptyInput);
    }
    if !n.is_power_of_two() {
        return Err(NumericError::NonPowerOfTwo { len: n });
    }
    // Bit-reversal permutation.
    let levels = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    // Iterative Cooley-Tukey butterflies.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = x[i + k];
                let v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if dir == Direction::Inverse {
        let inv_n = 1.0 / n as f64;
        for v in x.iter_mut() {
            *v = v.scale(inv_n);
        }
    }
    Ok(())
}

/// Forward FFT, in place. Length must be a power of two.
///
/// Uses the engineering sign convention `X[k] = Σ x[n]·e^{-j2πnk/N}`.
///
/// # Errors
///
/// [`NumericError::NonPowerOfTwo`] for unsupported lengths,
/// [`NumericError::EmptyInput`] for an empty slice.
pub fn fft(x: &mut [Complex64]) -> Result<(), NumericError> {
    transform_in_place(x, Direction::Forward)
}

/// Inverse FFT, in place (including the `1/N` normalization).
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn ifft(x: &mut [Complex64]) -> Result<(), NumericError> {
    transform_in_place(x, Direction::Inverse)
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn fft_real(x: &[f64]) -> Result<Vec<Complex64>, NumericError> {
    let mut buf: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    fft(&mut buf)?;
    Ok(buf)
}

/// Inverse FFT returning only the real part, for spectra known to be
/// conjugate-symmetric (real impulse responses).
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn ifft_real(spectrum: &[Complex64]) -> Result<Vec<f64>, NumericError> {
    let mut buf = spectrum.to_vec();
    ifft(&mut buf)?;
    Ok(buf.into_iter().map(|z| z.re).collect())
}

/// Next power of two at or above `n` (minimum 1).
///
/// ```
/// assert_eq!(cml_numeric::fft::next_pow2(1000), 1024);
/// assert_eq!(cml_numeric::fft::next_pow2(8), 8);
/// ```
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Linear convolution of two real sequences via zero-padded FFT.
///
/// Output length is `a.len() + b.len() - 1`. This is the hot path of the
/// behavioural channel model (waveform ⊛ impulse response).
///
/// # Errors
///
/// [`NumericError::EmptyInput`] if either input is empty.
pub fn convolve(a: &[f64], b: &[f64]) -> Result<Vec<f64>, NumericError> {
    if a.is_empty() || b.is_empty() {
        return Err(NumericError::EmptyInput);
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let mut fa: Vec<Complex64> = a.iter().map(|&v| Complex64::from_real(v)).collect();
    let mut fb: Vec<Complex64> = b.iter().map(|&v| Complex64::from_real(v)).collect();
    fa.resize(n, Complex64::ZERO);
    fb.resize(n, Complex64::ZERO);
    fft(&mut fa)?;
    fft(&mut fb)?;
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    ifft(&mut fa)?;
    Ok(fa.into_iter().take(out_len).map(|z| z.re).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft(&mut x).unwrap();
        for v in x {
            assert!((v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_in_bin_zero() {
        let mut x = vec![Complex64::ONE; 16];
        fft(&mut x).unwrap();
        assert!((x[0].re - 16.0).abs() < 1e-12);
        for v in &x[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_correct_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|i| {
                Complex64::from_real(
                    (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos(),
                )
            })
            .collect();
        fft(&mut x).unwrap();
        // A real cosine splits into bins k and n-k with amplitude n/2.
        assert!((x[k].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((x[n - k].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (i, v) in x.iter().enumerate() {
            if i != k && i != n - k {
                assert!(v.abs() < 1e-9, "leakage at bin {i}");
            }
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 128;
        let orig: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x).unwrap();
        ifft(&mut x).unwrap();
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex64::ZERO; 12];
        assert!(matches!(
            fft(&mut x),
            Err(NumericError::NonPowerOfTwo { len: 12 })
        ));
    }

    #[test]
    fn empty_rejected() {
        let mut x: Vec<Complex64> = vec![];
        assert!(matches!(fft(&mut x), Err(NumericError::EmptyInput)));
    }

    #[test]
    fn convolve_matches_direct() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0, 0.25, 2.0];
        let got = convolve(&a, &b).unwrap();
        let mut want = vec![0.0; a.len() + b.len() - 1];
        for (i, &av) in a.iter().enumerate() {
            for (j, &bv) in b.iter().enumerate() {
                want[i + j] += av * bv;
            }
        }
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn convolve_with_delta_is_identity() {
        let a = [3.0, -1.0, 4.0, 1.0, -5.0];
        let got = convolve(&a, &[1.0]).unwrap();
        for (g, w) in got.iter().zip(&a) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn real_helpers_roundtrip() {
        let x = [0.0, 1.0, 0.0, -1.0, 0.5, 0.25, -0.75, 2.0];
        let spec = fft_real(&x).unwrap();
        let back = ifft_real(&spec).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn parseval_energy_conserved() {
        let x = [1.0, -2.0, 0.5, 3.0, -0.25, 0.0, 1.5, -1.0];
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = fft_real(&x).unwrap();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }
}
