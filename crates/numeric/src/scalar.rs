//! Scalar abstraction over the number fields the LU kernels factor in.
//!
//! The sparse LU ([`crate::SparseLu`]) eliminates real MNA Jacobians for
//! DC/transient analysis and complex `G + jωC` systems for AC analysis.
//! Both run the *same* Gilbert–Peierls elimination; only the arithmetic
//! differs. [`Scalar`] captures exactly what the kernel needs — field
//! arithmetic, the additive/multiplicative identities, and a real pivot
//! magnitude for threshold pivot selection — and is implemented for
//! [`f64`] and [`Complex64`]. The `f64` instantiation performs
//! operation-for-operation the same arithmetic as the pre-generic
//! solver, so DC/transient results stay bit-identical.

use crate::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A field scalar the sparse LU can factor over.
///
/// Implementors must form a field under the arithmetic operators (the
/// kernel divides by pivots) and provide a real magnitude for pivot
/// comparisons. The trait is sealed in spirit — it exists for `f64` and
/// [`Complex64`] — but is left open so downstream experiments (interval
/// or extended-precision scalars) can plug into the same kernel.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;

    /// Multiplicative identity.
    const ONE: Self;

    /// Real magnitude `|x|` used for pivot selection and singularity
    /// checks. For `f64` this is `abs()`; for [`Complex64`] the modulus.
    fn modulus(self) -> f64;

    /// Whether every component of the scalar is finite (pivot sanity
    /// guard; NaN and infinity both report `false`).
    fn finite(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn finite(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for Complex64 {
    const ZERO: Complex64 = Complex64::ZERO;
    const ONE: Complex64 = Complex64::ONE;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn finite(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_modulus_is_abs() {
        assert_eq!((-3.5f64).modulus(), 3.5);
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert!(1.0f64.finite());
        assert!(!f64::NAN.finite());
        assert!(!f64::INFINITY.finite());
    }

    #[test]
    fn complex_modulus_is_hypot() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.modulus() - 5.0).abs() < 1e-15);
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert!(z.finite());
        assert!(!Complex64::new(f64::NAN, 0.0).finite());
    }

    /// The generic pivot comparison must match the old f64-only code:
    /// `x.modulus()` and `x.abs()` are the same bits for every input.
    #[test]
    fn f64_path_is_bit_identical() {
        for x in [0.0, -0.0, 1.5e-300, -7.25, f64::MAX] {
            assert_eq!(x.modulus().to_bits(), x.abs().to_bits());
        }
    }
}
