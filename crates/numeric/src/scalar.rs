//! Scalar abstraction over the number fields the LU kernels factor in.
//!
//! The sparse LU ([`crate::SparseLu`]) eliminates real MNA Jacobians for
//! DC/transient analysis and complex `G + jωC` systems for AC analysis.
//! Both run the *same* Gilbert–Peierls elimination; only the arithmetic
//! differs. [`Scalar`] captures exactly what the kernel needs — field
//! arithmetic, the additive/multiplicative identities, and a real pivot
//! magnitude for threshold pivot selection — and is implemented for
//! [`f64`] and [`Complex64`]. The `f64` instantiation performs
//! operation-for-operation the same arithmetic as the pre-generic
//! solver, so DC/transient results stay bit-identical.

use crate::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A field scalar the sparse LU can factor over.
///
/// Implementors must form a field under the arithmetic operators (the
/// kernel divides by pivots) and provide a real magnitude for pivot
/// comparisons. The trait is sealed in spirit — it exists for `f64` and
/// [`Complex64`] — but is left open so downstream experiments (interval
/// or extended-precision scalars) can plug into the same kernel.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;

    /// Multiplicative identity.
    const ONE: Self;

    /// Real magnitude `|x|` used for pivot selection and singularity
    /// checks. For `f64` this is `abs()`; for [`Complex64`] the modulus.
    fn modulus(self) -> f64;

    /// Whether every component of the scalar is finite (pivot sanity
    /// guard; NaN and infinity both report `false`).
    fn finite(self) -> bool;
}

/// A [`Scalar`] that packs `LANES` independent `f64` problem instances
/// into one value, structure-of-arrays style (see [`crate::lanes`]).
///
/// Every arithmetic operator acts lane-wise — lane `i` of any result
/// depends only on lane `i` of the operands — so running an elimination
/// kernel over a `LaneScalar` is exactly `LANES` independent scalar
/// eliminations marching in lockstep. The extra methods expose what
/// lockstep solvers need beyond field arithmetic: lane access for
/// packing/unpacking, and *masked* pivot health so one numerically dead
/// variant can be quarantined (and later re-solved scalar) without
/// stalling the other lanes.
///
/// Masks are `u64` bitsets with bit `i` = lane `i`; bits at and above
/// [`LANES`](Self::LANES) are ignored.
pub trait LaneScalar: Scalar {
    /// Number of packed lanes.
    const LANES: usize;

    /// Mask with one bit set per lane (`(1 << LANES) - 1`).
    const LANE_MASK: u64 = (1u64 << Self::LANES) - 1;

    /// Broadcasts one scalar into every lane.
    fn splat(v: f64) -> Self;

    /// Reads lane `i` (must be `< LANES`).
    fn lane(self, i: usize) -> f64;

    /// Writes lane `i` (must be `< LANES`).
    fn set_lane(&mut self, i: usize, v: f64);

    /// Pivot quality over the `live` lanes only: the smallest `|x_i|`
    /// with `i` live, with non-finite lanes mapped to `-1.0` so a row
    /// carrying NaN/∞ in a live lane loses every pivot contest. Returns
    /// `f64::INFINITY` when `live` selects no lane.
    fn pivot_metric(self, live: u64) -> f64;

    /// Lanes where the value is unusable as a pivot: bit `i` set when
    /// lane `i` is non-finite or `|x_i| <= tol` (NaN compares unusable).
    fn bad_mask(self, tol: f64) -> u64;

    /// Replaces the lanes selected by `mask` with `fill`, leaving the
    /// others untouched — used to overwrite a dead lane's pivot with a
    /// benign value so lockstep division never poisons live lanes.
    #[must_use]
    fn heal(self, mask: u64, fill: f64) -> Self;
}

/// `f64` is the trivial one-lane pack: lane masks degenerate to bit 0.
/// This lets lockstep drivers be written once over [`LaneScalar`] and
/// still instantiate a true scalar loop (`CML_BATCH_LANES=1`).
impl LaneScalar for f64 {
    const LANES: usize = 1;

    #[inline]
    fn splat(v: f64) -> Self {
        v
    }

    #[inline]
    fn lane(self, i: usize) -> f64 {
        debug_assert_eq!(i, 0);
        self
    }

    #[inline]
    fn set_lane(&mut self, i: usize, v: f64) {
        debug_assert_eq!(i, 0);
        *self = v;
    }

    #[inline]
    fn pivot_metric(self, live: u64) -> f64 {
        if live & 1 == 0 {
            f64::INFINITY
        } else if self.is_finite() {
            self.abs()
        } else {
            -1.0
        }
    }

    #[inline]
    fn bad_mask(self, tol: f64) -> u64 {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !self.is_finite() || !(self.abs() > tol) {
            1
        } else {
            0
        }
    }

    #[inline]
    fn heal(self, mask: u64, fill: f64) -> Self {
        if mask & 1 != 0 {
            fill
        } else {
            self
        }
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn finite(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for Complex64 {
    const ZERO: Complex64 = Complex64::ZERO;
    const ONE: Complex64 = Complex64::ONE;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn finite(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_modulus_is_abs() {
        assert_eq!((-3.5f64).modulus(), 3.5);
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert!(1.0f64.finite());
        assert!(!f64::NAN.finite());
        assert!(!f64::INFINITY.finite());
    }

    #[test]
    fn complex_modulus_is_hypot() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.modulus() - 5.0).abs() < 1e-15);
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert!(z.finite());
        assert!(!Complex64::new(f64::NAN, 0.0).finite());
    }

    /// The generic pivot comparison must match the old f64-only code:
    /// `x.modulus()` and `x.abs()` are the same bits for every input.
    #[test]
    fn f64_path_is_bit_identical() {
        for x in [0.0, -0.0, 1.5e-300, -7.25, f64::MAX] {
            assert_eq!(x.modulus().to_bits(), x.abs().to_bits());
        }
    }
}
