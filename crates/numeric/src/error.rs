use std::error::Error;
use std::fmt;

/// Errors produced by the numeric kernels.
///
/// All failure modes are recoverable by the caller (e.g. the circuit
/// simulator responds to [`NumericError::SingularMatrix`] by adding gmin
/// conductance and retrying), so they are reported rather than panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// LU factorization found no usable pivot: the system is singular
    /// (or numerically indistinguishable from singular).
    SingularMatrix {
        /// Elimination column at which no pivot above threshold existed.
        column: usize,
        /// Magnitude of the best available pivot.
        pivot: f64,
    },
    /// A routine was called with inputs of inconsistent dimensions.
    DimensionMismatch {
        /// What the routine expected, e.g. `"rhs of length 5"`.
        expected: String,
        /// What it received.
        got: String,
    },
    /// FFT length was not a power of two.
    NonPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// An input that must be non-empty was empty.
    EmptyInput,
    /// Interpolation abscissae were not strictly increasing.
    UnsortedAbscissae,
    /// A stamped entry fell outside the matrix bounds.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::SingularMatrix { column, pivot } => write!(
                f,
                "singular matrix: no pivot at column {column} (best magnitude {pivot:.3e})"
            ),
            NumericError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            NumericError::NonPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
            NumericError::EmptyInput => write!(f, "input slice was empty"),
            NumericError::UnsortedAbscissae => {
                write!(f, "interpolation abscissae must be strictly increasing")
            }
            NumericError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => {
                write!(
                    f,
                    "entry ({row}, {col}) is outside the {rows}x{cols} matrix"
                )
            }
        }
    }
}

impl Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumericError::SingularMatrix {
                column: 3,
                pivot: 1e-18,
            },
            NumericError::DimensionMismatch {
                expected: "3".into(),
                got: "4".into(),
            },
            NumericError::NonPowerOfTwo { len: 12 },
            NumericError::EmptyInput,
            NumericError::UnsortedAbscissae,
            NumericError::IndexOutOfBounds {
                row: 5,
                col: 0,
                rows: 4,
                cols: 4,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
