//! Waveform interpolation.
//!
//! Eye-diagram folding and channel resampling need to evaluate simulated
//! waveforms at time points that do not fall on the solver's (possibly
//! adaptive) time grid. Linear interpolation is the workhorse; the monotone
//! cubic (PCHIP, Fritsch–Carlson) variant is provided for smooth threshold
//! crossing detection without the overshoot a plain cubic spline introduces.

use crate::NumericError;

fn check_grid(xs: &[f64], ys: &[f64]) -> Result<(), NumericError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(NumericError::EmptyInput);
    }
    if xs.len() != ys.len() {
        return Err(NumericError::DimensionMismatch {
            expected: format!("{} ordinates", xs.len()),
            got: format!("{}", ys.len()),
        });
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NumericError::UnsortedAbscissae);
    }
    Ok(())
}

/// Index of the interval `[xs[i], xs[i+1]]` containing `x` (clamped to ends).
fn bracket(xs: &[f64], x: f64) -> usize {
    match xs.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => i.min(xs.len().saturating_sub(2)),
        Err(0) => 0,
        Err(i) if i >= xs.len() => xs.len() - 2,
        Err(i) => i - 1,
    }
}

/// Piecewise-linear interpolation of `(xs, ys)` at `x`, extrapolating with
/// the end values (clamp, not linear extension — waveforms should hold).
///
/// # Errors
///
/// [`NumericError::EmptyInput`], [`NumericError::DimensionMismatch`] or
/// [`NumericError::UnsortedAbscissae`] on malformed grids.
pub fn linear(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumericError> {
    check_grid(xs, ys)?;
    if xs.len() == 1 {
        return Ok(ys[0]);
    }
    if x <= xs[0] {
        return Ok(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Ok(ys[ys.len() - 1]);
    }
    let i = bracket(xs, x);
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    Ok(ys[i] + t * (ys[i + 1] - ys[i]))
}

/// Resamples a waveform onto a uniform grid of `n` points spanning the
/// original time range, using linear interpolation.
///
/// # Errors
///
/// Grid errors as in [`linear`]; additionally requires `n >= 2`.
pub fn resample_uniform(
    xs: &[f64],
    ys: &[f64],
    n: usize,
) -> Result<(Vec<f64>, Vec<f64>), NumericError> {
    check_grid(xs, ys)?;
    if n < 2 {
        return Err(NumericError::DimensionMismatch {
            expected: "at least 2 output samples".into(),
            got: format!("{n}"),
        });
    }
    let grid = crate::linspace(xs[0], xs[xs.len() - 1], n);
    let vals = grid
        .iter()
        .map(|&x| linear(xs, ys, x))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((grid, vals))
}

/// Monotone cubic Hermite (PCHIP) interpolator.
///
/// Precomputes Fritsch–Carlson slopes once; evaluation is then O(log n).
/// Guaranteed not to overshoot the data — if the data are monotone on an
/// interval, the interpolant is too.
#[derive(Debug, Clone)]
pub struct Pchip {
    xs: Vec<f64>,
    ys: Vec<f64>,
    slopes: Vec<f64>,
}

impl Pchip {
    /// Builds the interpolator from a strictly-increasing grid.
    ///
    /// # Errors
    ///
    /// Grid errors as in [`linear`].
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumericError> {
        check_grid(xs, ys)?;
        let n = xs.len();
        let mut slopes = vec![0.0; n];
        if n == 1 {
            return Ok(Pchip {
                xs: xs.to_vec(),
                ys: ys.to_vec(),
                slopes,
            });
        }
        let h: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let d: Vec<f64> = ys
            .windows(2)
            .zip(&h)
            .map(|(w, &hi)| (w[1] - w[0]) / hi)
            .collect();
        slopes[0] = d[0];
        slopes[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            if d[i - 1] * d[i] <= 0.0 {
                slopes[i] = 0.0; // local extremum: flat tangent preserves monotonicity
            } else {
                let w1 = 2.0 * h[i] + h[i - 1];
                let w2 = h[i] + 2.0 * h[i - 1];
                slopes[i] = (w1 + w2) / (w1 / d[i - 1] + w2 / d[i]);
            }
        }
        Ok(Pchip {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            slopes,
        })
    }

    /// Evaluates the interpolant at `x` (clamped beyond the grid ends).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if n == 1 || x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = bracket(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i]
            + h10 * h * self.slopes[i]
            + h01 * self.ys[i + 1]
            + h11 * h * self.slopes[i + 1]
    }
}

/// Finds all times where a waveform crosses `level`, using linear
/// interpolation between samples. Returns crossings in time order.
///
/// This is the primitive behind jitter and eye-width measurements.
///
/// # Errors
///
/// Grid errors as in [`linear`].
pub fn level_crossings(xs: &[f64], ys: &[f64], level: f64) -> Result<Vec<f64>, NumericError> {
    check_grid(xs, ys)?;
    let mut out = Vec::new();
    for i in 0..xs.len() - 1 {
        let (a, b) = (ys[i] - level, ys[i + 1] - level);
        if a == 0.0 {
            out.push(xs[i]);
        } else if a * b < 0.0 {
            let t = a / (a - b);
            out.push(xs[i] + t * (xs[i + 1] - xs[i]));
        }
    }
    // Catch an exact crossing at the final sample.
    if ys[ys.len() - 1] == level && xs.len() > 1 && ys[ys.len() - 2] != level {
        out.push(xs[xs.len() - 1]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_knots_exactly() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [2.0, -1.0, 5.0];
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(linear(&xs, &ys, *x).unwrap(), *y);
        }
    }

    #[test]
    fn linear_midpoint() {
        let xs = [0.0, 2.0];
        let ys = [0.0, 10.0];
        assert!((linear(&xs, &ys, 1.0).unwrap() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn linear_clamps_outside_range() {
        let xs = [1.0, 2.0];
        let ys = [5.0, 7.0];
        assert_eq!(linear(&xs, &ys, 0.0).unwrap(), 5.0);
        assert_eq!(linear(&xs, &ys, 10.0).unwrap(), 7.0);
    }

    #[test]
    fn unsorted_rejected() {
        assert!(matches!(
            linear(&[1.0, 1.0], &[0.0, 0.0], 1.0),
            Err(NumericError::UnsortedAbscissae)
        ));
    }

    #[test]
    fn resample_preserves_linear_ramp() {
        let xs = [0.0, 0.5, 2.0];
        let ys = [0.0, 1.0, 4.0]; // ramp with slope 2
        let (gx, gy) = resample_uniform(&xs, &ys, 9).unwrap();
        for (x, y) in gx.iter().zip(&gy) {
            assert!((y - 2.0 * x).abs() < 1e-12);
        }
    }

    #[test]
    fn pchip_interpolates_knots() {
        let xs = [0.0, 1.0, 2.0, 4.0];
        let ys = [0.0, 1.0, 0.5, 3.0];
        let p = Pchip::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((p.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pchip_monotone_data_stays_monotone() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 0.1, 0.5, 0.9, 1.0]; // monotone S-curve
        let p = Pchip::new(&xs, &ys).unwrap();
        let mut prev = p.eval(0.0);
        for i in 1..=400 {
            let v = p.eval(i as f64 * 0.01);
            assert!(v >= prev - 1e-12, "pchip overshoot at {i}");
            prev = v;
        }
        // And never exceeds the data range.
        assert!(prev <= 1.0 + 1e-12);
    }

    #[test]
    fn crossings_of_cosine() {
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64 * 2.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&t| (std::f64::consts::PI * t).cos())
            .collect();
        let c = level_crossings(&xs, &ys, 0.0).unwrap();
        // cos(πt) crosses zero at t = 0.5 and t = 1.5 on [0, 2].
        assert_eq!(c.len(), 2);
        assert!((c[0] - 0.5).abs() < 1e-3);
        assert!((c[1] - 1.5).abs() < 1e-3);
    }

    #[test]
    fn crossing_position_is_interpolated() {
        let xs = [0.0, 1.0];
        let ys = [-1.0, 3.0];
        let c = level_crossings(&xs, &ys, 0.0).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c[0] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn no_crossings_when_level_outside() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 0.5];
        assert!(level_crossings(&xs, &ys, 5.0).unwrap().is_empty());
    }
}
